//! # ets-honeypot
//!
//! The Section-7 experiments: playing the typosquatting *victim*.
//!
//! Two measurement rounds ran in the paper. First, ~153,000 benign probe
//! emails to 50,995 candidate typosquatting domains (three per domain —
//! ports 25/465/587) established who even accepts mail (Table 5) and which
//! mail servers sit behind the accepting population (Table 6). Second,
//! four designs of "honey email" — a tracking pixel, webmail credentials,
//! shell credentials, a shared "tax document" link, and a beaconing DOCX —
//! went to the accepting domains, and access to the honey resources was
//! monitored for months (outcome: a handful of human reads, two token
//! accesses, no systematic abuse).
//!
//! * [`design`] — the four honey email templates with their monitored
//!   resources.
//! * [`behavior`] — the typosquatter behaviour model (who reads mail,
//!   after what delay, from where).
//! * [`campaign`] — the probe and honey-token campaigns.
//! * [`monitor`] — the access log and signal analysis.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod campaign;
pub mod design;
pub mod monitor;

pub use campaign::{HoneyCampaign, ProbeCampaign, ProbeReport};
pub use design::{HoneyDesign, HoneyEmail};
pub use monitor::{AccessEvent, AccessKind, Monitor};
