//! The probe and honey-token campaigns (§7.1–7.2).
//!
//! **Probe campaign:** benign test emails to every candidate typo domain
//! that listens on an SMTP port, through the real client/server state
//! machines ([`ets_smtp::pipe`]). Outcomes land in the five Table-5
//! buckets, split by public vs private registration; the accepting
//! population's MX usage reproduces Table 6.
//!
//! **Honey campaign:** the four honey designs to each accepting domain
//! (pilot: a capped subset, ≤ 4 domains per registrant), with reads and
//! token uses drawn from the registrant behaviour model and logged by the
//! [`Monitor`].

use crate::behavior::{registrant_key, ActionKind, BehaviorModel};
use crate::design::{self, HoneyDesign};
use crate::monitor::{AccessEvent, AccessKind, Monitor};
use ets_core::DomainName;
use ets_ecosystem::population::{SmtpProfile, World};
use ets_mail::EmailAddress;
use ets_smtp::client::Email;
use ets_smtp::fault::DeliveryOutcome;
use ets_smtp::pipe;
use ets_smtp::session::ServerPolicy;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of the probe campaign (Table 5 + Table 6 inputs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbeReport {
    /// Outcome counts: `[public, private] × Table-5 category`.
    pub outcomes: [[usize; 5]; 2],
    /// Domains that accepted without error.
    pub accepted: Vec<DomainName>,
    /// Probe emails that were demonstrably read (pixel fired), with the
    /// registration privacy of the domain.
    pub reads: Vec<(DomainName, bool)>,
}

impl ProbeReport {
    /// Total probed domains.
    pub fn total(&self) -> usize {
        self.outcomes.iter().flatten().sum()
    }

    /// Table-5 style rows: (category, public count, private count).
    pub fn table5_rows(&self) -> Vec<(String, usize, usize)> {
        DeliveryOutcome::ALL
            .iter()
            .enumerate()
            .map(|(i, o)| (o.to_string(), self.outcomes[0][i], self.outcomes[1][i]))
            .collect()
    }
}

/// The probe campaign.
pub struct ProbeCampaign<'a> {
    world: &'a World,
    behavior: BehaviorModel,
}

impl<'a> ProbeCampaign<'a> {
    /// Creates a probe campaign over a world.
    pub fn new(world: &'a World, behavior: BehaviorModel) -> Self {
        ProbeCampaign { world, behavior }
    }

    /// Delivers one benign probe to `domain` given its SMTP behaviour.
    /// Uses the real state machines whenever a server exists.
    pub fn probe_one(&self, domain: &DomainName, smtp: SmtpProfile) -> DeliveryOutcome {
        let policy = match smtp {
            SmtpProfile::NoListener | SmtpProfile::ConnectionReset => {
                return DeliveryOutcome::NetworkError
            }
            SmtpProfile::SilentTimeout => return DeliveryOutcome::Timeout,
            SmtpProfile::BounceAll => ServerPolicy::bouncing(&format!("mx.{domain}")),
            SmtpProfile::PlainOnly => {
                let mut p = ServerPolicy::catch_all(&format!("mx.{domain}"), &[]);
                p.supports_starttls = false;
                p
            }
            SmtpProfile::StarttlsBroken => {
                let mut p = ServerPolicy::catch_all(&format!("mx.{domain}"), &[]);
                p.broken_starttls = true;
                p
            }
            SmtpProfile::StarttlsOk => ServerPolicy::catch_all(&format!("mx.{domain}"), &[]),
        };
        let rcpt: EmailAddress = format!("test@{domain}")
            .parse()
            .expect("probe recipient is valid");
        let email = Email::new(
            Some("probe@research-vps.example".parse().expect("valid")),
            vec![rcpt],
            "Subject: test\r\n\r\nThis is a connectivity test, please ignore.".to_owned(),
        );
        match pipe::deliver(email, "research-vps.example", true, policy) {
            Ok(result) => result.delivery_outcome(),
            Err(pipe::PipeError::Timeout) => DeliveryOutcome::Timeout,
            Err(pipe::PipeError::ConnectionRefused) => DeliveryOutcome::NetworkError,
            Err(pipe::PipeError::ConnectionClosed) => DeliveryOutcome::OtherError,
        }
    }

    /// Runs the probe across every ctypo in the world.
    pub fn run(&self) -> ProbeReport {
        let mut outcomes = [[0usize; 5]; 2];
        let mut accepted = Vec::new();
        let mut reads = Vec::new();
        for c in &self.world.ctypos {
            let outcome = if !c.has_zone {
                // No resolvable mail target at all: the connection attempt
                // never happens; zmap would not have listed it, but the
                // bulk send treats it as a network error.
                DeliveryOutcome::NetworkError
            } else {
                self.probe_one(&c.candidate.domain, c.smtp)
            };
            let side = usize::from(c.private);
            let idx = DeliveryOutcome::ALL
                .iter()
                .position(|o| *o == outcome)
                .expect("known outcome");
            outcomes[side][idx] += 1;
            if outcome == DeliveryOutcome::NoError {
                accepted.push(c.candidate.domain.clone());
                // A curious operator may read even the benign probe.
                let owner = self.world.owner_of(&c.candidate.domain);
                let key = registrant_key(&c.candidate.domain, owner.map(|r| r.id));
                let b = self.behavior.behavior_for(&key);
                let actions = self
                    .behavior
                    .sample_actions(b, fnv(c.candidate.domain.as_str()));
                if actions.iter().any(|a| a.kind == ActionKind::Open) {
                    reads.push((c.candidate.domain.clone(), c.private));
                }
            }
        }
        ProbeReport {
            outcomes,
            accepted,
            reads,
        }
    }
}

/// Result of a honey-token campaign.
#[derive(Debug)]
pub struct HoneyReport {
    /// Emails sent.
    pub sent: usize,
    /// Domains covered.
    pub domains: usize,
    /// The access log.
    pub monitor: Monitor,
}

/// The honey-token campaign.
pub struct HoneyCampaign<'a> {
    world: &'a World,
    behavior: BehaviorModel,
}

impl<'a> HoneyCampaign<'a> {
    /// Creates a campaign over a world.
    pub fn new(world: &'a World, behavior: BehaviorModel) -> Self {
        HoneyCampaign { world, behavior }
    }

    /// The pilot selection: at most `per_registrant` domains per known
    /// registrant, capped at `limit` total (the paper used 738).
    pub fn pilot_selection(
        &self,
        accepted: &[DomainName],
        per_registrant: usize,
        limit: usize,
    ) -> Vec<DomainName> {
        let mut per_owner: HashMap<String, usize> = HashMap::new();
        let mut out = Vec::new();
        for d in accepted {
            let key = registrant_key(d, self.world.owner_of(d).map(|r| r.id));
            let n = per_owner.entry(key).or_insert(0);
            if *n < per_registrant {
                *n += 1;
                out.push(d.clone());
                if out.len() >= limit {
                    break;
                }
            }
        }
        out
    }

    /// Sends every design once to every domain in `targets`, collecting
    /// monitored accesses.
    pub fn run(&self, targets: &[DomainName]) -> HoneyReport {
        let mut monitor = Monitor::new();
        let mut sent = 0usize;
        for (di, domain) in targets.iter().enumerate() {
            let owner = self.world.owner_of(domain);
            let key = registrant_key(domain, owner.map(|r| r.id));
            let b = self.behavior.behavior_for(&key);
            for (si, design) in HoneyDesign::ALL.into_iter().enumerate() {
                let token = (di as u64) << 3 | si as u64;
                let honey = design::build(design, domain, token);
                // Delivery: the accepting population accepted before, so
                // the send itself succeeds; what matters is what happens
                // after.
                sent += 1;
                let actions = self
                    .behavior
                    .sample_actions(b, token ^ fnv(domain.as_str()));
                for a in actions {
                    let kind = match (a.kind, design) {
                        (ActionKind::Open, HoneyDesign::PaymentDocx) => AccessKind::DocxBeacon,
                        (ActionKind::Open, _) => AccessKind::PixelFetch,
                        (ActionKind::UseResource, HoneyDesign::SharedTaxDocument) => {
                            AccessKind::DocumentView
                        }
                        (ActionKind::UseResource, _) => AccessKind::CredentialUse,
                    };
                    monitor.record(AccessEvent {
                        domain: domain.clone(),
                        design,
                        kind,
                        hours_after_send: a.delay_hours,
                        origin: a.origin.to_owned(),
                    });
                }
                let _ = honey; // the built message itself is exercised in tests
            }
        }
        HoneyReport {
            sent,
            domains: targets.len(),
            monitor,
        }
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ets_ecosystem::population::PopulationConfig;

    fn world() -> World {
        World::build(PopulationConfig::tiny(31))
    }

    #[test]
    fn probe_outcomes_cover_population() {
        let w = world();
        let campaign = ProbeCampaign::new(&w, BehaviorModel::default());
        let report = campaign.run();
        assert_eq!(report.total(), w.ctypos.len());
        // Failures dominate (Table 5: most sends time out or err).
        let accepted = report.accepted.len();
        assert!(accepted > 0);
        assert!(
            accepted * 2 < report.total(),
            "accepted {accepted} of {}",
            report.total()
        );
    }

    #[test]
    fn probe_outcome_matches_profile() {
        let w = world();
        let campaign = ProbeCampaign::new(&w, BehaviorModel::default());
        let d: DomainName = "x.com".parse().unwrap();
        assert_eq!(
            campaign.probe_one(&d, SmtpProfile::StarttlsOk),
            DeliveryOutcome::NoError
        );
        assert_eq!(
            campaign.probe_one(&d, SmtpProfile::PlainOnly),
            DeliveryOutcome::NoError
        );
        assert_eq!(
            campaign.probe_one(&d, SmtpProfile::BounceAll),
            DeliveryOutcome::Bounce
        );
        assert_eq!(
            campaign.probe_one(&d, SmtpProfile::SilentTimeout),
            DeliveryOutcome::Timeout
        );
        assert_eq!(
            campaign.probe_one(&d, SmtpProfile::NoListener),
            DeliveryOutcome::NetworkError
        );
        assert_eq!(
            campaign.probe_one(&d, SmtpProfile::StarttlsBroken),
            DeliveryOutcome::OtherError
        );
    }

    #[test]
    fn probe_reads_are_rare() {
        let w = world();
        let campaign = ProbeCampaign::new(&w, BehaviorModel::default());
        let report = campaign.run();
        assert!(
            report.reads.len() * 20 < report.accepted.len().max(1),
            "{} reads of {} accepted",
            report.reads.len(),
            report.accepted.len()
        );
    }

    #[test]
    fn pilot_caps_per_registrant() {
        let w = world();
        let campaign = HoneyCampaign::new(&w, BehaviorModel::default());
        let probe = ProbeCampaign::new(&w, BehaviorModel::default()).run();
        let pilot = campaign.pilot_selection(&probe.accepted, 4, 100);
        assert!(pilot.len() <= 100);
        let mut per_owner: HashMap<String, usize> = HashMap::new();
        for d in &pilot {
            let key = registrant_key(d, w.owner_of(d).map(|r| r.id));
            *per_owner.entry(key).or_insert(0) += 1;
        }
        assert!(per_owner.values().all(|&c| c <= 4));
    }

    #[test]
    fn honey_campaign_produces_sparse_human_signal() {
        let w = world();
        let behavior = BehaviorModel {
            curious_share: 0.02, // slightly raised so the tiny world signals
            ..BehaviorModel::default()
        };
        let probe = ProbeCampaign::new(&w, behavior.clone()).run();
        let campaign = HoneyCampaign::new(&w, behavior);
        let report = campaign.run(&probe.accepted);
        assert_eq!(report.sent, probe.accepted.len() * 4);
        let s = report.monitor.summary();
        // Sparse: reads an order of magnitude below sends.
        assert!(
            s.opens * 5 < report.sent.max(1),
            "opens {} of {}",
            s.opens,
            report.sent
        );
        // Human pace when signal exists.
        if s.domains_read > 0 {
            assert!(s.median_open_delay_hours >= 0.5);
        }
        assert!(s.token_accesses <= s.opens);
    }

    #[test]
    fn dormant_world_is_silent() {
        let w = world();
        let behavior = BehaviorModel {
            curious_share: 0.0,
            ..BehaviorModel::default()
        };
        let probe = ProbeCampaign::new(&w, behavior.clone()).run();
        let campaign = HoneyCampaign::new(&w, behavior);
        let report = campaign.run(&probe.accepted);
        assert_eq!(report.monitor.summary().opens, 0);
        assert!(probe.reads.is_empty());
    }
}
