//! Access-log monitoring for honey resources.
//!
//! Every honey email carries monitored resources (tracking pixel, honey
//! account, shared document, beaconing DOCX). The monitor collects access
//! events — what was touched, when, from where — and answers the §7.2
//! questions: how many emails were read, how many tokens were used, and
//! whether the timing looks human.

use crate::design::HoneyDesign;
use ets_core::DomainName;
use serde::{Deserialize, Serialize};

/// What kind of monitored resource fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The 1×1 tracking pixel was fetched (email opened).
    PixelFetch,
    /// A honey credential was used (login attempt observed).
    CredentialUse,
    /// The shared document was viewed.
    DocumentView,
    /// The DOCX beacon fetched its remote resource.
    DocxBeacon,
}

/// One access event in the logs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessEvent {
    /// The typo domain the email had been sent to.
    pub domain: DomainName,
    /// Which design the email used.
    pub design: HoneyDesign,
    /// What fired.
    pub kind: AccessKind,
    /// Hours after the email was sent.
    pub hours_after_send: f64,
    /// Claimed geographic origin of the access.
    pub origin: String,
}

/// The collected log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Monitor {
    events: Vec<AccessEvent>,
}

/// Summary of a campaign's signals (the §7.2 result set).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalSummary {
    /// Distinct domains whose email was opened.
    pub domains_read: usize,
    /// Distinct domains where a honey token (credential/document) was
    /// accessed.
    pub domains_acted: usize,
    /// Total pixel/beacon fetches.
    pub opens: usize,
    /// Total credential uses + document views.
    pub token_accesses: usize,
    /// Median hours from send to first open (human-pace check).
    pub median_open_delay_hours: f64,
    /// Domains opened more than once (the "days later, another city"
    /// anecdotes).
    pub reopened_domains: usize,
}

impl Monitor {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event.
    pub fn record(&mut self, event: AccessEvent) {
        self.events.push(event);
    }

    /// All events, in arrival order.
    pub fn events(&self) -> &[AccessEvent] {
        &self.events
    }

    /// Events within the logging window (the paper logged shell access
    /// only to July 1, other resources to September 14).
    pub fn events_before(&self, hours: f64) -> impl Iterator<Item = &AccessEvent> {
        self.events
            .iter()
            .filter(move |e| e.hours_after_send <= hours)
    }

    /// Aggregates the §7.2 summary.
    pub fn summary(&self) -> SignalSummary {
        use std::collections::{HashMap, HashSet};
        let mut read: HashSet<&DomainName> = HashSet::new();
        let mut acted: HashSet<&DomainName> = HashSet::new();
        let mut opens = 0usize;
        let mut tokens = 0usize;
        let mut first_open: HashMap<&DomainName, f64> = HashMap::new();
        let mut open_counts: HashMap<&DomainName, usize> = HashMap::new();
        for e in &self.events {
            match e.kind {
                AccessKind::PixelFetch | AccessKind::DocxBeacon => {
                    opens += 1;
                    read.insert(&e.domain);
                    *open_counts.entry(&e.domain).or_insert(0) += 1;
                    let f = first_open.entry(&e.domain).or_insert(e.hours_after_send);
                    if e.hours_after_send < *f {
                        *f = e.hours_after_send;
                    }
                }
                AccessKind::CredentialUse | AccessKind::DocumentView => {
                    tokens += 1;
                    acted.insert(&e.domain);
                }
            }
        }
        let mut delays: Vec<f64> = first_open.values().copied().collect();
        delays.sort_by(|a, b| a.partial_cmp(b).expect("no NaN delays"));
        let median = if delays.is_empty() {
            0.0
        } else {
            delays[delays.len() / 2]
        };
        SignalSummary {
            domains_read: read.len(),
            domains_acted: acted.len(),
            opens,
            token_accesses: tokens,
            median_open_delay_hours: median,
            reopened_domains: open_counts.values().filter(|&&c| c > 1).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(domain: &str, kind: AccessKind, hours: f64) -> AccessEvent {
        AccessEvent {
            domain: domain.parse().unwrap(),
            design: HoneyDesign::WebmailCredentials,
            kind,
            hours_after_send: hours,
            origin: "Caracas, Venezuela".to_owned(),
        }
    }

    #[test]
    fn empty_log_summary() {
        let m = Monitor::new();
        let s = m.summary();
        assert_eq!(s.domains_read, 0);
        assert_eq!(s.token_accesses, 0);
        assert_eq!(s.median_open_delay_hours, 0.0);
    }

    #[test]
    fn summary_counts_domains_once() {
        let mut m = Monitor::new();
        m.record(ev("outfook.com", AccessKind::PixelFetch, 0.5));
        m.record(ev("outfook.com", AccessKind::PixelFetch, 220.0)); // 9 days later
        m.record(ev("uutlook.com", AccessKind::PixelFetch, 3.0));
        m.record(ev("parked-bank.com", AccessKind::DocumentView, 0.6));
        let s = m.summary();
        assert_eq!(s.domains_read, 2);
        assert_eq!(s.opens, 3);
        assert_eq!(s.domains_acted, 1);
        assert_eq!(s.token_accesses, 1);
        assert_eq!(s.reopened_domains, 1);
    }

    #[test]
    fn first_open_delay_is_minimum() {
        let mut m = Monitor::new();
        m.record(ev("a.com", AccessKind::PixelFetch, 8.0));
        m.record(ev("a.com", AccessKind::PixelFetch, 2.0));
        m.record(ev("b.com", AccessKind::DocxBeacon, 6.0));
        let s = m.summary();
        // delays: [2, 6] → median index 1 → 6
        assert_eq!(s.median_open_delay_hours, 6.0);
    }

    #[test]
    fn windowing() {
        let mut m = Monitor::new();
        m.record(ev("a.com", AccessKind::CredentialUse, 10.0));
        m.record(ev("b.com", AccessKind::CredentialUse, 5000.0));
        assert_eq!(m.events_before(24.0 * 16.0).count(), 1);
        assert_eq!(m.events_before(1e9).count(), 2);
    }
}
