//! The typosquatter behaviour model.
//!
//! §7.2's central (negative) finding: almost nobody does anything with
//! captured mail. Of ~7,300 accepting domains sent four honey emails
//! each, 15 emails were opened and 2 honey tokens accessed; opens lagged
//! sends by hours (human pace) and sometimes recurred days later from
//! different cities. The model assigns each *registrant* (not domain!) a
//! curiosity level and produces exactly this sparse, slow signal.

use ets_core::DomainName;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How a mail recipient behaves once a message lands in their catch-all.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReaderBehavior {
    /// Probability an arrived email is ever opened in a client that
    /// fetches remote images (fires the pixel).
    pub open_prob: f64,
    /// Probability an opened credential/link is actually tried.
    pub act_prob: f64,
    /// Mean hours between arrival and first open.
    pub mean_open_delay_hours: f64,
    /// Probability an opened email gets re-opened days later.
    pub reopen_prob: f64,
}

impl ReaderBehavior {
    /// The overwhelmingly common case: a dormant catch-all nobody reads.
    pub fn dormant() -> ReaderBehavior {
        ReaderBehavior {
            open_prob: 0.0,
            act_prob: 0.0,
            mean_open_delay_hours: 0.0,
            reopen_prob: 0.0,
        }
    }

    /// The rare curious operator (the Caracas/Poland anecdotes of §7.2).
    pub fn curious() -> ReaderBehavior {
        ReaderBehavior {
            open_prob: 0.2,
            act_prob: 0.1,
            mean_open_delay_hours: 6.0,
            reopen_prob: 0.3,
        }
    }
}

/// Geographic origin of an access (the paper logged Caracas, Orlando,
/// Poland).
pub const ACCESS_ORIGINS: [&str; 6] = [
    "Caracas, Venezuela",
    "Orlando, Florida",
    "Warsaw, Poland",
    "Kyiv, Ukraine",
    "Shenzhen, China",
    "Amsterdam, Netherlands",
];

/// The behaviour assignment across a registrant population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BehaviorModel {
    /// Fraction of registrants that are curious at all (paper-calibrated:
    /// ~19 of thousands of accepting registrants read something).
    pub curious_share: f64,
    /// Seed for deterministic assignment.
    pub seed: u64,
}

impl Default for BehaviorModel {
    fn default() -> Self {
        BehaviorModel {
            curious_share: 0.008,
            seed: 0x7e57,
        }
    }
}

impl BehaviorModel {
    /// The behaviour of the registrant identified by `registrant_key`
    /// (all domains of one registrant behave identically — the paper sent
    /// each registrant each design exactly once for this reason).
    pub fn behavior_for(&self, registrant_key: &str) -> ReaderBehavior {
        let h = fnv(registrant_key) ^ self.seed;
        let u = unit(h);
        if u < self.curious_share {
            ReaderBehavior::curious()
        } else {
            ReaderBehavior::dormant()
        }
    }

    /// Samples what a recipient does with one delivered honey email.
    /// `key` should be unique per email. Returns open delay (hours) and
    /// whether the honey resource gets accessed, plus reopen events.
    pub fn sample_actions(&self, behavior: ReaderBehavior, key: u64) -> Vec<ReaderAction> {
        let mut rng = ChaCha8Rng::seed_from_u64(key ^ self.seed.rotate_left(17));
        let mut out = Vec::new();
        if !rng.gen_bool(behavior.open_prob.clamp(0.0, 1.0)) {
            return out;
        }
        // Exponential open delay at human pace: -ln(1-u) is a unit-mean
        // exponential draw, capped at 5 means.
        let exp_draw = (-((1.0 - rng.gen::<f64>()).max(1e-12).ln())).clamp(0.0, 5.0);
        let delay = behavior.mean_open_delay_hours * exp_draw;
        let origin = ACCESS_ORIGINS[rng.gen_range(0..ACCESS_ORIGINS.len())];
        out.push(ReaderAction {
            kind: ActionKind::Open,
            delay_hours: delay.max(0.5),
            origin,
        });
        if rng.gen_bool(behavior.act_prob.clamp(0.0, 1.0)) {
            out.push(ReaderAction {
                kind: ActionKind::UseResource,
                delay_hours: delay.max(0.5) + rng.gen_range(0.1..4.0),
                origin: ACCESS_ORIGINS[rng.gen_range(0..ACCESS_ORIGINS.len())],
            });
        }
        if rng.gen_bool(behavior.reopen_prob.clamp(0.0, 1.0)) {
            out.push(ReaderAction {
                kind: ActionKind::Open,
                delay_hours: delay.max(0.5) + rng.gen_range(24.0..340.0),
                origin: ACCESS_ORIGINS[rng.gen_range(0..ACCESS_ORIGINS.len())],
            });
        }
        out
    }
}

/// What a reader did with a honey email.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReaderAction {
    /// Open (pixel fetch) or resource use (credential login / doc view).
    pub kind: ActionKind,
    /// Hours after delivery.
    pub delay_hours: f64,
    /// Where the access came from.
    pub origin: &'static str,
}

/// Action kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionKind {
    /// Email opened (tracking pixel fired).
    Open,
    /// Honey resource accessed (login attempt / document view).
    UseResource,
}

/// A registrant key for behaviour lookup: the WHOIS cluster id when known,
/// else the domain itself (unclustered registrants act independently).
pub fn registrant_key(domain: &DomainName, cluster: Option<usize>) -> String {
    match cluster {
        Some(c) => format!("cluster:{c}"),
        None => format!("domain:{domain}"),
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn unit(h: u64) -> f64 {
    let mut x = h;
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    ((x ^ (x >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_is_deterministic_per_registrant() {
        let m = BehaviorModel::default();
        let a = m.behavior_for("cluster:7");
        let b = m.behavior_for("cluster:7");
        assert_eq!(a, b);
    }

    #[test]
    fn most_registrants_are_dormant() {
        let m = BehaviorModel::default();
        let curious = (0..10_000)
            .filter(|i| m.behavior_for(&format!("cluster:{i}")).open_prob > 0.0)
            .count();
        assert!(curious < 200, "curious {curious}");
        assert!(curious > 20, "curious {curious}");
    }

    #[test]
    fn dormant_registrants_never_act() {
        let m = BehaviorModel::default();
        for key in 0..200 {
            let actions = m.sample_actions(ReaderBehavior::dormant(), key);
            assert!(actions.is_empty());
        }
    }

    #[test]
    fn curious_registrants_open_at_human_pace() {
        let m = BehaviorModel::default();
        let mut opened = 0usize;
        let mut used = 0usize;
        for key in 0..500 {
            let actions = m.sample_actions(ReaderBehavior::curious(), key);
            if let Some(first) = actions.first() {
                opened += 1;
                assert_eq!(first.kind, ActionKind::Open);
                // Hours, not milliseconds: humans, not bots (§7.2).
                assert!(first.delay_hours >= 0.5);
            }
            if actions.iter().any(|a| a.kind == ActionKind::UseResource) {
                used += 1;
            }
        }
        assert!(opened > 50, "opened {opened}");
        assert!(used > 2 && used < opened, "used {used}");
    }

    #[test]
    fn reopens_happen_days_later() {
        let m = BehaviorModel::default();
        let mut saw_reopen = false;
        for key in 0..500 {
            let actions = m.sample_actions(ReaderBehavior::curious(), key);
            let opens: Vec<&ReaderAction> = actions
                .iter()
                .filter(|a| a.kind == ActionKind::Open)
                .collect();
            if opens.len() >= 2 {
                saw_reopen = true;
                assert!(opens[1].delay_hours - opens[0].delay_hours >= 24.0);
            }
        }
        assert!(saw_reopen);
    }

    #[test]
    fn registrant_keys() {
        let d: DomainName = "outfook.com".parse().unwrap();
        assert_eq!(registrant_key(&d, Some(3)), "cluster:3");
        assert_eq!(registrant_key(&d, None), "domain:outfook.com");
    }
}
