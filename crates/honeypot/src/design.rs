//! Honey email designs (§7.1).
//!
//! Four templates, each sent at most once per typosquatting registrant:
//!
//! 1. webmail credentials for a monitored account at a major provider;
//! 2. shell credentials for a monitored VPS account;
//! 3. a link to a "tax document" on a monitored sharing service;
//! 4. a DOCX attachment with fake payment details that beacons when
//!    opened (DOCX readers fetch external resources more readily than PDF
//!    readers, which is why the paper settled on DOCX).
//!
//! Every design embeds a 1×1 tracking pixel: presence of a fetch proves
//! the email was opened; absence proves nothing (clients may block remote
//! images).

use ets_core::DomainName;
use ets_mail::{Message, MessageBuilder};
use serde::{Deserialize, Serialize};

/// The four §7.1 designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HoneyDesign {
    /// Login for a monitored webmail account.
    WebmailCredentials,
    /// Login for a monitored shell account.
    ShellCredentials,
    /// Link to a monitored shared document.
    SharedTaxDocument,
    /// Beaconing DOCX with fake payment information.
    PaymentDocx,
}

impl HoneyDesign {
    /// All four designs.
    pub const ALL: [HoneyDesign; 4] = [
        HoneyDesign::WebmailCredentials,
        HoneyDesign::ShellCredentials,
        HoneyDesign::SharedTaxDocument,
        HoneyDesign::PaymentDocx,
    ];
}

/// A built honey email plus its monitored resources.
#[derive(Debug, Clone)]
pub struct HoneyEmail {
    /// Which design was used.
    pub design: HoneyDesign,
    /// The message to send.
    pub message: Message,
    /// Target typo domain.
    pub to_domain: DomainName,
    /// URL of the tracking pixel (unique per email).
    pub pixel_url: String,
    /// The monitored honey resource (account name / document URL), if the
    /// design carries one beyond the pixel.
    pub honey_resource: Option<String>,
}

/// Builds one honey email of the given design for a target domain.
///
/// `token` must be unique per (domain, design): it keys the monitoring
/// logs. The wording deliberately mimics plausible human email (the paper
/// piloted designs with colleagues until spam filters passed them).
pub fn build(design: HoneyDesign, to_domain: &DomainName, token: u64) -> HoneyEmail {
    let pixel_url = format!("http://cdn-metrics.example/px/{token}.gif");
    let pixel = format!("<img src=\"{pixel_url}\" width=1 height=1>");
    let rcpt_local = pick_local(token);
    let to = format!("{rcpt_local}@{to_domain}");
    let (subject, body, honey_resource, attach): (
        String,
        String,
        Option<String>,
        Option<(String, String)>,
    ) = match design {
        HoneyDesign::WebmailCredentials => {
            let account = format!("taxreturns.helper+{token}@bigwebmail.example");
            (
                    "your new mailbox".to_owned(),
                    format!(
                        "Hey,\n\nI set up the shared mailbox we talked about.\nLogin: {account}\npassword: Spring2017!{}\n\nDelete this after you log in.\n{pixel}",
                        token % 97
                    ),
                    Some(account),
                    None,
                )
        }
        HoneyDesign::ShellCredentials => {
            let account = format!("deploy{}@build-box.example", token % 1000);
            (
                    "ssh access".to_owned(),
                    format!(
                        "As requested:\nhost: build-box.example\nusername: deploy{}\npassword: hunter{}!\n\nPing me if the key does not work.\n{pixel}",
                        token % 1000,
                        token % 89
                    ),
                    Some(account),
                    None,
                )
        }
        HoneyDesign::SharedTaxDocument => {
            let url = format!("https://docshare.example/d/tax-{token}");
            (
                    "2016 tax forms".to_owned(),
                    format!(
                        "Hi,\n\nthe accountant uploaded the 2016 tax documents here:\n{url}\n\nPlease check the W-2 figures before Friday.\n{pixel}"
                    ),
                    Some(url),
                    None,
                )
        }
        HoneyDesign::PaymentDocx => {
            let beacon = format!("http://cdn-metrics.example/doc/{token}.png");
            (
                "updated payment details".to_owned(),
                format!(
                    "Hello,\n\nthe updated payment information is attached.\n\nRegards\n{pixel}"
                ),
                Some(beacon.clone()),
                Some((
                    "payment-details.docx".to_owned(),
                    format!("REMOTE:{beacon}\nBeneficiary: Acme Supplies\nIBAN: XX00 0000 {token}"),
                )),
            )
        }
    };
    let mut builder = MessageBuilder::new()
        .raw_from(&format!(
            "{} <{}@plausible-sender.example>",
            sender_name(token),
            sender_name(token)
        ))
        .raw_to(&to)
        .subject(&subject)
        .date("Thu, 15 Jun 2017 10:00:00 +0000")
        .message_id(&format!("<honey-{token}@plausible-sender.example>"))
        .body(&body);
    if let Some((name, content)) = attach {
        let mut data = b"PK\x03\x04ETSOOXML:".to_vec();
        data.extend_from_slice(content.as_bytes());
        builder = builder.attach(&name, "application/vnd.openxmlformats-officedocument", data);
    }
    HoneyEmail {
        design,
        message: builder.build(),
        to_domain: to_domain.clone(),
        pixel_url,
        honey_resource,
    }
}

fn pick_local(token: u64) -> &'static str {
    const LOCALS: [&str; 8] = [
        "john.smith",
        "accounting",
        "m.jones",
        "sarah.g",
        "office",
        "k.chen",
        "dpatel",
        "maria",
    ];
    LOCALS[(token % LOCALS.len() as u64) as usize]
}

fn sender_name(token: u64) -> &'static str {
    const NAMES: [&str; 6] = ["paul", "jenny", "marcus", "olivia", "tom", "rachel"];
    NAMES[(token % NAMES.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn all_designs_build() {
        for (i, design) in HoneyDesign::ALL.into_iter().enumerate() {
            let h = build(design, &d("outfook.com"), i as u64 + 1);
            assert_eq!(h.design, design);
            assert!(h.message.body.contains("cdn-metrics.example/px/"));
            assert!(h
                .message
                .to_addr()
                .unwrap()
                .domain()
                .ends_with("outfook.com"));
        }
    }

    #[test]
    fn tokens_make_unique_pixels() {
        let a = build(HoneyDesign::WebmailCredentials, &d("x.com"), 1);
        let b = build(HoneyDesign::WebmailCredentials, &d("x.com"), 2);
        assert_ne!(a.pixel_url, b.pixel_url);
    }

    #[test]
    fn credential_designs_carry_credentials() {
        let h = build(HoneyDesign::WebmailCredentials, &d("x.com"), 7);
        assert!(h.message.body.contains("password:"));
        assert!(h.honey_resource.is_some());
        let s = build(HoneyDesign::ShellCredentials, &d("x.com"), 7);
        assert!(s.message.body.contains("username:"));
    }

    #[test]
    fn docx_design_attaches_beaconing_document() {
        let h = build(HoneyDesign::PaymentDocx, &d("x.com"), 9);
        assert_eq!(h.message.attachments.len(), 1);
        assert_eq!(
            h.message.attachments[0].extension().as_deref(),
            Some("docx")
        );
        let text = String::from_utf8_lossy(&h.message.attachments[0].data);
        assert!(text.contains("REMOTE:http://cdn-metrics.example/doc/9.png"));
    }

    #[test]
    fn tax_document_links_monitored_service() {
        let h = build(HoneyDesign::SharedTaxDocument, &d("x.com"), 11);
        assert!(h
            .honey_resource
            .as_deref()
            .unwrap()
            .contains("docshare.example"));
        assert!(h.message.body.contains("docshare.example/d/tax-11"));
    }

    #[test]
    fn wire_round_trip() {
        let h = build(HoneyDesign::PaymentDocx, &d("bankofamericqa.com"), 13);
        let wire = h.message.to_wire();
        let parsed = Message::parse(&wire).unwrap();
        assert_eq!(parsed.attachments.len(), 1);
        assert_eq!(parsed.subject(), "updated payment details");
    }
}
