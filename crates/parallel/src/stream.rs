//! Streaming fan-out with deterministic reorder-commit.
//!
//! The batch combinators in the crate root materialize their whole input
//! before fanning out — fine for a table of targets, fatal for an
//! open-ended email stream. This module provides the streaming analogue:
//! a producer feeds work units through a [`Bounded`] channel (back
//! pressure, no unbounded buffering), workers map them in parallel, and
//! a sequence-number [`ReorderBuffer`] replays results to a sequential
//! `commit` closure **in input order**. The commit closure therefore
//! observes exactly the sequence a single-threaded loop would produce —
//! the property every downstream consumer (incremental funnel state,
//! storage pipeline, metrics) relies on for byte-identical output at any
//! thread count or channel depth.
//!
//! Memory is bounded by construction: at most `depth` unprocessed items,
//! `workers` in-flight items, and `depth + workers` uncommitted results
//! exist at once, so peak memory is O(workers × depth × unit size)
//! regardless of stream length.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};

/// Process-wide channel depth for [`stream_map`] (work units buffered
/// between the producer and the workers). `0` selects the default.
static STREAM_DEPTH: AtomicUsize = AtomicUsize::new(0);

/// Default channel depth: deep enough to keep workers busy across commit
/// hiccups, shallow enough that a day-sized work unit keeps peak memory
/// far below the materialized batch.
const DEFAULT_STREAM_DEPTH: usize = 64;

/// Sets the channel depth for subsequent [`stream_map`] calls
/// (`0` restores the default). Output never depends on this value —
/// only peak memory and scheduling slack do.
pub fn set_stream_depth(depth: usize) {
    STREAM_DEPTH.store(depth, Ordering::Relaxed);
}

/// The effective channel depth.
pub fn stream_depth() -> usize {
    match STREAM_DEPTH.load(Ordering::Relaxed) {
        0 => DEFAULT_STREAM_DEPTH,
        n => n,
    }
}

struct ChannelState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC/SPSC channel: `send` blocks while the queue is full
/// (back pressure), `recv` blocks while it is empty, and `close` wakes
/// every waiter so shutdown never hangs.
///
/// Built on `Mutex` + `Condvar` only — the work units here are day-sized
/// batches, so channel overhead is irrelevant and a dependency-free
/// implementation keeps the determinism story auditable.
pub struct Bounded<T> {
    capacity: usize,
    state: Mutex<ChannelState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> Bounded<T> {
    /// Creates a channel holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            capacity: capacity.max(1),
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Poison only means another thread panicked mid-operation; the panic
    /// still propagates through the scope join, so recovering the guard
    /// here never masks a failure.
    fn lock(&self) -> MutexGuard<'_, ChannelState<T>> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Blocks until there is room, then enqueues `item`. Returns `false`
    /// (dropping the item) when the channel closed — the receiving side
    /// is gone and the sender should stop producing.
    pub fn send(&self, item: T) -> bool {
        let mut s = self.lock();
        while s.queue.len() >= self.capacity && !s.closed {
            s = self.not_full.wait(s).unwrap_or_else(|p| p.into_inner());
        }
        if s.closed {
            return false;
        }
        s.queue.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        true
    }

    /// Blocks until an item arrives, returning `None` once the channel is
    /// closed **and** drained.
    pub fn recv(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.queue.pop_front() {
                drop(s);
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the channel: senders drop further items, receivers drain
    /// what is queued and then see `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// Reassembles out-of-order `(sequence, value)` pairs into the canonical
/// input order: values become ready exactly when every earlier sequence
/// number has been pushed and popped.
pub struct ReorderBuffer<T> {
    next: usize,
    pending: BTreeMap<usize, T>,
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> Self {
        ReorderBuffer::new()
    }
}

impl<T> ReorderBuffer<T> {
    /// An empty buffer expecting sequence number 0 first.
    pub fn new() -> ReorderBuffer<T> {
        ReorderBuffer {
            next: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Holds a value until its turn comes.
    pub fn push(&mut self, seq: usize, value: T) {
        debug_assert!(seq >= self.next, "sequence {seq} already committed");
        self.pending.insert(seq, value);
    }

    /// The next in-order value, if it has arrived.
    pub fn pop_ready(&mut self) -> Option<(usize, T)> {
        let value = self.pending.remove(&self.next)?;
        let seq = self.next;
        self.next += 1;
        Some((seq, value))
    }

    /// Number of values held out of order.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

/// Closes both pipeline channels when dropped. Normally a no-op (the
/// producer and last worker close them first); if the commit closure
/// panics it unblocks every producer/worker `send` so the thread scope
/// can join and propagate the panic instead of deadlocking.
struct CloseOnDrop<'c, A, B> {
    input: &'c Bounded<A>,
    output: &'c Bounded<B>,
}

impl<A, B> Drop for CloseOnDrop<'_, A, B> {
    fn drop(&mut self) {
        self.input.close();
        self.output.close();
    }
}

/// Streams `items` through a parallel map with sequential, in-order
/// commit — the streaming analogue of [`par_map`](crate::par_map).
///
/// A producer thread pulls from the iterator and feeds a [`Bounded`]
/// channel of depth [`stream_depth()`]; [`threads()`](crate::threads)
/// workers apply `f` (which receives the item's sequence number, so
/// callers can derive per-unit RNG streams); the calling thread replays
/// results through a [`ReorderBuffer`] and hands each to `commit` in
/// input order. `commit` runs strictly sequentially on the caller's
/// thread, so it may hold `&mut` state without synchronization.
///
/// With `threads() <= 1` everything runs inline on the caller's thread —
/// no channels, no producer thread — and the deterministic workload
/// counters (`parallel.stream.{calls,items}`) fire identically on both
/// paths, so metrics snapshots never depend on the thread count.
pub fn stream_map<T, R, I, F, C>(items: I, f: F, mut commit: C)
where
    T: Send,
    R: Send,
    I: IntoIterator<Item = T>,
    I::IntoIter: Send,
    F: Fn(usize, T) -> R + Sync,
    C: FnMut(usize, R),
{
    let workers = crate::threads();
    let depth = stream_depth();
    ets_obs::metrics::counter_add("parallel.stream.calls", 1);
    let mut span = ets_obs::span::enter_at("parallel.stream", ets_obs::Level::Debug);
    span.arg("workers", workers as u64);
    span.arg("depth", depth as u64);
    if workers <= 1 {
        let mut n = 0u64;
        for (seq, item) in items.into_iter().enumerate() {
            commit(seq, f(seq, item));
            n += 1;
        }
        ets_obs::metrics::counter_add("parallel.stream.items", n);
        span.arg("items", n);
        return;
    }
    let parent = span.id();
    // Results may arrive up to `depth + workers` positions early, so the
    // output channel is sized to hold them all: a worker never blocks on
    // a result the committer is not yet allowed to take.
    let input: Bounded<(usize, T)> = Bounded::new(depth);
    let output: Bounded<(usize, R)> = Bounded::new(depth + workers);
    let active = AtomicUsize::new(workers);
    let iter = items.into_iter();
    let mut committed = 0u64;
    std::thread::scope(|scope| {
        let (input, output, f, active) = (&input, &output, &f, &active);
        scope.spawn(move || {
            for pair in iter.enumerate() {
                if !input.send(pair) {
                    break; // committer gone (panic path) — stop producing
                }
            }
            input.close();
        });
        for w in 0..workers {
            scope.spawn(move || {
                let mut span = ets_obs::span::worker("parallel.worker", parent, w);
                let mut items_done = 0u64;
                while let Some((seq, item)) = input.recv() {
                    let result = f(seq, item);
                    items_done += 1;
                    if !output.send((seq, result)) {
                        break;
                    }
                }
                if active.fetch_sub(1, Ordering::AcqRel) == 1 {
                    output.close();
                }
                span.arg("items", items_done);
                // Fold this worker's metric shard before the scope
                // joins (see par_map in lib.rs).
                ets_obs::metrics::retire_local();
            });
        }
        let _guard = CloseOnDrop { input, output };
        let mut buffer = ReorderBuffer::new();
        while let Some((seq, result)) = output.recv() {
            buffer.push(seq, result);
            while let Some((ready, result)) = buffer.pop_ready() {
                commit(ready, result);
                committed += 1;
            }
        }
        debug_assert_eq!(buffer.pending(), 0, "results stranded out of order");
    });
    ets_obs::metrics::counter_add("parallel.stream.items", committed);
    span.arg("items", committed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// `set_threads`/`set_stream_depth` are process-global; tests that
    /// touch them must not interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    fn collect_stream(threads: usize, depth: usize, n: usize) -> Vec<(usize, u64)> {
        crate::set_threads(threads);
        set_stream_depth(depth);
        let mut out = Vec::new();
        stream_map(
            (0..n).map(|i| i as u64),
            |seq, x| x * 3 + seq as u64,
            |seq, r| out.push((seq, r)),
        );
        crate::set_threads(0);
        set_stream_depth(0);
        out
    }

    #[test]
    fn commits_in_order_at_any_thread_count_and_depth() {
        let _guard = LOCK.lock().unwrap();
        let expected = collect_stream(1, 0, 1000);
        assert!(expected
            .iter()
            .enumerate()
            .all(|(i, &(s, v))| { s == i && v == 4 * i as u64 }));
        for threads in [2, 3, 8] {
            for depth in [1, 7, 1024] {
                assert_eq!(
                    collect_stream(threads, depth, 1000),
                    expected,
                    "threads={threads} depth={depth}"
                );
            }
        }
    }

    #[test]
    fn empty_and_single_streams() {
        let _guard = LOCK.lock().unwrap();
        assert!(collect_stream(4, 2, 0).is_empty());
        assert_eq!(collect_stream(4, 2, 1), vec![(0, 0)]);
    }

    #[test]
    fn stream_counters_are_thread_count_invariant() {
        let _guard = LOCK.lock().unwrap();
        let snapshot_for = |threads: usize| {
            ets_obs::metrics::reset();
            let _ = collect_stream(threads, 4, 257);
            ets_obs::metrics::snapshot_json()
        };
        let one = snapshot_for(1);
        for threads in [2, 8] {
            assert_eq!(one, snapshot_for(threads), "threads={threads}");
        }
        assert!(one.contains("parallel.stream.items"));
        ets_obs::metrics::reset();
    }

    #[test]
    fn bounded_channel_backpressure_and_close() {
        let ch: Bounded<u32> = Bounded::new(2);
        assert!(ch.send(1));
        assert!(ch.send(2));
        std::thread::scope(|scope| {
            let h = scope.spawn(|| ch.send(3)); // blocks: full
            assert_eq!(ch.recv(), Some(1));
            assert!(h.join().unwrap());
        });
        ch.close();
        assert!(!ch.send(9), "send after close is rejected");
        assert_eq!(ch.recv(), Some(2));
        assert_eq!(ch.recv(), Some(3), "queued items survive close");
        assert_eq!(ch.recv(), None);
    }

    #[test]
    fn reorder_buffer_replays_canonical_order() {
        let mut buf = ReorderBuffer::new();
        buf.push(2, "c");
        buf.push(0, "a");
        assert_eq!(buf.pop_ready(), Some((0, "a")));
        assert_eq!(buf.pop_ready(), None); // 1 missing
        assert_eq!(buf.pending(), 1);
        buf.push(1, "b");
        assert_eq!(buf.pop_ready(), Some((1, "b")));
        assert_eq!(buf.pop_ready(), Some((2, "c")));
        assert_eq!(buf.pop_ready(), None);
    }

    #[test]
    fn commit_sees_sequential_mutable_state() {
        let _guard = LOCK.lock().unwrap();
        crate::set_threads(6);
        set_stream_depth(3);
        // A running checksum is order-sensitive: any out-of-order commit
        // changes the result.
        let mut acc = 0u64;
        stream_map(
            0..5_000u64,
            |_, x| x.wrapping_mul(0x9E37_79B9),
            |_, r| acc = acc.rotate_left(7) ^ r,
        );
        crate::set_threads(0);
        set_stream_depth(0);
        let mut want = 0u64;
        for x in 0..5_000u64 {
            want = want.rotate_left(7) ^ x.wrapping_mul(0x9E37_79B9);
        }
        assert_eq!(acc, want);
    }
}
