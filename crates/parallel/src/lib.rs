//! Deterministic data-parallel execution layer.
//!
//! The measurement pipeline is embarrassingly parallel at every stage —
//! per-target typo generation, per-day traffic synthesis, per-email
//! funnel passes, per-bucket WHOIS comparisons — but naive parallelism
//! destroys reproducibility: a shared RNG consumed in scheduler order
//! makes output depend on thread interleaving.
//!
//! This crate provides the two pieces that make parallel runs
//! **byte-identical to sequential runs**:
//!
//! 1. *Ordered* parallel combinators ([`par_map`], [`par_flat_map`],
//!    [`par_fold`]) built on `std::thread::scope`. Work is split into
//!    contiguous chunks pulled from an atomic cursor (dynamic load
//!    balance), but results are reassembled in input order and fold
//!    states are merged in chunk order, so the output is a pure function
//!    of the input regardless of thread count or scheduling.
//! 2. Per-unit RNG streams ([`derive_rng`]): every parallel unit (a
//!    target, a day, an email, a bucket) gets its own `ChaCha8Rng` seeded
//!    from `(base_seed, domain, unit)`. No draw ever crosses a unit
//!    boundary, so decomposing a loop cannot change what any unit draws.
//!
//! For inputs too large (or too open-ended) to materialize, the
//! [`stream`] module provides the streaming analogue: [`stream_map`]
//! pushes an iterator through bounded back-pressure channels to a worker
//! pool and replays results through a sequence-number reorder buffer, so
//! a sequential `commit` closure observes exactly the order a
//! single-threaded loop would produce — same bytes, bounded memory.
//!
//! The worker count is a process-wide setting ([`set_threads`]), wired to
//! the `repro` driver's `--threads` flag. `threads() == 1` executes
//! inline with zero thread overhead — `--threads 1` and `--threads N`
//! produce identical bytes, which `tests/determinism.rs` asserts.
//!
//! Every fan-out is observable through `ets-obs`: the call opens a
//! `parallel.par_map` / `parallel.par_fold` span (a child of whatever
//! span the caller had open) and each worker thread opens a
//! `parallel.worker` child span carrying its worker index and items
//! processed. Deterministic workload counters
//! (`parallel.<kind>.{calls,items}`) fire identically on the inline and
//! parallel paths, so the metrics snapshot never depends on the thread
//! count; the spans themselves are wall-clock artifacts and only exist
//! when tracing is enabled (`repro --trace`).

#![forbid(unsafe_code)]

pub mod stream;

pub use stream::{set_stream_depth, stream_depth, stream_map, Bounded, ReorderBuffer};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Stream-domain tags, one per independent RNG consumer. Units in
/// different domains never share a stream even when their ids collide.
pub mod domain {
    /// Per-target candidate/registration sampling in `World::build`.
    pub const POPULATION_TARGET: u64 = 0x01;
    /// Registrant archetype synthesis in `World::build`.
    pub const POPULATION_REGISTRANT: u64 = 0x02;
    /// Filler-site and benign-background registration.
    pub const POPULATION_BACKGROUND: u64 = 0x03;
    /// Per-provider NS customer-base sizing.
    pub const POPULATION_NS_BASE: u64 = 0x04;
    /// Per-day traffic synthesis in `TrafficGenerator::generate`.
    pub const TRAFFIC_DAY: u64 = 0x10;
    /// One-off traffic setup (campaign and SMTP-user tables).
    pub const TRAFFIC_SETUP: u64 = 0x11;
    /// Honeypot behaviour sampling.
    pub const HONEYPOT: u64 = 0x20;
}

static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count for all subsequent parallel calls.
/// `0` (the default) means one worker per available core.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The effective worker count.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Derives an independent `ChaCha8Rng` stream for one parallel unit.
///
/// The 256-bit seed is expanded from `(base_seed, domain, unit)` with a
/// splitmix64 chain, so streams for distinct units are statistically
/// independent and a unit's stream depends only on its identity — never
/// on how many units ran before it or on which thread.
pub fn derive_rng(base_seed: u64, domain: u64, unit: u64) -> ChaCha8Rng {
    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let h = mix(mix(mix(base_seed) ^ domain) ^ unit);
    let mut seed = [0u8; 32];
    for (i, chunk) in seed.chunks_mut(8).enumerate() {
        chunk.copy_from_slice(&mix(h ^ (i as u64 + 1)).to_le_bytes());
    }
    ChaCha8Rng::from_seed(seed)
}

/// Upper bound on chunks per worker: small enough to keep bookkeeping
/// cheap, large enough to balance skewed workloads.
const CHUNKS_PER_WORKER: usize = 8;

/// Records the deterministic fan-out metrics and opens the fan-out span.
///
/// The counters fire identically on the inline (`threads() == 1`) and
/// parallel paths — they count *workload*, not scheduling — so the
/// metrics snapshot stays byte-identical across thread counts. The
/// per-worker child spans below are scheduling-dependent by nature and
/// live only in trace artifacts.
fn fanout_span(kind: &str, items: usize, workers: usize) -> ets_obs::SpanGuard {
    ets_obs::metrics::counter_add(&format!("parallel.{kind}.calls"), 1);
    ets_obs::metrics::counter_add(&format!("parallel.{kind}.items"), items as u64);
    let mut span = ets_obs::span::enter_at(&format!("parallel.{kind}"), ets_obs::Level::Debug);
    span.arg("items", items as u64);
    span.arg("workers", workers as u64);
    span
}

fn chunk_size(len: usize, workers: usize) -> usize {
    len.div_ceil(workers * CHUNKS_PER_WORKER).max(1)
}

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// `f` receives the item's index alongside the item so callers can derive
/// per-unit RNG streams. The result is identical for any thread count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = threads();
    let fan = fanout_span("par_map", items.len(), workers);
    if workers <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let parent = fan.id();
    let chunk = chunk_size(items.len(), workers);
    let n_chunks = items.len().div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(n_chunks));
    std::thread::scope(|scope| {
        let (cursor, done, f, items) = (&cursor, &done, &f, items);
        for w in 0..workers.min(n_chunks) {
            scope.spawn(move || {
                let mut span = ets_obs::span::worker("parallel.worker", parent, w);
                let mut items_done = 0u64;
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let start = c * chunk;
                    let end = (start + chunk).min(items.len());
                    let out: Vec<R> = items[start..end]
                        .iter()
                        .enumerate()
                        .map(|(k, t)| f(start + k, t))
                        .collect();
                    items_done += (end - start) as u64;
                    // Poison only means another worker panicked mid-push;
                    // the panic propagates through the scope join
                    // regardless, so recovering the guard here never masks
                    // a failure.
                    done.lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .push((c, out));
                }
                span.arg("items", items_done);
                // Fold this worker's metric shard into the global
                // retired state *inside* the scope, so counter reads
                // immediately after the join are complete without
                // leaning on TLS-destructor ordering.
                ets_obs::metrics::retire_local();
            });
        }
    });
    let mut parts = done.into_inner().unwrap_or_else(|p| p.into_inner());
    parts.sort_unstable_by_key(|(c, _)| *c);
    let mut result = Vec::with_capacity(items.len());
    for (_, mut part) in parts {
        result.append(&mut part);
    }
    result
}

/// Like [`par_map`], but `f` produces a `Vec` per item and the vectors
/// are concatenated in input order — the parallel analogue of
/// `flat_map` + `collect`.
pub fn par_flat_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Vec<R> + Sync,
{
    let nested = par_map(items, f);
    let mut out = Vec::with_capacity(nested.iter().map(Vec::len).sum());
    for mut part in nested {
        out.append(&mut part);
    }
    out
}

/// Folds `items` in parallel: each chunk folds into a fresh accumulator
/// (`init`), and accumulators merge **in chunk order**, so any
/// order-sensitive merge still sees a canonical sequence.
pub fn par_fold<T, A, I, F, M>(items: &[T], init: I, fold: F, merge: M) -> A
where
    T: Sync,
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, &T) + Sync,
    M: Fn(&mut A, A),
{
    let workers = threads();
    let fan = fanout_span("par_fold", items.len(), workers);
    if workers <= 1 || items.len() < 2 {
        let mut acc = init();
        for (i, t) in items.iter().enumerate() {
            fold(&mut acc, i, t);
        }
        return acc;
    }
    let parent = fan.id();
    let chunk = chunk_size(items.len(), workers);
    let n_chunks = items.len().div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, A)>> = Mutex::new(Vec::with_capacity(n_chunks));
    std::thread::scope(|scope| {
        let (cursor, done, init, fold, items) = (&cursor, &done, &init, &fold, items);
        for w in 0..workers.min(n_chunks) {
            scope.spawn(move || {
                let mut span = ets_obs::span::worker("parallel.worker", parent, w);
                let mut items_done = 0u64;
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let start = c * chunk;
                    let end = (start + chunk).min(items.len());
                    let mut acc = init();
                    for (k, t) in items[start..end].iter().enumerate() {
                        fold(&mut acc, start + k, t);
                    }
                    items_done += (end - start) as u64;
                    done.lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .push((c, acc));
                }
                span.arg("items", items_done);
                // See par_map: deterministic shard retirement at the
                // fan-out boundary.
                ets_obs::metrics::retire_local();
            });
        }
    });
    let mut parts = done.into_inner().unwrap_or_else(|p| p.into_inner());
    parts.sort_unstable_by_key(|(c, _)| *c);
    let mut parts = parts.into_iter().map(|(_, a)| a);
    let Some(mut acc) = parts.next() else {
        return init();
    };
    for part in parts {
        merge(&mut acc, part);
    }
    acc
}

/// Runs `f` once per index in `0..n` in parallel, collecting results in
/// index order. Convenience wrapper over [`par_map`] for loops that are
/// indexed rather than slice-driven (e.g. simulated days).
pub fn par_map_index<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    par_map(&indices, |_, &i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// `set_threads` is process-global; tests that touch it must not
    /// interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_preserves_order() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..10_000).collect();
        for threads in [1, 2, 7] {
            set_threads(threads);
            let out = par_map(&items, |i, &x| x * 2 + i as u64);
            assert_eq!(out.len(), items.len());
            assert!(out.iter().enumerate().all(|(i, &v)| v == 3 * i as u64));
        }
        set_threads(0);
    }

    #[test]
    fn par_fold_matches_sequential() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..5_000).map(|i| i % 97).collect();
        let run = |threads| {
            set_threads(threads);
            par_fold(
                &items,
                Vec::new,
                |acc: &mut Vec<u64>, i, &x| acc.push(x + i as u64),
                |acc, part| acc.extend(part),
            )
        };
        let seq = run(1);
        let par = run(6);
        set_threads(0);
        assert_eq!(seq, par);
    }

    #[test]
    fn par_flat_map_concatenates_in_order() {
        let _guard = LOCK.lock().unwrap();
        set_threads(4);
        let items: Vec<usize> = (0..1000).collect();
        let out = par_flat_map(&items, |_, &x| vec![x, x]);
        set_threads(0);
        assert_eq!(out.len(), 2000);
        assert!(out.chunks(2).enumerate().all(|(i, c)| c == [i, i]));
    }

    #[test]
    fn derived_streams_are_stable_and_distinct() {
        let draw = |base, dom, unit| {
            let mut rng = derive_rng(base, dom, unit);
            (0..8).map(|_| rng.gen::<u64>()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1, 2, 3), draw(1, 2, 3));
        assert_ne!(draw(1, 2, 3), draw(1, 2, 4));
        assert_ne!(draw(1, 2, 3), draw(1, 3, 3));
        assert_ne!(draw(1, 2, 3), draw(2, 2, 3));
    }

    #[test]
    fn empty_and_single_inputs() {
        let _guard = LOCK.lock().unwrap();
        set_threads(4);
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
        let folded = par_fold(
            &empty,
            || 0u32,
            |acc, _, &x| *acc += x,
            |acc, part| *acc += part,
        );
        set_threads(0);
        assert_eq!(folded, 0);
    }

    #[test]
    fn fanout_emits_parented_worker_spans_when_traced() {
        let _guard = LOCK.lock().unwrap();
        ets_obs::trace::disable();
        ets_obs::metrics::reset();
        ets_obs::trace::enable(ets_obs::Filter::all());
        set_threads(4);
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |_, &x| x + 1);
        set_threads(0);
        let events = ets_obs::trace::drain();
        ets_obs::trace::disable();
        assert_eq!(out.len(), 100);
        let fan = events
            .iter()
            .find(|e| e.name == "parallel.par_map")
            .expect("fan-out span recorded");
        let workers: Vec<_> = events
            .iter()
            .filter(|e| e.name == "parallel.worker")
            .collect();
        assert!(!workers.is_empty());
        assert!(workers.iter().all(|w| w.parent == fan.id && w.tid > 0));
        // The workers' item counts partition the input exactly.
        let total: u64 = workers
            .iter()
            .flat_map(|w| w.args.iter())
            .filter(|(k, _)| *k == "items")
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(total, items.len() as u64);
        assert_eq!(
            ets_obs::metrics::counter_value("parallel.par_map.items"),
            items.len() as u64
        );
        ets_obs::metrics::reset();
    }

    #[test]
    fn fanout_counters_are_thread_count_invariant() {
        let _guard = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..257).collect();
        let snapshot_for = |threads: usize| {
            ets_obs::metrics::reset();
            set_threads(threads);
            let _ = par_map(&items, |_, &x| x);
            let _ = par_fold(
                &items,
                || 0u64,
                |acc, _, &x| *acc += x,
                |acc, part| *acc += part,
            );
            set_threads(0);
            ets_obs::metrics::snapshot_json()
        };
        let one = snapshot_for(1);
        for threads in [2, 8] {
            assert_eq!(one, snapshot_for(threads), "threads={threads}");
        }
        ets_obs::metrics::reset();
    }

    #[test]
    fn par_map_index_runs_every_index() {
        let _guard = LOCK.lock().unwrap();
        set_threads(3);
        let out = par_map_index(257, |i| i * i);
        set_threads(0);
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
    }
}
