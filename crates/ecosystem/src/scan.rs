//! The SMTP-support census (Table 4).
//!
//! §5.1: for every ctypo, collect MX and A records; per RFC 5321 fall back
//! to the A record when no MX exists; then check (zmap-style) whether the
//! resulting address actually runs an SMTP listener and how STARTTLS
//! behaves. Table 4's six rows fall out of this decision tree.

use crate::population::{SmtpProfile, World};
use ets_dns::resolver::{MailTarget, Resolver};
use ets_dns::Fqdn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Table 4's support categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SmtpSupport {
    /// No MX or A record found.
    NoMxOrA,
    /// DNS yielded no information (lame delegation / no response).
    NoInfo,
    /// Records exist but nothing listens on SMTP ports.
    NoEmailSupport,
    /// SMTP works, STARTTLS not offered.
    EmailNoStarttls,
    /// STARTTLS offered but fails.
    StarttlsWithErrors,
    /// STARTTLS works.
    StarttlsOk,
}

impl SmtpSupport {
    /// All categories in Table 4 row order.
    pub const ALL: [SmtpSupport; 6] = [
        SmtpSupport::NoMxOrA,
        SmtpSupport::NoInfo,
        SmtpSupport::NoEmailSupport,
        SmtpSupport::EmailNoStarttls,
        SmtpSupport::StarttlsWithErrors,
        SmtpSupport::StarttlsOk,
    ];

    /// Stable snake-case key used for metric names (`scan.<key>`).
    pub fn key(self) -> &'static str {
        match self {
            SmtpSupport::NoMxOrA => "no_mx_or_a",
            SmtpSupport::NoInfo => "no_info",
            SmtpSupport::NoEmailSupport => "no_email_support",
            SmtpSupport::EmailNoStarttls => "email_no_starttls",
            SmtpSupport::StarttlsWithErrors => "starttls_with_errors",
            SmtpSupport::StarttlsOk => "starttls_ok",
        }
    }
}

impl fmt::Display for SmtpSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SmtpSupport::NoMxOrA => "No MX or A record found",
            SmtpSupport::NoInfo => "No info",
            SmtpSupport::NoEmailSupport => "No email supp.",
            SmtpSupport::EmailNoStarttls => "Supp. email, no STARTTLS",
            SmtpSupport::StarttlsWithErrors => "Supp. STARTTLS with errors",
            SmtpSupport::StarttlsOk => "Supp. STARTTLS w/o errors",
        };
        f.write_str(s)
    }
}

/// Census result over a population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupportCensus {
    /// Count per category, Table 4 row order.
    pub counts: [usize; 6],
}

impl SupportCensus {
    /// Total domains scanned.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Percentage of the whole population per category.
    pub fn percent_total(&self, cat: SmtpSupport) -> f64 {
        let i = SmtpSupport::ALL.iter().position(|c| *c == cat).unwrap();
        100.0 * self.counts[i] as f64 / self.total().max(1) as f64
    }

    /// Percentage among domains that *did* yield DNS information
    /// (Table 4's "% analyzed" column excludes the "No info" row).
    pub fn percent_analyzed(&self, cat: SmtpSupport) -> f64 {
        let i = SmtpSupport::ALL.iter().position(|c| *c == cat).unwrap();
        let no_info = self.counts[1];
        let analyzed = self.total() - no_info;
        if cat == SmtpSupport::NoInfo {
            return f64::NAN;
        }
        100.0 * self.counts[i] as f64 / analyzed.max(1) as f64
    }

    /// Fraction of domains capable of receiving email (the paper's 43.3%).
    pub fn supports_email_share(&self) -> f64 {
        let s = self.counts[3] + self.counts[4] + self.counts[5];
        s as f64 / self.total().max(1) as f64
    }

    /// Table-4 formatted rows: (label, count, % total, % analyzed).
    pub fn rows(&self) -> Vec<(String, usize, f64, String)> {
        SmtpSupport::ALL
            .iter()
            .enumerate()
            .map(|(i, cat)| {
                let pa = self.percent_analyzed(*cat);
                let pa_s = if pa.is_nan() {
                    "-".to_owned()
                } else {
                    format!("{pa:.1}")
                };
                (
                    cat.to_string(),
                    self.counts[i],
                    self.percent_total(*cat),
                    pa_s,
                )
            })
            .collect()
    }
}

/// Classifies one ctypo into its Table-4 category.
///
/// Convenience wrapper that builds a throwaway resolver; bulk callers
/// should build one [`World::resolver`] and use
/// [`classify_with_resolver`], since constructing a resolver clones the
/// registry.
pub fn classify_domain(
    world: &World,
    domain: &Fqdn,
    smtp: SmtpProfile,
    has_zone: bool,
) -> SmtpSupport {
    classify_with_resolver(&world.resolver(), domain, smtp, has_zone)
}

/// Classifies one ctypo into its Table-4 category using an existing
/// resolver.
pub fn classify_with_resolver(
    resolver: &Resolver,
    domain: &Fqdn,
    smtp: SmtpProfile,
    has_zone: bool,
) -> SmtpSupport {
    if !has_zone {
        return SmtpSupport::NoInfo;
    }
    match resolver.resolve_mail(domain) {
        MailTarget::NxDomain | MailTarget::Unreachable => SmtpSupport::NoMxOrA,
        MailTarget::Mx(_) | MailTarget::ImplicitA(_) => match smtp {
            SmtpProfile::NoListener | SmtpProfile::SilentTimeout | SmtpProfile::ConnectionReset => {
                SmtpSupport::NoEmailSupport
            }
            SmtpProfile::PlainOnly | SmtpProfile::BounceAll => SmtpSupport::EmailNoStarttls,
            SmtpProfile::StarttlsBroken => SmtpSupport::StarttlsWithErrors,
            SmtpProfile::StarttlsOk => SmtpSupport::StarttlsOk,
        },
    }
}

/// Runs the census over every ctypo in the world.
pub fn scan_world(world: &World) -> SupportCensus {
    let mut scan_span = ets_obs::span!("scan.census");
    scan_span.arg("domains", world.ctypos.len() as u64);
    let mut counts = [0usize; 6];
    let resolver = world.resolver();
    for c in &world.ctypos {
        let fq = Fqdn::from_domain(&c.candidate.domain);
        let cat = classify_with_resolver(&resolver, &fq, c.smtp, c.has_zone);
        let i = SmtpSupport::ALL.iter().position(|x| *x == cat).unwrap();
        counts[i] += 1;
    }
    ets_obs::metrics::counter_add("scan.domains", world.ctypos.len() as u64);
    for (cat, &count) in SmtpSupport::ALL.iter().zip(counts.iter()) {
        if count > 0 {
            ets_obs::metrics::counter_add(&format!("scan.{}", cat.key()), count as u64);
        }
    }
    SupportCensus { counts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    #[test]
    fn census_covers_every_domain() {
        let w = World::build(PopulationConfig::tiny(4));
        let census = scan_world(&w);
        assert_eq!(census.total(), w.ctypos.len());
    }

    #[test]
    fn all_categories_populated_in_larger_world() {
        let w = World::build(PopulationConfig {
            n_targets: 200,
            ..PopulationConfig::tiny(12)
        });
        let census = scan_world(&w);
        for (i, c) in census.counts.iter().enumerate() {
            assert!(*c > 0, "category {i} empty: {:?}", census.counts);
        }
    }

    #[test]
    fn table4_shape_holds() {
        // Paper: 43.3% support SMTP; 34.4% no info; 22.3% cannot receive.
        // Shape goals: a large email-capable share, a large no-info share,
        // and STARTTLS-ok as the single biggest capable category.
        let w = World::build(PopulationConfig {
            n_targets: 300,
            ..PopulationConfig::tiny(13)
        });
        let census = scan_world(&w);
        let email_share = census.supports_email_share();
        assert!(
            email_share > 0.15 && email_share < 0.7,
            "email share {email_share}"
        );
        let no_info = census.percent_total(SmtpSupport::NoInfo);
        assert!(no_info > 20.0 && no_info < 50.0, "no-info {no_info}%");
        // STARTTLS-ok beats plain-only among capable domains.
        assert!(
            census.percent_total(SmtpSupport::StarttlsOk)
                > census.percent_total(SmtpSupport::EmailNoStarttls) * 0.8
        );
    }

    #[test]
    fn rows_format() {
        let w = World::build(PopulationConfig::tiny(4));
        let census = scan_world(&w);
        let rows = census.rows();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[1].3, "-", "No-info row has no %-analyzed");
        let pct_sum: f64 = rows.iter().map(|r| r.2).sum();
        assert!((pct_sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn lame_delegation_is_no_info() {
        let w = World::build(PopulationConfig::tiny(4));
        let lame = w.ctypos.iter().find(|c| !c.has_zone).unwrap();
        let cat = classify_domain(
            &w,
            &Fqdn::from_domain(&lame.candidate.domain),
            lame.smtp,
            lame.has_zone,
        );
        assert_eq!(cat, SmtpSupport::NoInfo);
    }
}
