//! # ets-ecosystem
//!
//! The synthetic Internet population and the Section-5 ecosystem analyses.
//!
//! The paper's §5 studies typosquatting "in the wild": it generates every
//! DL-1 typo of the Alexa top million, finds which are registered, scans
//! their MX/A records and SMTP ports, collects WHOIS, and looks for
//! concentration among registrants, mail servers, and name servers. The
//! wild Internet of 2016 is gone, so [`population`] builds a deterministic
//! synthetic stand-in with the same statistical skeleton — heavy-tailed
//! registrant portfolios, a handful of mail-hosting providers serving most
//! typo domains, "cesspool" name servers, privacy proxies, and defensive
//! registrations — and the analyses run against it:
//!
//! * [`whois_cluster`] — the 4-of-6 WHOIS field clustering (union-find).
//! * [`mxconc`] — MX concentration (Figure 8, Table 6).
//! * [`nameserver`] — suspicious name-server ratios.
//! * [`scan`] — the SMTP-support census (Table 4).
//! * [`malware`] — the VirusTotal-style attachment-hash oracle (§4.4.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod malware;
pub mod mxconc;
pub mod nameserver;
pub mod population;
pub mod scan;
pub mod snapshot;
pub mod whois_cluster;

pub use population::{CtypoInfo, PopulationConfig, RegistrantArchetype, SmtpProfile, World};
pub use scan::{scan_world, SmtpSupport, SupportCensus};
