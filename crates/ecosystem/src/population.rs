//! The synthetic Internet population.
//!
//! Builds a deterministic world with the statistical skeleton the paper
//! measured in the wild:
//!
//! * targets from a Zipf popularity list, each spawning DL-1 gtypos;
//! * a registration process in which gtypos of popular targets with low
//!   visual distance are far likelier to be taken (ctypos);
//! * registrants drawn from archetypes — bulk domain sellers,
//!   mail-hosting typosquatters, small-time squatters, defensive
//!   registrars, benign collisions — with Zipf-sized portfolios
//!   (2.3% of registrants own the majority of domains, Figure 8);
//! * mail hosting concentrated on a few provider MX domains (Table 6);
//! * a minority of "cesspool" name servers carrying a typo ratio far
//!   above the ~4% baseline (§5.2);
//! * per-host SMTP behaviour (listening ports, STARTTLS health, whether
//!   anyone ever reads the mailbox) that the scans and honey campaigns
//!   observe.

use ets_core::alexa::{self, PopularityList};
use ets_core::taxonomy::DomainClass;
use ets_core::typogen::{self, TypoCandidate};
use ets_core::{DomainInterner, DomainName, ReverseDl1Index};
use ets_dns::registry::{Registration, Registry};
use ets_dns::resolver::Resolver;
use ets_dns::whois::WhoisRecord;
use ets_dns::zone::Zone;
use ets_dns::Fqdn;
use ets_parallel::{derive_rng, domain as stream, par_map, par_map_index};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Registrant archetypes observed in §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegistrantArchetype {
    /// Companies holding large portfolios for resale; SMTP usually on
    /// (parking providers enable it by default).
    DomainSeller,
    /// Registrants operating SMTP on most of their many typo domains —
    /// the suspicious population of §5.2.
    MailTyposquatter,
    /// Small-time squatters with a handful of domains, often web-only.
    SmallSquatter,
    /// The target's own organization (defensive registrations).
    Defensive,
    /// Legitimate sites that merely happen to be lexically close.
    BenignCollision,
}

/// How a host answers SMTP connections (feeds Table 4 and Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmtpProfile {
    /// No listener on ports 25/465/587.
    NoListener,
    /// Listens, accepts, plain only.
    PlainOnly,
    /// Listens, advertises STARTTLS, upgrade fails.
    StarttlsBroken,
    /// Listens, STARTTLS works.
    StarttlsOk,
    /// Listens but times out before the banner.
    SilentTimeout,
    /// TCP connection resets (network error).
    ConnectionReset,
    /// Listens and rejects every recipient.
    BounceAll,
}

/// One registered candidate typo domain, with ground truth the analyses
/// must *recover*, never read directly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CtypoInfo {
    /// The generated candidate (domain, target, mistake metadata).
    pub candidate: TypoCandidate,
    /// Ground-truth owner id (index into [`World::registrants`]).
    pub owner: usize,
    /// Ground-truth classification.
    pub class: DomainClass,
    /// Whether WHOIS hides behind a privacy proxy.
    pub private: bool,
    /// SMTP behaviour of the host serving this domain.
    pub smtp: SmtpProfile,
    /// Whether a DNS zone is published at all ("No info" rows of Table 4
    /// come from registered names whose delegation is lame).
    pub has_zone: bool,
}

/// A registrant with a portfolio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Registrant {
    /// Stable id (index).
    pub id: usize,
    /// Archetype.
    pub archetype: RegistrantArchetype,
    /// The registrant's true WHOIS identity.
    pub whois: WhoisRecord,
    /// Whether this registrant hides behind a privacy proxy.
    pub private: bool,
    /// Name-server provider index used for the portfolio.
    pub ns_provider: usize,
    /// Mail-hosting MX domain index (None = self-hosted or none).
    pub mx_provider: Option<usize>,
    /// Probability this registrant actually reads captured mail
    /// (§7: nearly always ~0; a handful of actors are curious).
    pub reads_mail: f64,
}

/// Configuration of the synthetic world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of target domains (Alexa top-N).
    pub n_targets: usize,
    /// RNG seed (every world with the same config is identical).
    pub seed: u64,
    /// Base probability that a gtypo of the #1 target is registered.
    pub base_registration_rate: f64,
    /// How quickly registration probability decays with target rank.
    pub rank_decay: f64,
    /// Fraction of ctypos that are defensive registrations.
    pub defensive_share: f64,
    /// Fraction of ctypos that are benign collisions.
    pub benign_share: f64,
    /// Share of registrants using privacy proxies.
    pub privacy_share: f64,
    /// Number of distinct non-proxy registrant identities.
    pub n_registrants: usize,
    /// Number of name-server providers (first `n_cesspool_ns` are dirty).
    pub n_ns_providers: usize,
    /// How many of the NS providers cater to typosquatters.
    pub n_cesspool_ns: usize,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            n_targets: 1_000,
            seed: 20161105, // the paper's ctypo snapshot date (Nov 5, 2016)
            base_registration_rate: 1.3,
            rank_decay: 0.35,
            defensive_share: 0.04,
            benign_share: 0.06,
            privacy_share: 0.44, // Table 5: 22,341 of 50,995 private
            n_registrants: 600,
            n_ns_providers: 40,
            n_cesspool_ns: 4,
        }
    }
}

impl PopulationConfig {
    /// A small world for unit tests (fast to build).
    pub fn tiny(seed: u64) -> Self {
        PopulationConfig {
            n_targets: 60,
            n_registrants: 80,
            seed,
            ..Default::default()
        }
    }

    /// A world scaled to `n_targets` (the `--scale` presets: 1k, 100k,
    /// 1M). The registrant population grows with the target universe so
    /// portfolio sizes keep the paper's heavy tail, but stays exactly at
    /// the historical default below 30k targets so every previously
    /// committed result remains byte-identical.
    pub fn at_scale(n_targets: usize, seed: u64) -> Self {
        let default_registrants = PopulationConfig::default().n_registrants;
        let n_registrants = if n_targets <= 30_000 {
            default_registrants
        } else {
            (n_targets / 50).max(default_registrants)
        };
        PopulationConfig {
            n_targets,
            n_registrants,
            seed,
            ..Default::default()
        }
    }
}

/// The Table-6 mail-hosting provider domains, most private, plus the two
/// public Google rows.
pub const MX_PROVIDERS: [(&str, bool, f64); 10] = [
    ("b-io.co", true, 0.436),
    ("h-email.net", true, 0.185),
    ("mb5p.com", true, 0.101),
    ("m1bp.com", true, 0.087),
    ("mb1p.com", true, 0.077),
    ("hostedmxserver.com", true, 0.031),
    ("hope-mail.com", true, 0.024),
    ("m2bp.com", true, 0.013),
    ("google.com", false, 0.008),
    ("googlemail.com", false, 0.005),
];

/// Number of mid-tier mail hosts beyond the Table-6 head: smaller hosted
/// providers that carry the middle of Figure 8's curve but whose hosted
/// domains rarely accept probe mail.
pub const MID_TIER_MX: usize = 40;

/// The assembled world.
#[derive(Debug)]
pub struct World {
    /// The registry holding every registration and zone.
    pub registry: Registry,
    /// Popularity list of targets (and benign filler sites).
    pub popularity: PopularityList,
    /// The target domains, most popular first.
    pub targets: Vec<DomainName>,
    /// All registered candidate typo domains, sorted by name.
    pub ctypos: Vec<CtypoInfo>,
    /// The registrant population (ground truth).
    pub registrants: Vec<Registrant>,
    /// Name-server provider host names (`ns1.<provider>`), index-aligned
    /// with `Registrant::ns_provider`.
    pub ns_providers: Vec<Fqdn>,
    /// Mail-provider MX domains, index-aligned with
    /// `Registrant::mx_provider`.
    pub mx_providers: Vec<Fqdn>,
    /// Per-NS-provider background customer base: unrelated benign domains
    /// that exist in .com but are not individually materialized here.
    /// Used by the §5.2 name-server ratios (the live study saw each NS
    /// against the whole zone file).
    pub ns_customer_base: Vec<(Fqdn, usize)>,
    /// Config used to build this world.
    pub config: PopulationConfig,
    /// Per-ctypo registration draws, index-aligned with `ctypos`: the
    /// compact struct-of-arrays record of every RNG roll each
    /// registration consumed. Together with `ctypos` this is the entire
    /// non-derivable state of the world — exactly what the snapshot
    /// persists (everything else is a pure function of `config`).
    pub(crate) ctypo_meta: Vec<CtypoMeta>,
    /// Interned ctypo names, id-aligned with `ctypos` (interned in the
    /// final sorted order), so ownership and SMTP-profile queries are a
    /// hash probe over arena slices instead of a linear scan.
    ctypo_index: DomainInterner,
    /// Reverse DL-1 index over the targets: answers "which targets is
    /// this domain a typo of?" in O(len) without regenerating any
    /// candidate set.
    typo_index: ReverseDl1Index,
}

/// Default transient-payload budget for one gtypo band (bytes). The band
/// loop shrinks or grows the per-band target count so the pending
/// registrations held between compute and commit stay near this bound,
/// which is what lets a 1M-target world build without materializing its
/// whole candidate set at once.
pub const DEFAULT_BAND_BUDGET_BYTES: usize = 256 << 20;

/// First band size (targets); adapted between bands from measured payload.
const INITIAL_BAND_TARGETS: usize = 4096;
/// Band-size clamp: never shrink below this many targets per band.
const MIN_BAND_TARGETS: usize = 16;
/// Band-size clamp: never grow beyond this many targets per band.
const MAX_BAND_TARGETS: usize = 65_536;
/// Bucket bounds for the `world.band_pending_bytes` histogram (1 MiB to
/// 256 MiB, ×4 steps).
const BAND_BYTES_BOUNDS: [u64; 5] = [1 << 20, 1 << 22, 1 << 24, 1 << 26, 1 << 28];
/// Snapshot-rebuild band: records materialized per commit round. Sized so
/// the pending registrations (~1 KiB each) stay within a few MiB — hot in
/// cache when the sequential commit consumes them, and bounding peak
/// memory the same way the fresh build's band budget does.
const SNAPSHOT_COMMIT_BAND: usize = 8_192;
/// Bucket bounds for the `world.dl1_fanout` histogram.
const DL1_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

impl World {
    /// Builds the world deterministically from a config, with the default
    /// per-band memory budget (see [`World::build_with_budget`]).
    pub fn build(config: PopulationConfig) -> World {
        Self::build_with_budget(config, DEFAULT_BAND_BUDGET_BYTES)
    }

    /// Builds the world deterministically from a config.
    ///
    /// Every sampled unit — a registrant, a filler site, a background
    /// customer, a target's gtypo band, an NS customer base — draws from
    /// its own RNG stream derived from `(config.seed, stream, unit id)`,
    /// so the expensive phases run data-parallel and the result is
    /// byte-identical for any thread count. Registry commits stay
    /// sequential in canonical (target-rank, generation) order because
    /// first-registration-wins must resolve cross-target name collisions
    /// the same way every run.
    ///
    /// The gtypo phase is **sharded**: targets are processed in
    /// rank-ordered bands, each band fanned out over the worker pool and
    /// committed before the next band starts, so the transient pending
    /// payload stays near `band_budget_bytes` regardless of scale. Band
    /// geometry adapts only to deterministic payload-byte counts (never
    /// to wall clock or thread count), and per-unit RNG streams depend
    /// only on target rank — so any banding produces byte-identical
    /// worlds.
    pub fn build_with_budget(config: PopulationConfig, band_budget_bytes: usize) -> World {
        Self::build_banded(config, band_budget_bytes, INITIAL_BAND_TARGETS)
    }

    fn build_banded(
        config: PopulationConfig,
        band_budget_bytes: usize,
        initial_band: usize,
    ) -> World {
        let mut build_span = ets_obs::span!("world.build");
        build_span.arg("n_targets", config.n_targets as u64);
        let popularity = alexa::synthetic_top(config.n_targets);
        let targets: Vec<DomainName> = popularity.iter().map(|e| e.domain.clone()).collect();
        ets_obs::metrics::counter_add("world.targets", targets.len() as u64);
        let registry = Registry::new();
        let ns_providers = make_ns_providers(&config);
        let mx_providers = make_mx_providers();
        let mx_hosts = mx_hosts_of(&mx_providers);

        // --- registrants with Zipf-sized portfolios -------------------
        let registrant_span = ets_obs::span!("world.registrants", ets_obs::Level::Debug);
        let registrants = make_registrants(&config);
        drop(registrant_span);

        register_background(&config, &registry, &targets, &ns_providers);

        // --- the registration process over gtypos ----------------------
        // Portfolio assignment: Zipf over registrants (registrant 0 has
        // the biggest appetite).
        let appetite: Vec<f64> = (0..config.n_registrants)
            .map(|i| 1.0 / ((i + 1) as f64).powf(0.7))
            .collect();
        let appetite_total: f64 = appetite.iter().sum();

        // The registration probability decays monotonically with rank, so
        // every target past the cutoff would return an empty band without
        // consuming a single draw — skip them without even deriving their
        // streams.
        let active_targets = (0..targets.len())
            .find(|&rank0| target_registration_p(&config, rank0) < 0.01)
            .unwrap_or(targets.len());

        // Parallel compute per band: each target draws its gtypo band
        // from its own stream and prepares registrations without touching
        // the registry; the sequential commit between bands keeps
        // first-registration-wins in canonical rank order and bounds the
        // pending payload to roughly one band.
        let pending_span = ets_obs::span!("world.ctypo_pending", ets_obs::Level::Debug);
        let mut pairs: Vec<(CtypoInfo, CtypoMeta)> = Vec::new();
        let mut pending_total: u64 = 0;
        let mut band = initial_band.clamp(MIN_BAND_TARGETS, MAX_BAND_TARGETS);
        let mut start = 0;
        while start < active_targets {
            let end = (start + band).min(active_targets);
            let pending: Vec<Vec<PendingCtypo>> = par_map(&targets[start..end], |i, target| {
                let rank0 = start + i;
                let mut rng = derive_rng(config.seed, stream::POPULATION_TARGET, rank0 as u64);
                let p_target = target_registration_p(&config, rank0);
                let mut out = Vec::new();
                // Column access into the typo table; candidate domain
                // names are only materialized for the few variants that
                // pass the registration roll.
                let table = typogen::TypoTable::generate(target);
                for ci in 0..table.len() {
                    // Low visual distance and fat-finger adjacency make a
                    // typo attractive; deletions/transpositions too
                    // (Figure 9).
                    let attractiveness = {
                        let v = table.visual_normalized(ci);
                        let base = (1.0 - v).clamp(0.05, 1.0);
                        let ff = if table.fat_finger(ci) { 1.5 } else { 1.0 };
                        let kind = match table.kind(ci) {
                            ets_core::MistakeKind::Deletion => 1.4,
                            ets_core::MistakeKind::Transposition => 1.3,
                            ets_core::MistakeKind::Substitution => 1.0,
                            ets_core::MistakeKind::Addition => 0.8,
                        };
                        (base * ff * kind).min(2.0)
                    };
                    let p = (p_target * attractiveness * 0.35).min(0.95);
                    if !rng.gen_bool(p) {
                        continue;
                    }
                    // Who takes it?
                    let class_roll: f64 = rng.gen();
                    let (class, owner) = if class_roll < config.defensive_share {
                        (DomainClass::Defensive, usize::MAX)
                    } else if class_roll < config.defensive_share + config.benign_share {
                        (DomainClass::BenignCollision, usize::MAX - 1)
                    } else {
                        let mut pick = rng.gen::<f64>() * appetite_total;
                        let mut owner = config.n_registrants - 1;
                        for (i, a) in appetite.iter().enumerate() {
                            if pick < *a {
                                owner = i;
                                break;
                            }
                            pick -= *a;
                        }
                        (DomainClass::Typosquatting, owner)
                    };
                    let prepared =
                        draw_ctypo(&registrants, config.n_ns_providers, class, owner, &mut rng)
                            .and_then(|draw| {
                                materialize_ctypo(
                                    table.candidate(ci),
                                    class,
                                    owner,
                                    &draw,
                                    rank0 as u32,
                                    &registrants,
                                    &ns_providers,
                                    &mx_hosts,
                                )
                            });
                    if let Some(p) = prepared {
                        out.push(p);
                    }
                }
                out
            });
            // Account the band's transient payload before committing it:
            // the budget histogram is a pure function of (seed, scale,
            // budget), while the mem gauge feeds the wall-clock-side peak
            // reports.
            let band_bytes: u64 = pending
                .iter()
                .flat_map(|b| b.iter())
                .map(PendingCtypo::approx_bytes)
                .sum();
            ets_obs::metrics::histogram_record(
                "world.band_pending_bytes",
                &BAND_BYTES_BOUNDS,
                band_bytes,
            );
            ets_obs::mem::add(band_bytes);
            for batch in pending {
                pending_total += batch.len() as u64;
                for p in batch {
                    if registry.register(p.registration, p.zone) {
                        pairs.push((p.info, p.meta));
                    }
                }
            }
            ets_obs::mem::sub(band_bytes);
            ets_obs::metrics::counter_add("world.bands", 1);
            start = end;
            // Adapt the band to the budget: halve when over, grow when
            // well under. Driven only by the deterministic payload bytes,
            // so the band schedule (and the world) never depends on
            // threads or timing.
            if band_bytes as usize > band_budget_bytes {
                band = (band / 2).max(MIN_BAND_TARGETS);
            } else if (band_bytes as usize) < band_budget_bytes / 4 {
                band = (band * 2).min(MAX_BAND_TARGETS);
            }
        }
        ets_obs::metrics::counter_add("world.ctypo_pending", pending_total);
        drop(pending_span);
        let commit_span = ets_obs::span!("world.commit", ets_obs::Level::Debug);
        pairs.sort_by(|a, b| a.0.candidate.domain.cmp(&b.0.candidate.domain));
        let (ctypos, ctypo_meta): (Vec<CtypoInfo>, Vec<CtypoMeta>) = pairs.into_iter().unzip();
        drop(commit_span);
        Self::finish(
            config,
            registry,
            popularity,
            targets,
            ctypos,
            ctypo_meta,
            registrants,
            ns_providers,
            mx_providers,
        )
    }

    /// Rebuilds a world from snapshot records: every derivable phase
    /// (popularity, registrants, fillers, background, indices, NS
    /// customer bases) is recomputed from `config`'s RNG streams exactly
    /// as a fresh build would, and each persisted ctypo is materialized
    /// purely from its stored draws — no registration roll is ever
    /// re-drawn, which is why the result is byte-identical to the build
    /// that produced the snapshot. Records arrive in the world's sorted
    /// ctypo order. Any inconsistency (out-of-range index, unparsable
    /// name, unsorted or colliding records) is an error, never a panic:
    /// the caller falls back to a fresh build.
    pub(crate) fn from_snapshot_records(
        config: PopulationConfig,
        records: Vec<CtypoRecord>,
    ) -> Result<World, String> {
        let mut load_span = ets_obs::span!("world.snapshot_rebuild");
        load_span.arg("n_targets", config.n_targets as u64);
        let popularity = alexa::synthetic_top(config.n_targets);
        let targets: Vec<DomainName> = popularity.iter().map(|e| e.domain.clone()).collect();
        ets_obs::metrics::counter_add("world.targets", targets.len() as u64);
        let registry = Registry::new();
        registry.reserve(targets.len() + records.len());
        let ns_providers = make_ns_providers(&config);
        let mx_providers = make_mx_providers();
        let mx_hosts = mx_hosts_of(&mx_providers);
        let registrants = make_registrants(&config);
        register_background(&config, &registry, &targets, &ns_providers);

        // Materialization is pure per record, so it fans out; the
        // registry commit stays sequential in stored (sorted) order.
        // Both run band-by-band: a bounded pending buffer keeps the
        // transient registrations cache-hot when they are committed and
        // caps peak memory exactly like the fresh build's band budget.
        let mut ctypos: Vec<CtypoInfo> = Vec::with_capacity(records.len());
        let mut ctypo_meta: Vec<CtypoMeta> = Vec::with_capacity(records.len());
        for band in records.chunks(SNAPSHOT_COMMIT_BAND) {
            let materialized: Vec<Result<PendingCtypo, String>> = par_map(band, |_, rec| {
                let rank = rec.target_rank as usize;
                let target = targets
                    .get(rank)
                    .ok_or_else(|| format!("target rank {rank} out of range"))?;
                let domain = DomainName::from_sld_tld(&rec.sld, target.tld())
                    .map_err(|e| format!("bad ctypo name {:?}: {e}", rec.sld))?;
                if rec.class == DomainClass::Typosquatting && rec.owner >= registrants.len() {
                    return Err(format!("owner {} out of range", rec.owner));
                }
                if (rec.draw.ns as usize) >= ns_providers.len() {
                    return Err(format!("ns provider {} out of range", rec.draw.ns));
                }
                if let Some(mi) = rec.draw.mx {
                    if (mi as usize) >= mx_providers.len() {
                        return Err(format!("mx provider {mi} out of range"));
                    }
                }
                let cand = TypoCandidate {
                    domain,
                    target: target.clone(),
                    kind: rec.kind,
                    position: rec.position as usize,
                    fat_finger: rec.fat_finger,
                    visual: rec.visual,
                };
                materialize_ctypo(
                    cand,
                    rec.class,
                    rec.owner,
                    &rec.draw,
                    rec.target_rank,
                    &registrants,
                    &ns_providers,
                    &mx_hosts,
                )
                .ok_or_else(|| "unregistered class in snapshot".to_owned())
            });
            // Same transient-payload accounting as the fresh build's
            // band loop, so the two paths report comparable peaks.
            let band_bytes: u64 = materialized
                .iter()
                .filter_map(|p| p.as_ref().ok())
                .map(PendingCtypo::approx_bytes)
                .sum();
            ets_obs::mem::add(band_bytes);
            let committed = (|| {
                for p in materialized {
                    let p = p?;
                    if let Some(prev) = ctypos.last() {
                        if prev.candidate.domain >= p.info.candidate.domain {
                            return Err("snapshot records not in sorted order".to_owned());
                        }
                    }
                    if !registry.register(p.registration, p.zone) {
                        return Err(format!(
                            "snapshot ctypo {} collides with an existing registration",
                            p.info.candidate.domain
                        ));
                    }
                    ctypos.push(p.info);
                    ctypo_meta.push(p.meta);
                }
                Ok(())
            })();
            ets_obs::mem::sub(band_bytes);
            committed?;
        }
        Ok(Self::finish(
            config,
            registry,
            popularity,
            targets,
            ctypos,
            ctypo_meta,
            registrants,
            ns_providers,
            mx_providers,
        ))
    }

    /// The shared tail of a fresh build and a snapshot rebuild: workload
    /// counters, the interned ctypo index, the reverse DL-1 index with
    /// its fan-out histogram, and the NS customer bases. `ctypos` must
    /// already be in sorted order.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        config: PopulationConfig,
        registry: Registry,
        popularity: PopularityList,
        targets: Vec<DomainName>,
        ctypos: Vec<CtypoInfo>,
        ctypo_meta: Vec<CtypoMeta>,
        registrants: Vec<Registrant>,
        ns_providers: Vec<Fqdn>,
        mx_providers: Vec<Fqdn>,
    ) -> World {
        ets_obs::metrics::counter_add("world.ctypos", ctypos.len() as u64);
        // Registry first-registration-wins guarantees ctypo names are
        // unique, so interning in sorted order makes `id.index()` the
        // position in `ctypos`.
        let mut ctypo_index = DomainInterner::with_capacity(ctypos.len(), 16);
        for c in &ctypos {
            ctypo_index.intern(&c.candidate.domain);
        }
        let index_span = ets_obs::span!("world.index", ets_obs::Level::Debug);
        let typo_index = ReverseDl1Index::build(&targets);
        // The DL-1 fan-out distribution: how many targets share each
        // deletion-neighborhood key. A pure function of the target list,
        // so it belongs in the deterministic snapshot.
        for size in typo_index.bucket_sizes() {
            ets_obs::metrics::histogram_record("world.dl1_fanout", &DL1_BOUNDS, size as u64);
        }
        drop(index_span);
        let ns_customer_base: Vec<(Fqdn, usize)> = ns_providers
            .iter()
            .enumerate()
            .map(|(pi, ns)| {
                let mut rng = derive_rng(config.seed, stream::POPULATION_NS_BASE, pi as u64);
                // Clean providers' customer base scales with world size so
                // the §5.2 average ratio stays in the low single digits at
                // any simulation scale.
                let base = if pi < config.n_cesspool_ns {
                    rng.gen_range(100..400)
                } else {
                    let per_provider = (ctypos.len() / config.n_ns_providers.max(1)).max(50);
                    rng.gen_range(per_provider * 10..per_provider * 40)
                };
                (ns.clone(), base)
            })
            .collect();
        World {
            registry,
            popularity,
            targets,
            ctypos,
            registrants,
            ns_providers,
            mx_providers,
            ns_customer_base,
            config,
            ctypo_meta,
            ctypo_index,
            typo_index,
        }
    }

    /// Resolver over this world's registry.
    pub fn resolver(&self) -> Resolver {
        Resolver::new(self.registry.clone())
    }

    /// Ctypos that are true typosquatting domains (ground truth).
    pub fn true_typosquats(&self) -> impl Iterator<Item = &CtypoInfo> {
        self.ctypos
            .iter()
            .filter(|c| c.class == DomainClass::Typosquatting)
    }

    /// The SMTP behaviour profile of a domain, if it is a known ctypo.
    pub fn smtp_profile(&self, domain: &DomainName) -> Option<SmtpProfile> {
        let id = self.ctypo_index.lookup(domain.as_str())?;
        Some(self.ctypos[id.index()].smtp)
    }

    /// The registrant who owns a ctypo (ground truth), if any.
    pub fn owner_of(&self, domain: &DomainName) -> Option<&Registrant> {
        let id = self.ctypo_index.lookup(domain.as_str())?;
        self.registrants.get(self.ctypos[id.index()].owner)
    }

    /// Indices into [`World::targets`] of every target `domain` is a DL-1
    /// typo of, ascending — answered by the reverse index in O(len).
    pub fn typo_targets_of(&self, domain: &DomainName) -> Vec<usize> {
        self.typo_index.matches(domain)
    }

    /// The reverse DL-1 index over this world's targets.
    pub fn typo_index(&self) -> &ReverseDl1Index {
        &self.typo_index
    }
}

/// The complete record of every RNG roll one ctypo registration
/// consumed, in stream order. [`materialize_ctypo`] turns a draw into
/// the actual registration *purely*, which is what makes the snapshot a
/// faithful stand-in for a fresh build: persist the draws, re-run the
/// pure part.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CtypoDraw {
    /// WHOIS field-drop bits (see `WHOIS_DROP_*`); unused for
    /// typosquatting registrations, which reuse the registrant's record.
    pub(crate) whois_mask: u8,
    /// Privacy-proxy roll (typosquatting: the registrant's flag).
    pub(crate) private: bool,
    /// Name-server provider index.
    pub(crate) ns: u16,
    /// Mail-provider index, `None` when self-hosted or mail-less.
    pub(crate) mx: Option<u16>,
    /// SMTP behaviour roll.
    pub(crate) smtp: SmtpProfile,
    /// Whether a zone is published at all (lame delegation when false).
    pub(crate) has_zone: bool,
    /// The parked-vs-empty roll; only drawn (and only meaningful) for
    /// zones with no MX and no SMTP listener.
    pub(crate) parked: bool,
    /// Registration day roll (0..3650).
    pub(crate) created_day: u16,
}

/// Snapshot-side per-ctypo metadata: the target rank plus the draws.
/// Index-aligned with [`World::ctypos`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CtypoMeta {
    /// Zero-based rank of the target this ctypo was generated from.
    pub(crate) target_rank: u32,
    /// The registration's RNG draws.
    pub(crate) draw: CtypoDraw,
}

/// One persisted ctypo as decoded from a snapshot: candidate identity
/// (the SLD; the TLD is the target's), generation metadata, and draws.
#[derive(Debug, Clone)]
pub(crate) struct CtypoRecord {
    /// Second-level label of the ctypo domain.
    pub(crate) sld: String,
    /// Zero-based target rank.
    pub(crate) target_rank: u32,
    /// Mistake kind of the candidate.
    pub(crate) kind: ets_core::MistakeKind,
    /// Mistake position within the SLD.
    pub(crate) position: u32,
    /// Fat-finger adjacency flag.
    pub(crate) fat_finger: bool,
    /// Unnormalized visual distance (bit-exact).
    pub(crate) visual: f64,
    /// Ground-truth owner (sentinels for defensive/benign).
    pub(crate) owner: usize,
    /// Ground-truth class.
    pub(crate) class: DomainClass,
    /// The registration's RNG draws.
    pub(crate) draw: CtypoDraw,
}

/// A ctypo registration prepared off-registry during the parallel compute
/// phase; committed (or dropped on name collision) sequentially.
struct PendingCtypo {
    registration: Registration,
    zone: Option<Zone>,
    info: CtypoInfo,
    meta: CtypoMeta,
}

impl PendingCtypo {
    /// Deterministic estimate of this pending registration's payload
    /// bytes (names, synthetic WHOIS text, zone records). Drives the
    /// band-size adaptation and the `world.band_pending_bytes`
    /// histogram; precision matters less than being a pure function of
    /// the data.
    fn approx_bytes(&self) -> u64 {
        let names =
            self.info.candidate.domain.as_str().len() + self.info.candidate.target.as_str().len();
        let whois = 160;
        let zone = if self.zone.is_some() { 256 } else { 0 };
        (std::mem::size_of::<PendingCtypo>() + names + whois + zone + 64) as u64
    }
}

/// Registration probability for the target at zero-based `rank0` —
/// monotonically decreasing in rank, so the first rank below the 0.01
/// cutoff bounds the active target set.
fn target_registration_p(config: &PopulationConfig, rank0: usize) -> f64 {
    config.base_registration_rate / ((rank0 + 1) as f64).powf(config.rank_decay)
}

/// Name-server provider host names (first `n_cesspool_ns` are dirty).
fn make_ns_providers(config: &PopulationConfig) -> Vec<Fqdn> {
    (0..config.n_ns_providers)
        .map(|i| {
            let name = if i < config.n_cesspool_ns {
                format!("ns1.cheap-dns-{i}.example")
            } else {
                format!("ns1.provider-{i}.example")
            };
            name.parse().expect("generated ns names are valid")
        })
        .collect()
}

/// The Table-6 provider MX domains plus the mid-tier hosts.
fn make_mx_providers() -> Vec<Fqdn> {
    MX_PROVIDERS
        .iter()
        .map(|(d, _, _)| d.parse::<Fqdn>().expect("static"))
        .chain(
            (0..MID_TIER_MX).map(|i| format!("mailhost-{i}.example").parse().expect("generated")),
        )
        .collect()
}

/// The registrant population, one derived stream per id.
fn make_registrants(config: &PopulationConfig) -> Vec<Registrant> {
    par_map_index(config.n_registrants, |id| {
        let mut rng = derive_rng(config.seed, stream::POPULATION_REGISTRANT, id as u64);
        let archetype = match id {
            0..=2 => RegistrantArchetype::DomainSeller,
            3..=13 => RegistrantArchetype::MailTyposquatter,
            _ => RegistrantArchetype::SmallSquatter,
        };
        let private = rng.gen_bool(config.privacy_share);
        // Typosquatters favor the cesspool name servers.
        let ns_provider = match archetype {
            RegistrantArchetype::MailTyposquatter | RegistrantArchetype::DomainSeller
                if rng.gen_bool(0.7) =>
            {
                rng.gen_range(0..config.n_cesspool_ns.max(1))
            }
            _ => rng.gen_range(0..config.n_ns_providers),
        };
        // Mail hosting: weighted pick over the Table-6 providers.
        let mx_provider = match archetype {
            RegistrantArchetype::MailTyposquatter | RegistrantArchetype::DomainSeller => {
                Some(pick_mx_provider(&mut rng))
            }
            RegistrantArchetype::SmallSquatter if rng.gen_bool(0.55) => {
                Some(pick_mx_provider(&mut rng))
            }
            _ => None,
        };
        let reads_mail = if rng.gen_bool(0.002) { 0.5 } else { 0.0 };
        Registrant {
            id,
            archetype,
            whois: synth_whois(id, &mut rng),
            private,
            ns_provider,
            mx_provider,
            reads_mail,
        }
    })
}

/// Registers the benign filler sites (the targets themselves) and each
/// name-server provider's background customer base — the derivable,
/// non-ctypo registry content shared by fresh builds and snapshot
/// rebuilds.
fn register_background(
    config: &PopulationConfig,
    registry: &Registry,
    targets: &[DomainName],
    ns_providers: &[Fqdn],
) {
    // --- register benign filler sites (the targets themselves) ----
    let filler_span = ets_obs::span!("world.fillers", ets_obs::Level::Debug);
    registry.reserve(targets.len());
    let fillers: Vec<(Registration, Zone)> = par_map(targets, |rank, t| {
        let mut rng = derive_rng(config.seed, stream::POPULATION_BACKGROUND, rank as u64);
        let fq = Fqdn::from_domain(t);
        let zone = Zone::hosted_mail(
            &fq,
            &fq.child("mx").expect("valid"),
            Some(ip_for(rank as u64, 1)),
            300,
        );
        let mut full_zone = zone;
        full_zone.add(ets_dns::record::ResourceRecord::a(
            &format!("mx.{fq}"),
            300,
            ip_for(rank as u64, 2),
        ));
        (
            Registration {
                domain: fq,
                registrar: "registrar-legit".to_owned(),
                whois: synth_whois(1_000_000 + rank, &mut rng),
                privacy_proxy: None,
                nameservers: vec![ns_providers[rank % config.n_ns_providers.max(1)].clone()],
                created_day: 0,
            },
            full_zone,
        )
    });
    for (reg, zone) in fillers {
        registry.register(reg, Some(zone));
    }
    drop(filler_span);
    let background_span = ets_obs::span!("world.background", ets_obs::Level::Debug);

    // --- benign background per name-server provider ----------------
    // §5.2's ratios only make sense against each provider's ordinary
    // customer base: clean providers host many unrelated businesses,
    // cesspools host few.
    let bg_units: Vec<(usize, usize)> = ns_providers
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| {
            let benign_customers = if pi < config.n_cesspool_ns { 4 } else { 30 };
            (0..benign_customers).map(move |j| (pi, j))
        })
        .collect();
    let background: Vec<(Registration, Zone)> = par_map(&bg_units, |_, &(pi, j)| {
        // Background units share the filler stream domain; offset far
        // past any filler rank so unit ids never collide.
        let unit = (1u64 << 32) | (pi as u64 * 1000 + j as u64);
        let mut rng = derive_rng(config.seed, stream::POPULATION_BACKGROUND, unit);
        let ns = &ns_providers[pi];
        let name: Fqdn = format!("biz-{pi}-{j}.com").parse().expect("valid");
        (
            Registration {
                domain: name.clone(),
                registrar: "registrar-legit".to_owned(),
                whois: synth_whois(4_000_000 + pi * 1000 + j, &mut rng),
                privacy_proxy: None,
                nameservers: vec![ns.clone()],
                created_day: 0,
            },
            Zone::parked(&name, ip_for((pi * 1000 + j) as u64, 9), 300),
        )
    });
    for (reg, zone) in background {
        registry.register(reg, Some(zone));
    }
    drop(background_span);
}

/// Consumes a ctypo registration's RNG rolls — and nothing else. The
/// draw order is load-bearing: it must match what the historical
/// `prepare_ctypo` consumed per class, or every world built since the
/// seed commit changes. Returns `None` only for the unregistered class
/// (no rolls consumed).
fn draw_ctypo(
    registrants: &[Registrant],
    n_ns_providers: usize,
    class: DomainClass,
    owner: usize,
    rng: &mut ChaCha8Rng,
) -> Option<CtypoDraw> {
    let (whois_mask, private, ns, mx, smtp) = match class {
        DomainClass::Defensive => {
            // Defensive registrations point at the owner, park the web
            // host, and rarely run mail.
            (
                whois_field_mask(rng),
                false,
                (n_ns_providers - 1) as u16,
                None,
                SmtpProfile::NoListener,
            )
        }
        DomainClass::BenignCollision => {
            let mask = whois_field_mask(rng);
            let private = rng.gen_bool(0.2);
            let ns = rng.gen_range(0..n_ns_providers) as u16;
            let mx = rng.gen_bool(0.3).then_some(BENIGN_MX_PROVIDER as u16);
            let smtp = if rng.gen_bool(0.5) {
                SmtpProfile::StarttlsOk
            } else {
                SmtpProfile::NoListener
            };
            (mask, private, ns, mx, smtp)
        }
        DomainClass::Typosquatting => {
            let r = &registrants[owner];
            let top_tier = r
                .mx_provider
                .map(|i| i < MX_PROVIDERS.len())
                .unwrap_or(false);
            let smtp = sample_smtp_profile(r.archetype, r.mx_provider.is_some(), top_tier, rng);
            (
                0,
                r.private,
                r.ns_provider as u16,
                r.mx_provider.map(|i| i as u16),
                smtp,
            )
        }
        DomainClass::Unregistered => return None,
    };
    // Lame delegation (Table 4 "No info"): registered, but no zone answers.
    let has_zone = !rng.gen_bool(0.34);
    // The parked-vs-empty roll happens only inside the no-MX/no-listener
    // zone arm — short-circuiting keeps the stream position identical.
    let parked = has_zone && mx.is_none() && smtp == SmtpProfile::NoListener && rng.gen_bool(0.6);
    let created_day = rng.gen_range(0..3650u32) as u16;
    Some(CtypoDraw {
        whois_mask,
        private,
        ns,
        mx,
        smtp,
        has_zone,
        parked,
        created_day,
    })
}

/// Turns a candidate plus its draws into the actual registration, zone,
/// and ground-truth record — a pure function (registrar, WHOIS ids, and
/// IPs are `owner_hash`-derived), shared verbatim by the fresh build and
/// the snapshot rebuild. Returns `None` only for the unregistered class.
#[allow(clippy::too_many_arguments)]
fn materialize_ctypo(
    cand: TypoCandidate,
    class: DomainClass,
    owner: usize,
    draw: &CtypoDraw,
    target_rank: u32,
    registrants: &[Registrant],
    ns_providers: &[Fqdn],
    mx_hosts: &[Fqdn],
) -> Option<PendingCtypo> {
    let fq = Fqdn::from_domain(&cand.domain);
    let domain_hash = owner_hash(&cand.domain);
    let whois: WhoisRecord = match class {
        DomainClass::Defensive => synth_whois_masked(
            2_000_000 + (owner_hash(&cand.target) % 100_000) as usize,
            draw.whois_mask,
        ),
        DomainClass::BenignCollision => synth_whois_masked(
            3_000_000 + (domain_hash % 100_000) as usize,
            draw.whois_mask,
        ),
        DomainClass::Typosquatting => registrants[owner].whois.clone(),
        DomainClass::Unregistered => return None,
    };
    let zone = if !draw.has_zone {
        None
    } else {
        match draw.mx {
            None if draw.smtp == SmtpProfile::NoListener => {
                // Web-only parking or nothing at all.
                if draw.parked {
                    Some(Zone::parked(&fq, ip_for(domain_hash, 3), 300))
                } else {
                    Some(Zone::new(fq.clone())) // neither MX nor A
                }
            }
            Some(mi) => Some(Zone::hosted_mail(
                &fq,
                &mx_hosts[mi as usize],
                Some(ip_for(domain_hash, 4)),
                300,
            )),
            None => Some(Zone::catch_all(&fq, ip_for(domain_hash, 5), 300)),
        }
    };
    let private_svc = draw.private.then(|| "privacy-guard.example".to_owned());
    // The ten registrar identities, preformatted: `format!` per
    // registration showed up in the snapshot-load profile.
    const REGISTRARS: [&str; 10] = [
        "registrar-0",
        "registrar-1",
        "registrar-2",
        "registrar-3",
        "registrar-4",
        "registrar-5",
        "registrar-6",
        "registrar-7",
        "registrar-8",
        "registrar-9",
    ];
    Some(PendingCtypo {
        registration: Registration {
            domain: fq,
            registrar: REGISTRARS[(domain_hash % 10) as usize].to_owned(),
            whois,
            privacy_proxy: private_svc,
            nameservers: vec![ns_providers[draw.ns as usize].clone()],
            created_day: draw.created_day as u32,
        },
        zone,
        info: CtypoInfo {
            candidate: cand,
            owner,
            class,
            private: draw.private,
            smtp: draw.smtp,
            has_zone: draw.has_zone,
        },
        meta: CtypoMeta {
            target_rank,
            draw: *draw,
        },
    })
}

fn sample_smtp_profile(
    archetype: RegistrantArchetype,
    has_mx: bool,
    top_tier: bool,
    rng: &mut ChaCha8Rng,
) -> SmtpProfile {
    if has_mx && !top_tier {
        // Mid-tier hosted: MX resolves, but the host is mostly parked
        // infrastructure that rarely accepts (the paper's probe saw the
        // accepting population concentrate on eight private hosts).
        let roll: f64 = rng.gen();
        return if roll < 0.38 {
            SmtpProfile::SilentTimeout
        } else if roll < 0.60 {
            SmtpProfile::ConnectionReset
        } else if roll < 0.88 {
            SmtpProfile::BounceAll
        } else if roll < 0.93 {
            SmtpProfile::StarttlsOk
        } else if roll < 0.98 {
            SmtpProfile::StarttlsBroken
        } else {
            SmtpProfile::PlainOnly
        };
    }
    if !has_mx {
        // Self-hosted or web-only: mostly dead ports, echoing Table 5's
        // dominance of timeouts and network errors.
        let roll: f64 = rng.gen();
        return if roll < 0.45 {
            SmtpProfile::SilentTimeout
        } else if roll < 0.75 {
            SmtpProfile::ConnectionReset
        } else if roll < 0.85 {
            SmtpProfile::NoListener
        } else if roll < 0.93 {
            SmtpProfile::BounceAll
        } else {
            SmtpProfile::PlainOnly
        };
    }
    match archetype {
        RegistrantArchetype::MailTyposquatter | RegistrantArchetype::DomainSeller => {
            let roll: f64 = rng.gen();
            if roll < 0.62 {
                SmtpProfile::StarttlsOk
            } else if roll < 0.72 {
                SmtpProfile::StarttlsBroken
            } else if roll < 0.74 {
                SmtpProfile::PlainOnly
            } else if roll < 0.86 {
                SmtpProfile::BounceAll
            } else {
                SmtpProfile::SilentTimeout
            }
        }
        _ => {
            if rng.gen_bool(0.5) {
                SmtpProfile::StarttlsOk
            } else {
                SmtpProfile::BounceAll
            }
        }
    }
}

fn pick_mx_provider(rng: &mut ChaCha8Rng) -> usize {
    // 35% of hosted portfolios sit on the mid-tier hosts (the middle of
    // Figure 8's curve); the rest concentrate on the Table-6 head.
    if rng.gen_bool(0.35) {
        return MX_PROVIDERS.len() + rng.gen_range(0..MID_TIER_MX);
    }
    let total: f64 = MX_PROVIDERS.iter().map(|(_, _, w)| w).sum();
    let mut pick = rng.gen::<f64>() * total;
    for (i, (_, _, w)) in MX_PROVIDERS.iter().enumerate() {
        if pick < *w {
            return i;
        }
        pick -= w;
    }
    MX_PROVIDERS.len() - 1
}

/// MX-provider index used by benign collisions that host mail
/// (google.com in the Table-6 list).
const BENIGN_MX_PROVIDER: usize = 8;

/// WHOIS field-drop bit: no fax on file.
const WHOIS_DROP_FAX: u8 = 1;
/// WHOIS field-drop bit: no organization on file.
const WHOIS_DROP_ORG: u8 = 2;
/// WHOIS field-drop bit: no phone, mail address, or fax — the records
/// that can never cluster.
const WHOIS_DROP_CONTACT: u8 = 4;

/// Rolls which WHOIS fields a record leaves blank. Exactly the three
/// `gen_bool` draws the historical `synth_whois` consumed, in order.
fn whois_field_mask(rng: &mut ChaCha8Rng) -> u8 {
    let mut mask = 0;
    if rng.gen_bool(0.15) {
        mask |= WHOIS_DROP_FAX;
    }
    if rng.gen_bool(0.1) {
        mask |= WHOIS_DROP_ORG;
    }
    if rng.gen_bool(0.05) {
        mask |= WHOIS_DROP_CONTACT;
    }
    mask
}

/// Builds the synthetic WHOIS record for `id` with the given field-drop
/// mask — the pure half of `synth_whois`, reused by the snapshot rebuild.
fn synth_whois_masked(id: usize, mask: u8) -> WhoisRecord {
    // Most registrants fill most fields (with plausibly fake data); some
    // leave fields blank so they can never cluster.
    let mut w = WhoisRecord::full(
        &format!("Registrant {id}"),
        &format!("Org {}", id % 97),
        &format!("contact{id}@mail.example"),
        &format!("+1.555{:07}", id % 10_000_000),
        &format!("+1.556{:07}", id % 10_000_000),
        &format!("{} Main Street, Springfield", id % 9_999),
    );
    if mask & WHOIS_DROP_FAX != 0 {
        w.fax = None;
    }
    if mask & WHOIS_DROP_ORG != 0 {
        w.organization = None;
    }
    if mask & WHOIS_DROP_CONTACT != 0 {
        w.phone = None;
        w.mail_address = None;
        w.fax = None;
    }
    w
}

fn synth_whois(id: usize, rng: &mut ChaCha8Rng) -> WhoisRecord {
    let mask = whois_field_mask(rng);
    synth_whois_masked(id, mask)
}

fn owner_hash(d: impl std::fmt::Display) -> u64 {
    // FNV-1a folded straight off the `Display` stream: same bytes (and so
    // the same hash) as hashing `d.to_string()`, without the allocation —
    // this runs several times per materialized registration.
    struct Fnv(u64);
    impl std::fmt::Write for Fnv {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for b in s.bytes() {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100000001b3);
            }
            Ok(())
        }
    }
    let mut h = Fnv(0xcbf29ce484222325);
    use std::fmt::Write as _;
    // `Fnv::write_str` never errors, so the write cannot fail.
    let _ = write!(h, "{d}");
    h.0
}

/// Hosted-mail MX targets: one `mx1` child per provider, built once per
/// world build instead of re-deriving the child name per ctypo.
fn mx_hosts_of(mx_providers: &[Fqdn]) -> Vec<Fqdn> {
    mx_providers
        .iter()
        .map(|p| p.child("mx1").expect("provider names are valid"))
        .collect()
}

fn ip_for(seed: u64, salt: u64) -> Ipv4Addr {
    let h = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(salt);
    Ipv4Addr::new(10, (h >> 16) as u8, (h >> 8) as u8, (h as u8).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tiny_world() -> World {
        World::build(PopulationConfig::tiny(7))
    }

    #[test]
    fn world_is_deterministic() {
        let a = World::build(PopulationConfig::tiny(7));
        let b = World::build(PopulationConfig::tiny(7));
        assert_eq!(a.ctypos.len(), b.ctypos.len());
        for (x, y) in a.ctypos.iter().zip(&b.ctypos) {
            assert_eq!(x.candidate.domain, y.candidate.domain);
            assert_eq!(x.owner, y.owner);
            assert_eq!(x.smtp, y.smtp);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::build(PopulationConfig::tiny(7));
        let b = World::build(PopulationConfig::tiny(8));
        let a_names: Vec<_> = a
            .ctypos
            .iter()
            .map(|c| c.candidate.domain.as_str().to_owned())
            .collect();
        let b_names: Vec<_> = b
            .ctypos
            .iter()
            .map(|c| c.candidate.domain.as_str().to_owned())
            .collect();
        assert_ne!(a_names, b_names);
    }

    #[test]
    fn ctypos_are_registered_and_dl1() {
        let w = tiny_world();
        assert!(w.ctypos.len() > 100, "got {}", w.ctypos.len());
        for c in w.ctypos.iter().take(200) {
            assert!(w
                .registry
                .is_registered(&Fqdn::from_domain(&c.candidate.domain)));
            assert_eq!(
                ets_core::distance::damerau_levenshtein(
                    c.candidate.target.sld(),
                    c.candidate.domain.sld()
                ),
                1
            );
        }
    }

    #[test]
    fn popular_targets_attract_more_ctypos() {
        let w = tiny_world();
        let count_for =
            |t: &DomainName| w.ctypos.iter().filter(|c| &c.candidate.target == t).count();
        let top = count_for(&w.targets[0]);
        let bottom = count_for(&w.targets[w.targets.len() - 1]);
        assert!(
            top > bottom,
            "top target has {top} ctypos, bottom has {bottom}"
        );
    }

    #[test]
    fn ownership_is_heavy_tailed() {
        let w = World::build(PopulationConfig {
            n_targets: 120,
            ..PopulationConfig::tiny(3)
        });
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for c in w.true_typosquats() {
            *counts.entry(c.owner).or_insert(0) += 1;
        }
        let mut sizes: Vec<usize> = counts.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = sizes.iter().sum();
        let top14: usize = sizes.iter().take(14).sum();
        // Figure 8: the top registrants own a large share.
        assert!(
            top14 as f64 / total as f64 > 0.2,
            "top-14 share {}",
            top14 as f64 / total as f64
        );
    }

    #[test]
    fn privacy_share_is_plausible() {
        let w = tiny_world();
        let private = w.ctypos.iter().filter(|c| c.private).count();
        let share = private as f64 / w.ctypos.len() as f64;
        assert!(share > 0.2 && share < 0.7, "privacy share {share}");
    }

    #[test]
    fn defensive_and_benign_exist() {
        let w = World::build(PopulationConfig {
            n_targets: 150,
            ..PopulationConfig::tiny(11)
        });
        assert!(w.ctypos.iter().any(|c| c.class == DomainClass::Defensive));
        assert!(w
            .ctypos
            .iter()
            .any(|c| c.class == DomainClass::BenignCollision));
        assert!(w.true_typosquats().count() > w.ctypos.len() / 2);
    }

    #[test]
    fn hosted_mail_resolves_to_provider() {
        let w = tiny_world();
        let resolver = w.resolver();
        let hosted: Vec<&CtypoInfo> = w
            .ctypos
            .iter()
            .filter(|c| c.has_zone && matches!(c.smtp, SmtpProfile::StarttlsOk))
            .take(20)
            .collect();
        assert!(!hosted.is_empty());
        let provider_names: Vec<String> = w.mx_providers.iter().map(|p| p.to_string()).collect();
        let mut saw_provider = false;
        for c in hosted {
            if let Some(mx) = resolver.mx_domain(&Fqdn::from_domain(&c.candidate.domain)) {
                if provider_names.contains(&mx.to_string()) {
                    saw_provider = true;
                }
            }
        }
        assert!(
            saw_provider,
            "no hosted ctypo resolved to a Table-6 provider"
        );
    }

    #[test]
    fn owner_lookup_round_trips() {
        let w = tiny_world();
        let squat = w.true_typosquats().next().unwrap();
        let owner = w.owner_of(&squat.candidate.domain).unwrap();
        assert_eq!(owner.id, squat.owner);
    }

    #[test]
    fn lame_delegations_exist() {
        let w = tiny_world();
        let lame = w.ctypos.iter().filter(|c| !c.has_zone).count();
        let share = lame as f64 / w.ctypos.len() as f64;
        assert!(share > 0.2 && share < 0.5, "lame share {share}");
        // And they really have no zone in the registry.
        let c = w.ctypos.iter().find(|c| !c.has_zone).unwrap();
        assert!(w
            .registry
            .zone(&Fqdn::from_domain(&c.candidate.domain))
            .is_none());
    }

    /// Everything a downstream analysis can observe about the world:
    /// ctypos, registrants, registrations and zones of every ctypo, NS
    /// customer bases, and the snapshot metadata column.
    fn world_fingerprint(w: &World) -> String {
        let mut regs = String::new();
        for c in &w.ctypos {
            let fq = Fqdn::from_domain(&c.candidate.domain);
            let r = w.registry.registration(&fq).expect("ctypo registered");
            regs.push_str(&format!("{r:?}\n"));
            if let Some(z) = w.registry.zone(&fq) {
                regs.push_str(&format!("{z:?}\n"));
            }
        }
        format!(
            "{}\n{}\n{:?}\n{:?}\n{regs}",
            serde_json::to_string(&w.ctypos).expect("serializable"),
            serde_json::to_string(&w.registrants).expect("serializable"),
            w.ns_customer_base,
            w.ctypo_meta,
        )
    }

    #[test]
    fn banded_build_is_band_schedule_invariant() {
        let reference = world_fingerprint(&World::build(PopulationConfig::tiny(7)));
        // A 1-byte budget collapses bands to MIN_BAND_TARGETS after the
        // first adaptation; an unbounded budget doubles them to the max.
        // Both extremes (and an awkward initial band) must produce a
        // byte-identical world.
        for (budget, initial) in [(1, 16), (usize::MAX, 7), (64 << 10, 33)] {
            let banded = World::build_banded(PopulationConfig::tiny(7), budget, initial);
            assert_eq!(
                world_fingerprint(&banded),
                reference,
                "band schedule (budget {budget}, initial {initial}) changed the world"
            );
        }
    }

    #[test]
    fn snapshot_roundtrip_is_byte_identical() {
        let world = World::build(PopulationConfig::tiny(11));
        let reloaded = crate::snapshot::roundtrip_in_memory(&world).expect("roundtrip");
        assert_eq!(world_fingerprint(&reloaded), world_fingerprint(&world));
    }

    #[test]
    fn at_scale_matches_default_at_seed_scales() {
        // Scales at or below the paper-default 30k keep the default
        // registrant population, so existing seeds stay byte-identical.
        let base = PopulationConfig {
            seed: 7,
            ..Default::default()
        };
        let scaled = PopulationConfig::at_scale(base.n_targets, 7);
        assert_eq!(
            serde_json::to_string(&scaled).expect("serializable"),
            serde_json::to_string(&base).expect("serializable"),
        );
        let big = PopulationConfig::at_scale(1_000_000, 7);
        assert_eq!(big.n_targets, 1_000_000);
        assert!(big.n_registrants > base.n_registrants);
    }
}
