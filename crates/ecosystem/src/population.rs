//! The synthetic Internet population.
//!
//! Builds a deterministic world with the statistical skeleton the paper
//! measured in the wild:
//!
//! * targets from a Zipf popularity list, each spawning DL-1 gtypos;
//! * a registration process in which gtypos of popular targets with low
//!   visual distance are far likelier to be taken (ctypos);
//! * registrants drawn from archetypes — bulk domain sellers,
//!   mail-hosting typosquatters, small-time squatters, defensive
//!   registrars, benign collisions — with Zipf-sized portfolios
//!   (2.3% of registrants own the majority of domains, Figure 8);
//! * mail hosting concentrated on a few provider MX domains (Table 6);
//! * a minority of "cesspool" name servers carrying a typo ratio far
//!   above the ~4% baseline (§5.2);
//! * per-host SMTP behaviour (listening ports, STARTTLS health, whether
//!   anyone ever reads the mailbox) that the scans and honey campaigns
//!   observe.

use ets_core::alexa::{self, PopularityList};
use ets_core::taxonomy::DomainClass;
use ets_core::typogen::{self, TypoCandidate};
use ets_core::{DomainInterner, DomainName, ReverseDl1Index};
use ets_dns::registry::{Registration, Registry};
use ets_dns::resolver::Resolver;
use ets_dns::whois::WhoisRecord;
use ets_dns::zone::Zone;
use ets_dns::Fqdn;
use ets_parallel::{derive_rng, domain as stream, par_map, par_map_index};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Registrant archetypes observed in §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegistrantArchetype {
    /// Companies holding large portfolios for resale; SMTP usually on
    /// (parking providers enable it by default).
    DomainSeller,
    /// Registrants operating SMTP on most of their many typo domains —
    /// the suspicious population of §5.2.
    MailTyposquatter,
    /// Small-time squatters with a handful of domains, often web-only.
    SmallSquatter,
    /// The target's own organization (defensive registrations).
    Defensive,
    /// Legitimate sites that merely happen to be lexically close.
    BenignCollision,
}

/// How a host answers SMTP connections (feeds Table 4 and Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmtpProfile {
    /// No listener on ports 25/465/587.
    NoListener,
    /// Listens, accepts, plain only.
    PlainOnly,
    /// Listens, advertises STARTTLS, upgrade fails.
    StarttlsBroken,
    /// Listens, STARTTLS works.
    StarttlsOk,
    /// Listens but times out before the banner.
    SilentTimeout,
    /// TCP connection resets (network error).
    ConnectionReset,
    /// Listens and rejects every recipient.
    BounceAll,
}

/// One registered candidate typo domain, with ground truth the analyses
/// must *recover*, never read directly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CtypoInfo {
    /// The generated candidate (domain, target, mistake metadata).
    pub candidate: TypoCandidate,
    /// Ground-truth owner id (index into [`World::registrants`]).
    pub owner: usize,
    /// Ground-truth classification.
    pub class: DomainClass,
    /// Whether WHOIS hides behind a privacy proxy.
    pub private: bool,
    /// SMTP behaviour of the host serving this domain.
    pub smtp: SmtpProfile,
    /// Whether a DNS zone is published at all ("No info" rows of Table 4
    /// come from registered names whose delegation is lame).
    pub has_zone: bool,
}

/// A registrant with a portfolio.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Registrant {
    /// Stable id (index).
    pub id: usize,
    /// Archetype.
    pub archetype: RegistrantArchetype,
    /// The registrant's true WHOIS identity.
    pub whois: WhoisRecord,
    /// Whether this registrant hides behind a privacy proxy.
    pub private: bool,
    /// Name-server provider index used for the portfolio.
    pub ns_provider: usize,
    /// Mail-hosting MX domain index (None = self-hosted or none).
    pub mx_provider: Option<usize>,
    /// Probability this registrant actually reads captured mail
    /// (§7: nearly always ~0; a handful of actors are curious).
    pub reads_mail: f64,
}

/// Configuration of the synthetic world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of target domains (Alexa top-N).
    pub n_targets: usize,
    /// RNG seed (every world with the same config is identical).
    pub seed: u64,
    /// Base probability that a gtypo of the #1 target is registered.
    pub base_registration_rate: f64,
    /// How quickly registration probability decays with target rank.
    pub rank_decay: f64,
    /// Fraction of ctypos that are defensive registrations.
    pub defensive_share: f64,
    /// Fraction of ctypos that are benign collisions.
    pub benign_share: f64,
    /// Share of registrants using privacy proxies.
    pub privacy_share: f64,
    /// Number of distinct non-proxy registrant identities.
    pub n_registrants: usize,
    /// Number of name-server providers (first `n_cesspool_ns` are dirty).
    pub n_ns_providers: usize,
    /// How many of the NS providers cater to typosquatters.
    pub n_cesspool_ns: usize,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            n_targets: 1_000,
            seed: 20161105, // the paper's ctypo snapshot date (Nov 5, 2016)
            base_registration_rate: 1.3,
            rank_decay: 0.35,
            defensive_share: 0.04,
            benign_share: 0.06,
            privacy_share: 0.44, // Table 5: 22,341 of 50,995 private
            n_registrants: 600,
            n_ns_providers: 40,
            n_cesspool_ns: 4,
        }
    }
}

impl PopulationConfig {
    /// A small world for unit tests (fast to build).
    pub fn tiny(seed: u64) -> Self {
        PopulationConfig {
            n_targets: 60,
            n_registrants: 80,
            seed,
            ..Default::default()
        }
    }
}

/// The Table-6 mail-hosting provider domains, most private, plus the two
/// public Google rows.
pub const MX_PROVIDERS: [(&str, bool, f64); 10] = [
    ("b-io.co", true, 0.436),
    ("h-email.net", true, 0.185),
    ("mb5p.com", true, 0.101),
    ("m1bp.com", true, 0.087),
    ("mb1p.com", true, 0.077),
    ("hostedmxserver.com", true, 0.031),
    ("hope-mail.com", true, 0.024),
    ("m2bp.com", true, 0.013),
    ("google.com", false, 0.008),
    ("googlemail.com", false, 0.005),
];

/// Number of mid-tier mail hosts beyond the Table-6 head: smaller hosted
/// providers that carry the middle of Figure 8's curve but whose hosted
/// domains rarely accept probe mail.
pub const MID_TIER_MX: usize = 40;

/// The assembled world.
#[derive(Debug)]
pub struct World {
    /// The registry holding every registration and zone.
    pub registry: Registry,
    /// Popularity list of targets (and benign filler sites).
    pub popularity: PopularityList,
    /// The target domains, most popular first.
    pub targets: Vec<DomainName>,
    /// All registered candidate typo domains, sorted by name.
    pub ctypos: Vec<CtypoInfo>,
    /// The registrant population (ground truth).
    pub registrants: Vec<Registrant>,
    /// Name-server provider host names (`ns1.<provider>`), index-aligned
    /// with `Registrant::ns_provider`.
    pub ns_providers: Vec<Fqdn>,
    /// Mail-provider MX domains, index-aligned with
    /// `Registrant::mx_provider`.
    pub mx_providers: Vec<Fqdn>,
    /// Per-NS-provider background customer base: unrelated benign domains
    /// that exist in .com but are not individually materialized here.
    /// Used by the §5.2 name-server ratios (the live study saw each NS
    /// against the whole zone file).
    pub ns_customer_base: Vec<(Fqdn, usize)>,
    /// Config used to build this world.
    pub config: PopulationConfig,
    /// Interned ctypo names, id-aligned with `ctypos` (interned in the
    /// final sorted order), so ownership and SMTP-profile queries are a
    /// hash probe over arena slices instead of a linear scan.
    ctypo_index: DomainInterner,
    /// Reverse DL-1 index over the targets: answers "which targets is
    /// this domain a typo of?" in O(len) without regenerating any
    /// candidate set.
    typo_index: ReverseDl1Index,
}

impl World {
    /// Builds the world deterministically from a config.
    ///
    /// Every sampled unit — a registrant, a filler site, a background
    /// customer, a target's gtypo band, an NS customer base — draws from
    /// its own RNG stream derived from `(config.seed, stream, unit id)`,
    /// so the expensive phases run data-parallel and the result is
    /// byte-identical for any thread count. Registry commits stay
    /// sequential in canonical (target-rank, generation) order because
    /// first-registration-wins must resolve cross-target name collisions
    /// the same way every run.
    pub fn build(config: PopulationConfig) -> World {
        let mut build_span = ets_obs::span!("world.build");
        build_span.arg("n_targets", config.n_targets as u64);
        let popularity = alexa::synthetic_top(config.n_targets);
        let targets: Vec<DomainName> = popularity.iter().map(|e| e.domain.clone()).collect();
        ets_obs::metrics::counter_add("world.targets", targets.len() as u64);
        let registry = Registry::new();

        let ns_providers: Vec<Fqdn> = (0..config.n_ns_providers)
            .map(|i| {
                let name = if i < config.n_cesspool_ns {
                    format!("ns1.cheap-dns-{i}.example")
                } else {
                    format!("ns1.provider-{i}.example")
                };
                name.parse().expect("generated ns names are valid")
            })
            .collect();
        let mx_providers: Vec<Fqdn> = MX_PROVIDERS
            .iter()
            .map(|(d, _, _)| d.parse::<Fqdn>().expect("static"))
            .chain(
                (0..MID_TIER_MX)
                    .map(|i| format!("mailhost-{i}.example").parse().expect("generated")),
            )
            .collect();

        // --- registrants with Zipf-sized portfolios -------------------
        let registrant_span = ets_obs::span!("world.registrants", ets_obs::Level::Debug);
        let registrants: Vec<Registrant> = par_map_index(config.n_registrants, |id| {
            let mut rng = derive_rng(config.seed, stream::POPULATION_REGISTRANT, id as u64);
            let archetype = match id {
                0..=2 => RegistrantArchetype::DomainSeller,
                3..=13 => RegistrantArchetype::MailTyposquatter,
                _ => RegistrantArchetype::SmallSquatter,
            };
            let private = rng.gen_bool(config.privacy_share);
            // Typosquatters favor the cesspool name servers.
            let ns_provider = match archetype {
                RegistrantArchetype::MailTyposquatter | RegistrantArchetype::DomainSeller
                    if rng.gen_bool(0.7) =>
                {
                    rng.gen_range(0..config.n_cesspool_ns.max(1))
                }
                _ => rng.gen_range(0..config.n_ns_providers),
            };
            // Mail hosting: weighted pick over the Table-6 providers.
            let mx_provider = match archetype {
                RegistrantArchetype::MailTyposquatter | RegistrantArchetype::DomainSeller => {
                    Some(pick_mx_provider(&mut rng))
                }
                RegistrantArchetype::SmallSquatter if rng.gen_bool(0.55) => {
                    Some(pick_mx_provider(&mut rng))
                }
                _ => None,
            };
            let reads_mail = if rng.gen_bool(0.002) { 0.5 } else { 0.0 };
            Registrant {
                id,
                archetype,
                whois: synth_whois(id, &mut rng),
                private,
                ns_provider,
                mx_provider,
                reads_mail,
            }
        });

        drop(registrant_span);

        // --- register benign filler sites (the targets themselves) ----
        let filler_span = ets_obs::span!("world.fillers", ets_obs::Level::Debug);
        let fillers: Vec<(Registration, Zone)> = par_map(&targets, |rank, t| {
            let mut rng = derive_rng(config.seed, stream::POPULATION_BACKGROUND, rank as u64);
            let fq = Fqdn::from_domain(t);
            let zone = Zone::hosted_mail(
                &fq,
                &fq.child("mx").expect("valid"),
                Some(ip_for(rank as u64, 1)),
                300,
            );
            let mut full_zone = zone;
            full_zone.add(ets_dns::record::ResourceRecord::a(
                &format!("mx.{fq}"),
                300,
                ip_for(rank as u64, 2),
            ));
            (
                Registration {
                    domain: fq,
                    registrar: "registrar-legit".to_owned(),
                    whois: synth_whois(1_000_000 + rank, &mut rng),
                    privacy_proxy: None,
                    nameservers: vec![ns_providers[rank % config.n_ns_providers.max(1)].clone()],
                    created_day: 0,
                },
                full_zone,
            )
        });
        for (reg, zone) in fillers {
            registry.register(reg, Some(zone));
        }
        drop(filler_span);
        let background_span = ets_obs::span!("world.background", ets_obs::Level::Debug);

        // --- benign background per name-server provider ----------------
        // §5.2's ratios only make sense against each provider's ordinary
        // customer base: clean providers host many unrelated businesses,
        // cesspools host few.
        let bg_units: Vec<(usize, usize)> = ns_providers
            .iter()
            .enumerate()
            .flat_map(|(pi, _)| {
                let benign_customers = if pi < config.n_cesspool_ns { 4 } else { 30 };
                (0..benign_customers).map(move |j| (pi, j))
            })
            .collect();
        let background: Vec<(Registration, Zone)> = par_map(&bg_units, |_, &(pi, j)| {
            // Background units share the filler stream domain; offset far
            // past any filler rank so unit ids never collide.
            let unit = (1u64 << 32) | (pi as u64 * 1000 + j as u64);
            let mut rng = derive_rng(config.seed, stream::POPULATION_BACKGROUND, unit);
            let ns = &ns_providers[pi];
            let name: Fqdn = format!("biz-{pi}-{j}.com").parse().expect("valid");
            (
                Registration {
                    domain: name.clone(),
                    registrar: "registrar-legit".to_owned(),
                    whois: synth_whois(4_000_000 + pi * 1000 + j, &mut rng),
                    privacy_proxy: None,
                    nameservers: vec![ns.clone()],
                    created_day: 0,
                },
                Zone::parked(&name, ip_for((pi * 1000 + j) as u64, 9), 300),
            )
        });
        for (reg, zone) in background {
            registry.register(reg, Some(zone));
        }
        drop(background_span);

        // --- the registration process over gtypos ----------------------
        // Portfolio assignment: Zipf over registrants (registrant 0 has
        // the biggest appetite).
        let appetite: Vec<f64> = (0..config.n_registrants)
            .map(|i| 1.0 / ((i + 1) as f64).powf(0.7))
            .collect();
        let appetite_total: f64 = appetite.iter().sum();

        // Parallel compute: each target draws its gtypo band from its own
        // stream and prepares registrations without touching the registry.
        let pending_span = ets_obs::span!("world.ctypo_pending", ets_obs::Level::Debug);
        let pending: Vec<Vec<PendingCtypo>> = par_map(&targets, |rank0, target| {
            let mut rng = derive_rng(config.seed, stream::POPULATION_TARGET, rank0 as u64);
            let rank = rank0 + 1;
            // Skip filler sites for typo generation beyond a band: gtypos
            // of rank > n_targets still exist but almost none registered;
            // generating them all would be wasted work, so sample.
            let p_target = config.base_registration_rate / (rank as f64).powf(config.rank_decay);
            if p_target < 0.01 {
                return Vec::new();
            }
            let mut out = Vec::new();
            // Column access into the typo table; candidate domain names are
            // only materialized for the few variants that pass the
            // registration roll.
            let table = typogen::TypoTable::generate(target);
            for ci in 0..table.len() {
                // Low visual distance and fat-finger adjacency make a typo
                // attractive; deletions/transpositions too (Figure 9).
                let attractiveness = {
                    let v = table.visual_normalized(ci);
                    let base = (1.0 - v).clamp(0.05, 1.0);
                    let ff = if table.fat_finger(ci) { 1.5 } else { 1.0 };
                    let kind = match table.kind(ci) {
                        ets_core::MistakeKind::Deletion => 1.4,
                        ets_core::MistakeKind::Transposition => 1.3,
                        ets_core::MistakeKind::Substitution => 1.0,
                        ets_core::MistakeKind::Addition => 0.8,
                    };
                    (base * ff * kind).min(2.0)
                };
                let p = (p_target * attractiveness * 0.35).min(0.95);
                if !rng.gen_bool(p) {
                    continue;
                }
                // Who takes it?
                let class_roll: f64 = rng.gen();
                let (class, owner) = if class_roll < config.defensive_share {
                    (DomainClass::Defensive, usize::MAX)
                } else if class_roll < config.defensive_share + config.benign_share {
                    (DomainClass::BenignCollision, usize::MAX - 1)
                } else {
                    let mut pick = rng.gen::<f64>() * appetite_total;
                    let mut owner = config.n_registrants - 1;
                    for (i, a) in appetite.iter().enumerate() {
                        if pick < *a {
                            owner = i;
                            break;
                        }
                        pick -= *a;
                    }
                    (DomainClass::Typosquatting, owner)
                };
                if let Some(p) = prepare_ctypo(
                    &registrants,
                    &ns_providers,
                    &mx_providers,
                    table.candidate(ci),
                    class,
                    owner,
                    &mut rng,
                ) {
                    out.push(p);
                }
            }
            out
        });
        let pending_total: u64 = pending.iter().map(|b| b.len() as u64).sum();
        ets_obs::metrics::counter_add("world.ctypo_pending", pending_total);
        drop(pending_span);
        // Sequential commit in target-rank order: first registration wins,
        // exactly as the sequential loop resolved collisions.
        let commit_span = ets_obs::span!("world.commit", ets_obs::Level::Debug);
        let mut ctypos: Vec<CtypoInfo> = Vec::new();
        for batch in pending {
            for p in batch {
                if registry.register(p.registration, p.zone) {
                    ctypos.push(p.info);
                }
            }
        }
        ctypos.sort_by(|a, b| a.candidate.domain.cmp(&b.candidate.domain));
        ets_obs::metrics::counter_add("world.ctypos", ctypos.len() as u64);
        // Registry first-registration-wins guarantees ctypo names are
        // unique, so interning in sorted order makes `id.index()` the
        // position in `ctypos`.
        let mut ctypo_index = DomainInterner::with_capacity(ctypos.len(), 16);
        for c in &ctypos {
            ctypo_index.intern(&c.candidate.domain);
        }
        drop(commit_span);
        let index_span = ets_obs::span!("world.index", ets_obs::Level::Debug);
        let typo_index = ReverseDl1Index::build(&targets);
        // The DL-1 fan-out distribution: how many targets share each
        // deletion-neighborhood key. A pure function of the target list,
        // so it belongs in the deterministic snapshot.
        const DL1_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];
        for size in typo_index.bucket_sizes() {
            ets_obs::metrics::histogram_record("world.dl1_fanout", &DL1_BOUNDS, size as u64);
        }
        drop(index_span);
        let ns_customer_base: Vec<(Fqdn, usize)> = ns_providers
            .iter()
            .enumerate()
            .map(|(pi, ns)| {
                let mut rng = derive_rng(config.seed, stream::POPULATION_NS_BASE, pi as u64);
                // Clean providers' customer base scales with world size so
                // the §5.2 average ratio stays in the low single digits at
                // any simulation scale.
                let base = if pi < config.n_cesspool_ns {
                    rng.gen_range(100..400)
                } else {
                    let per_provider = (ctypos.len() / config.n_ns_providers.max(1)).max(50);
                    rng.gen_range(per_provider * 10..per_provider * 40)
                };
                (ns.clone(), base)
            })
            .collect();
        World {
            registry,
            popularity,
            targets,
            ctypos,
            registrants,
            ns_providers,
            mx_providers,
            ns_customer_base,
            config,
            ctypo_index,
            typo_index,
        }
    }

    /// Resolver over this world's registry.
    pub fn resolver(&self) -> Resolver {
        Resolver::new(self.registry.clone())
    }

    /// Ctypos that are true typosquatting domains (ground truth).
    pub fn true_typosquats(&self) -> impl Iterator<Item = &CtypoInfo> {
        self.ctypos
            .iter()
            .filter(|c| c.class == DomainClass::Typosquatting)
    }

    /// The SMTP behaviour profile of a domain, if it is a known ctypo.
    pub fn smtp_profile(&self, domain: &DomainName) -> Option<SmtpProfile> {
        let id = self.ctypo_index.lookup(domain.as_str())?;
        Some(self.ctypos[id.index()].smtp)
    }

    /// The registrant who owns a ctypo (ground truth), if any.
    pub fn owner_of(&self, domain: &DomainName) -> Option<&Registrant> {
        let id = self.ctypo_index.lookup(domain.as_str())?;
        self.registrants.get(self.ctypos[id.index()].owner)
    }

    /// Indices into [`World::targets`] of every target `domain` is a DL-1
    /// typo of, ascending — answered by the reverse index in O(len).
    pub fn typo_targets_of(&self, domain: &DomainName) -> Vec<usize> {
        self.typo_index.matches(domain)
    }

    /// The reverse DL-1 index over this world's targets.
    pub fn typo_index(&self) -> &ReverseDl1Index {
        &self.typo_index
    }
}

/// A ctypo registration prepared off-registry during the parallel compute
/// phase; committed (or dropped on name collision) sequentially.
struct PendingCtypo {
    registration: Registration,
    zone: Option<Zone>,
    info: CtypoInfo,
}

/// Draws everything a ctypo registration needs from the caller's RNG
/// stream without touching the registry, so targets can run in parallel.
fn prepare_ctypo(
    registrants: &[Registrant],
    ns_providers: &[Fqdn],
    mx_providers: &[Fqdn],
    cand: TypoCandidate,
    class: DomainClass,
    owner: usize,
    rng: &mut ChaCha8Rng,
) -> Option<PendingCtypo> {
    let fq = Fqdn::from_domain(&cand.domain);
    let (whois, private, ns, mx, smtp): (WhoisRecord, bool, Fqdn, Option<Fqdn>, SmtpProfile) =
        match class {
            DomainClass::Defensive => {
                // Defensive registrations point at the owner, park the web
                // host, and rarely run mail.
                (
                    synth_whois(
                        2_000_000 + (owner_hash(&cand.target) % 100_000) as usize,
                        rng,
                    ),
                    false,
                    ns_providers[ns_providers.len() - 1].clone(),
                    None,
                    SmtpProfile::NoListener,
                )
            }
            DomainClass::BenignCollision => (
                synth_whois(
                    3_000_000 + (owner_hash(&cand.domain) % 100_000) as usize,
                    rng,
                ),
                rng.gen_bool(0.2),
                ns_providers[rng.gen_range(0..ns_providers.len())].clone(),
                rng.gen_bool(0.3).then(|| mx_providers[8].clone()),
                if rng.gen_bool(0.5) {
                    SmtpProfile::StarttlsOk
                } else {
                    SmtpProfile::NoListener
                },
            ),
            DomainClass::Typosquatting => {
                let r = &registrants[owner];
                let mx = r.mx_provider.map(|i| mx_providers[i].clone());
                let top_tier = r
                    .mx_provider
                    .map(|i| i < MX_PROVIDERS.len())
                    .unwrap_or(false);
                let smtp = sample_smtp_profile(r.archetype, mx.is_some(), top_tier, rng);
                (
                    r.whois.clone(),
                    r.private,
                    ns_providers[r.ns_provider].clone(),
                    mx,
                    smtp,
                )
            }
            DomainClass::Unregistered => return None,
        };

    // Lame delegation (Table 4 "No info"): registered, but no zone answers.
    let has_zone = !rng.gen_bool(0.34);
    let zone = if !has_zone {
        None
    } else {
        match (&mx, smtp) {
            (_, SmtpProfile::NoListener) if mx.is_none() => {
                // Web-only parking or nothing at all.
                if rng.gen_bool(0.6) {
                    Some(Zone::parked(&fq, ip_for(owner_hash(&cand.domain), 3), 300))
                } else {
                    Some(Zone::new(fq.clone())) // neither MX nor A
                }
            }
            (Some(mx_domain), _) => Some(Zone::hosted_mail(
                &fq,
                &mx_domain.child("mx1").expect("valid"),
                Some(ip_for(owner_hash(&cand.domain), 4)),
                300,
            )),
            (None, _) => Some(Zone::catch_all(
                &fq,
                ip_for(owner_hash(&cand.domain), 5),
                300,
            )),
        }
    };

    let private_svc = private.then(|| "privacy-guard.example".to_owned());
    Some(PendingCtypo {
        registration: Registration {
            domain: fq,
            registrar: format!("registrar-{}", owner_hash(&cand.domain) % 10),
            whois,
            privacy_proxy: private_svc,
            nameservers: vec![ns],
            created_day: rng.gen_range(0..3650),
        },
        zone,
        info: CtypoInfo {
            candidate: cand,
            owner,
            class,
            private,
            smtp,
            has_zone,
        },
    })
}

fn sample_smtp_profile(
    archetype: RegistrantArchetype,
    has_mx: bool,
    top_tier: bool,
    rng: &mut ChaCha8Rng,
) -> SmtpProfile {
    if has_mx && !top_tier {
        // Mid-tier hosted: MX resolves, but the host is mostly parked
        // infrastructure that rarely accepts (the paper's probe saw the
        // accepting population concentrate on eight private hosts).
        let roll: f64 = rng.gen();
        return if roll < 0.38 {
            SmtpProfile::SilentTimeout
        } else if roll < 0.60 {
            SmtpProfile::ConnectionReset
        } else if roll < 0.88 {
            SmtpProfile::BounceAll
        } else if roll < 0.93 {
            SmtpProfile::StarttlsOk
        } else if roll < 0.98 {
            SmtpProfile::StarttlsBroken
        } else {
            SmtpProfile::PlainOnly
        };
    }
    if !has_mx {
        // Self-hosted or web-only: mostly dead ports, echoing Table 5's
        // dominance of timeouts and network errors.
        let roll: f64 = rng.gen();
        return if roll < 0.45 {
            SmtpProfile::SilentTimeout
        } else if roll < 0.75 {
            SmtpProfile::ConnectionReset
        } else if roll < 0.85 {
            SmtpProfile::NoListener
        } else if roll < 0.93 {
            SmtpProfile::BounceAll
        } else {
            SmtpProfile::PlainOnly
        };
    }
    match archetype {
        RegistrantArchetype::MailTyposquatter | RegistrantArchetype::DomainSeller => {
            let roll: f64 = rng.gen();
            if roll < 0.62 {
                SmtpProfile::StarttlsOk
            } else if roll < 0.72 {
                SmtpProfile::StarttlsBroken
            } else if roll < 0.74 {
                SmtpProfile::PlainOnly
            } else if roll < 0.86 {
                SmtpProfile::BounceAll
            } else {
                SmtpProfile::SilentTimeout
            }
        }
        _ => {
            if rng.gen_bool(0.5) {
                SmtpProfile::StarttlsOk
            } else {
                SmtpProfile::BounceAll
            }
        }
    }
}

fn pick_mx_provider(rng: &mut ChaCha8Rng) -> usize {
    // 35% of hosted portfolios sit on the mid-tier hosts (the middle of
    // Figure 8's curve); the rest concentrate on the Table-6 head.
    if rng.gen_bool(0.35) {
        return MX_PROVIDERS.len() + rng.gen_range(0..MID_TIER_MX);
    }
    let total: f64 = MX_PROVIDERS.iter().map(|(_, _, w)| w).sum();
    let mut pick = rng.gen::<f64>() * total;
    for (i, (_, _, w)) in MX_PROVIDERS.iter().enumerate() {
        if pick < *w {
            return i;
        }
        pick -= w;
    }
    MX_PROVIDERS.len() - 1
}

fn synth_whois(id: usize, rng: &mut ChaCha8Rng) -> WhoisRecord {
    // Most registrants fill most fields (with plausibly fake data); some
    // leave fields blank so they can never cluster.
    let mut w = WhoisRecord::full(
        &format!("Registrant {id}"),
        &format!("Org {}", id % 97),
        &format!("contact{id}@mail.example"),
        &format!("+1.555{:07}", id % 10_000_000),
        &format!("+1.556{:07}", id % 10_000_000),
        &format!("{} Main Street, Springfield", id % 9_999),
    );
    if rng.gen_bool(0.15) {
        w.fax = None;
    }
    if rng.gen_bool(0.1) {
        w.organization = None;
    }
    if rng.gen_bool(0.05) {
        w.phone = None;
        w.mail_address = None;
        w.fax = None;
    }
    w
}

fn owner_hash(d: impl std::fmt::Display) -> u64 {
    let s = d.to_string();
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn ip_for(seed: u64, salt: u64) -> Ipv4Addr {
    let h = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(salt);
    Ipv4Addr::new(10, (h >> 16) as u8, (h >> 8) as u8, (h as u8).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn tiny_world() -> World {
        World::build(PopulationConfig::tiny(7))
    }

    #[test]
    fn world_is_deterministic() {
        let a = World::build(PopulationConfig::tiny(7));
        let b = World::build(PopulationConfig::tiny(7));
        assert_eq!(a.ctypos.len(), b.ctypos.len());
        for (x, y) in a.ctypos.iter().zip(&b.ctypos) {
            assert_eq!(x.candidate.domain, y.candidate.domain);
            assert_eq!(x.owner, y.owner);
            assert_eq!(x.smtp, y.smtp);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::build(PopulationConfig::tiny(7));
        let b = World::build(PopulationConfig::tiny(8));
        let a_names: Vec<_> = a
            .ctypos
            .iter()
            .map(|c| c.candidate.domain.as_str().to_owned())
            .collect();
        let b_names: Vec<_> = b
            .ctypos
            .iter()
            .map(|c| c.candidate.domain.as_str().to_owned())
            .collect();
        assert_ne!(a_names, b_names);
    }

    #[test]
    fn ctypos_are_registered_and_dl1() {
        let w = tiny_world();
        assert!(w.ctypos.len() > 100, "got {}", w.ctypos.len());
        for c in w.ctypos.iter().take(200) {
            assert!(w
                .registry
                .is_registered(&Fqdn::from_domain(&c.candidate.domain)));
            assert_eq!(
                ets_core::distance::damerau_levenshtein(
                    c.candidate.target.sld(),
                    c.candidate.domain.sld()
                ),
                1
            );
        }
    }

    #[test]
    fn popular_targets_attract_more_ctypos() {
        let w = tiny_world();
        let count_for =
            |t: &DomainName| w.ctypos.iter().filter(|c| &c.candidate.target == t).count();
        let top = count_for(&w.targets[0]);
        let bottom = count_for(&w.targets[w.targets.len() - 1]);
        assert!(
            top > bottom,
            "top target has {top} ctypos, bottom has {bottom}"
        );
    }

    #[test]
    fn ownership_is_heavy_tailed() {
        let w = World::build(PopulationConfig {
            n_targets: 120,
            ..PopulationConfig::tiny(3)
        });
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for c in w.true_typosquats() {
            *counts.entry(c.owner).or_insert(0) += 1;
        }
        let mut sizes: Vec<usize> = counts.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = sizes.iter().sum();
        let top14: usize = sizes.iter().take(14).sum();
        // Figure 8: the top registrants own a large share.
        assert!(
            top14 as f64 / total as f64 > 0.2,
            "top-14 share {}",
            top14 as f64 / total as f64
        );
    }

    #[test]
    fn privacy_share_is_plausible() {
        let w = tiny_world();
        let private = w.ctypos.iter().filter(|c| c.private).count();
        let share = private as f64 / w.ctypos.len() as f64;
        assert!(share > 0.2 && share < 0.7, "privacy share {share}");
    }

    #[test]
    fn defensive_and_benign_exist() {
        let w = World::build(PopulationConfig {
            n_targets: 150,
            ..PopulationConfig::tiny(11)
        });
        assert!(w.ctypos.iter().any(|c| c.class == DomainClass::Defensive));
        assert!(w
            .ctypos
            .iter()
            .any(|c| c.class == DomainClass::BenignCollision));
        assert!(w.true_typosquats().count() > w.ctypos.len() / 2);
    }

    #[test]
    fn hosted_mail_resolves_to_provider() {
        let w = tiny_world();
        let resolver = w.resolver();
        let hosted: Vec<&CtypoInfo> = w
            .ctypos
            .iter()
            .filter(|c| c.has_zone && matches!(c.smtp, SmtpProfile::StarttlsOk))
            .take(20)
            .collect();
        assert!(!hosted.is_empty());
        let provider_names: Vec<String> = w.mx_providers.iter().map(|p| p.to_string()).collect();
        let mut saw_provider = false;
        for c in hosted {
            if let Some(mx) = resolver.mx_domain(&Fqdn::from_domain(&c.candidate.domain)) {
                if provider_names.contains(&mx.to_string()) {
                    saw_provider = true;
                }
            }
        }
        assert!(
            saw_provider,
            "no hosted ctypo resolved to a Table-6 provider"
        );
    }

    #[test]
    fn owner_lookup_round_trips() {
        let w = tiny_world();
        let squat = w.true_typosquats().next().unwrap();
        let owner = w.owner_of(&squat.candidate.domain).unwrap();
        assert_eq!(owner.id, squat.owner);
    }

    #[test]
    fn lame_delegations_exist() {
        let w = tiny_world();
        let lame = w.ctypos.iter().filter(|c| !c.has_zone).count();
        let share = lame as f64 / w.ctypos.len() as f64;
        assert!(share > 0.2 && share < 0.5, "lame share {share}");
        // And they really have no zone in the registry.
        let c = w.ctypos.iter().find(|c| !c.has_zone).unwrap();
        assert!(w
            .registry
            .zone(&Fqdn::from_domain(&c.candidate.domain))
            .is_none());
    }
}
