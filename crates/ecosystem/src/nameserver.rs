//! Name-server suspicion analysis (§5.2).
//!
//! "A number of name servers are used by a significantly higher ratio of
//! typosquatting domains compared to benign domains. In general, the
//! average ratio ... is about 4% ... The candidate typosquatting ratio of
//! all .com domains is as high as 89% for one such name server."
//!
//! Input: the zone-file view (domain → NS rows) plus the set of domains
//! identified as candidate typos. Output: per-NS ratios and the suspicious
//! tail.

use ets_dns::Fqdn;
use std::collections::{HashMap, HashSet};

/// Statistics for one name server.
#[derive(Debug, Clone, PartialEq)]
pub struct NsStats {
    /// The name-server host.
    pub nameserver: Fqdn,
    /// Domains it serves that are candidate typos.
    pub ctypo_count: usize,
    /// Total domains it serves.
    pub total_count: usize,
}

impl NsStats {
    /// Fraction of served domains that are candidate typos.
    pub fn typo_ratio(&self) -> f64 {
        if self.total_count == 0 {
            0.0
        } else {
            self.ctypo_count as f64 / self.total_count as f64
        }
    }
}

/// The full analysis result.
#[derive(Debug, Clone)]
pub struct NsAnalysis {
    /// Per-NS stats, sorted by typo ratio descending.
    pub stats: Vec<NsStats>,
    /// The overall (domain-weighted) average typo ratio.
    pub average_ratio: f64,
}

impl NsAnalysis {
    /// Runs the analysis over zone-file rows, marking domains present in
    /// `ctypos` as candidate typos. Name servers serving fewer than
    /// `min_domains` domains are ignored (tiny denominators make ratios
    /// meaningless).
    pub fn run(
        zone_file: &[(Fqdn, Fqdn)],
        ctypos: &HashSet<Fqdn>,
        min_domains: usize,
    ) -> NsAnalysis {
        let mut per_ns: HashMap<Fqdn, (usize, usize)> = HashMap::new();
        let mut seen: HashSet<(Fqdn, Fqdn)> = HashSet::new();
        for (domain, ns) in zone_file {
            if !seen.insert((domain.clone(), ns.clone())) {
                continue; // duplicate delegation rows
            }
            let entry = per_ns.entry(ns.clone()).or_insert((0, 0));
            entry.1 += 1;
            if ctypos.contains(domain) {
                entry.0 += 1;
            }
        }
        let mut stats: Vec<NsStats> = per_ns
            .into_iter()
            .filter(|(_, (_, total))| *total >= min_domains)
            .map(|(nameserver, (ctypo_count, total_count))| NsStats {
                nameserver,
                ctypo_count,
                total_count,
            })
            .collect();
        stats.sort_by(|a, b| {
            b.typo_ratio()
                .total_cmp(&a.typo_ratio())
                .then_with(|| a.nameserver.cmp(&b.nameserver))
        });
        let (c, t) = stats.iter().fold((0usize, 0usize), |(c, t), s| {
            (c + s.ctypo_count, t + s.total_count)
        });
        NsAnalysis {
            stats,
            average_ratio: if t == 0 { 0.0 } else { c as f64 / t as f64 },
        }
    }

    /// Like [`NsAnalysis::run`], but with a per-NS *background* customer
    /// base added to the denominators: the wild study measured each name
    /// server against the full `.com` zone file, most of which is benign
    /// mass a small simulation does not materialize domain-by-domain.
    pub fn run_with_background(
        zone_file: &[(Fqdn, Fqdn)],
        ctypos: &HashSet<Fqdn>,
        background: &[(Fqdn, usize)],
        min_domains: usize,
    ) -> NsAnalysis {
        let mut a = NsAnalysis::run(zone_file, ctypos, 0);
        for (ns, extra) in background {
            match a.stats.iter_mut().find(|s| &s.nameserver == ns) {
                Some(s) => s.total_count += extra,
                None => a.stats.push(NsStats {
                    nameserver: ns.clone(),
                    ctypo_count: 0,
                    total_count: *extra,
                }),
            }
        }
        a.stats.retain(|s| s.total_count >= min_domains);
        a.stats.sort_by(|x, y| {
            y.typo_ratio()
                .total_cmp(&x.typo_ratio())
                .then_with(|| x.nameserver.cmp(&y.nameserver))
        });
        let (c, t) = a.stats.iter().fold((0usize, 0usize), |(c, t), s| {
            (c + s.ctypo_count, t + s.total_count)
        });
        a.average_ratio = if t == 0 { 0.0 } else { c as f64 / t as f64 };
        a
    }

    /// Name servers whose typo ratio exceeds `factor` times the average
    /// (§5.2 calls out a 5–10× band).
    pub fn suspicious(&self, factor: f64) -> Vec<&NsStats> {
        let threshold = self.average_ratio * factor;
        self.stats
            .iter()
            .filter(|s| s.typo_ratio() > threshold)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{PopulationConfig, World};

    fn n(s: &str) -> Fqdn {
        s.parse().unwrap()
    }

    #[test]
    fn hand_built_ratios() {
        let rows = vec![
            (n("typo1.com"), n("ns1.dirty.example")),
            (n("typo2.com"), n("ns1.dirty.example")),
            (n("site1.com"), n("ns1.dirty.example")),
            (n("site2.com"), n("ns1.clean.example")),
            (n("site3.com"), n("ns1.clean.example")),
            (n("typo3.com"), n("ns1.clean.example")),
        ];
        let ctypos: HashSet<Fqdn> = [n("typo1.com"), n("typo2.com"), n("typo3.com")]
            .into_iter()
            .collect();
        let a = NsAnalysis::run(&rows, &ctypos, 1);
        assert_eq!(a.stats[0].nameserver, n("ns1.dirty.example"));
        assert!((a.stats[0].typo_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.average_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicates_counted_once() {
        let rows = vec![
            (n("typo1.com"), n("ns1.x.example")),
            (n("typo1.com"), n("ns1.x.example")),
        ];
        let ctypos: HashSet<Fqdn> = [n("typo1.com")].into_iter().collect();
        let a = NsAnalysis::run(&rows, &ctypos, 1);
        assert_eq!(a.stats[0].total_count, 1);
    }

    #[test]
    fn min_domains_filters_tiny_ns() {
        let rows = vec![
            (n("typo1.com"), n("ns1.tiny.example")),
            (n("a.com"), n("ns1.big.example")),
            (n("b.com"), n("ns1.big.example")),
            (n("c.com"), n("ns1.big.example")),
        ];
        let ctypos: HashSet<Fqdn> = [n("typo1.com")].into_iter().collect();
        let a = NsAnalysis::run(&rows, &ctypos, 2);
        assert_eq!(a.stats.len(), 1);
        assert_eq!(a.stats[0].nameserver, n("ns1.big.example"));
    }

    #[test]
    fn synthetic_world_has_cesspools() {
        let w = World::build(PopulationConfig::tiny(9));
        let zone_file = w.registry.zone_file();
        let ctypos: HashSet<Fqdn> = w
            .ctypos
            .iter()
            .map(|c| Fqdn::from_domain(&c.candidate.domain))
            .collect();
        let a = NsAnalysis::run(&zone_file, &ctypos, 5);
        // The cesspool NS providers should sit at the top with ratios far
        // above average.
        let sus = a.suspicious(1.2);
        assert!(!sus.is_empty(), "no suspicious NS found");
        let top = &a.stats[0];
        assert!(
            top.nameserver.to_string().contains("cheap-dns"),
            "top suspicious NS is {} (ratio {:.2}, avg {:.2})",
            top.nameserver,
            top.typo_ratio(),
            a.average_ratio
        );
        assert!(top.typo_ratio() > a.average_ratio);
    }

    #[test]
    fn background_dilutes_clean_providers() {
        let rows = vec![
            (n("typo1.com"), n("ns1.dirty.example")),
            (n("typo2.com"), n("ns1.dirty.example")),
            (n("typo3.com"), n("ns1.clean.example")),
        ];
        let ctypos: HashSet<Fqdn> = [n("typo1.com"), n("typo2.com"), n("typo3.com")]
            .into_iter()
            .collect();
        let background = vec![
            (n("ns1.clean.example"), 997usize),
            (n("ns1.dirty.example"), 2usize),
        ];
        let a = NsAnalysis::run_with_background(&rows, &ctypos, &background, 1);
        let dirty = a
            .stats
            .iter()
            .find(|s| s.nameserver == n("ns1.dirty.example"))
            .unwrap();
        let clean = a
            .stats
            .iter()
            .find(|s| s.nameserver == n("ns1.clean.example"))
            .unwrap();
        assert!((dirty.typo_ratio() - 0.5).abs() < 1e-12);
        assert!(clean.typo_ratio() < 0.01);
        assert!(a.average_ratio < 0.05, "avg {}", a.average_ratio);
        assert_eq!(a.stats[0].nameserver, n("ns1.dirty.example"));
    }

    #[test]
    fn empty_inputs() {
        let a = NsAnalysis::run(&[], &HashSet::new(), 1);
        assert!(a.stats.is_empty());
        assert_eq!(a.average_ratio, 0.0);
        assert!(a.suspicious(5.0).is_empty());
    }
}
