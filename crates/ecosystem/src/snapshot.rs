//! Persistent world snapshots over the `ets-store` container.
//!
//! The world is almost entirely *derivable*: popularity, targets,
//! registrants, filler and background registrations, both indices, and
//! the NS customer bases are pure functions of [`PopulationConfig`]'s
//! RNG streams. The only non-derivable state is which gtypos won their
//! registration rolls and what each registration drew — so that is all a
//! snapshot stores: one compact struct-of-arrays record per ctypo (SLD
//! arena, target rank, mistake metadata, bit-exact visual distance, and
//! the full [`CtypoDraw`](crate::population) column set). On load the
//! derivable phases are recomputed from the same streams and each ctypo
//! is materialized purely from its stored draws, which makes the loaded
//! world **byte-identical** to the one that wrote the snapshot — every
//! `results/*.json` matches, at any thread count.
//!
//! Invalidation is strict: the store layer rejects structural damage
//! (bad magic, truncation, checksum mismatches), and this layer rejects
//! any `(format_version, config)` mismatch — the config comparison
//! covers seed and scale, since both are config fields. Every rejection
//! is a typed [`LoadError`] the caller logs before falling back to a
//! fresh build; nothing in this path panics.

use crate::population::{CtypoDraw, CtypoRecord, PopulationConfig, SmtpProfile, World};
use ets_core::taxonomy::DomainClass;
use ets_core::MistakeKind;
use ets_store::{SectionBuf, Snapshot, SnapshotWriter, StoreError};
use std::fmt;
use std::path::Path;

/// Version of the *world section schema*. Bump whenever the per-ctypo
/// columns or their meaning change; old snapshots then fail with
/// [`LoadError::FormatVersion`] and the caller rebuilds.
pub const WORLD_FORMAT_VERSION: u32 = 1;

/// Why a snapshot was rejected. Every variant is recoverable: log it and
/// build fresh.
#[derive(Debug)]
pub enum LoadError {
    /// The container itself is unreadable or damaged.
    Store(StoreError),
    /// The snapshot was written by a different world schema version.
    FormatVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The snapshot was built from a different configuration (seed,
    /// scale, or any other knob).
    ConfigMismatch,
    /// Structurally valid container, but the world data inside is
    /// inconsistent (out-of-range index, unsorted records, …).
    Corrupt(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Store(e) => write!(f, "{e}"),
            LoadError::FormatVersion { found, expected } => {
                write!(f, "snapshot format v{found}, this build reads v{expected}")
            }
            LoadError::ConfigMismatch => write!(f, "snapshot built from a different config"),
            LoadError::Corrupt(what) => write!(f, "inconsistent snapshot: {what}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<StoreError> for LoadError {
    fn from(e: StoreError) -> LoadError {
        LoadError::Store(e)
    }
}

/// The canonical byte string identifying a world configuration — the
/// config serialized as JSON (derived `Serialize` keeps field order
/// stable). Stored as the container meta blob and compared verbatim.
fn config_fingerprint(config: &PopulationConfig) -> String {
    serde_json::to_string(config).unwrap_or_default()
}

fn encode_kind(k: MistakeKind) -> u8 {
    match k {
        MistakeKind::Addition => 0,
        MistakeKind::Deletion => 1,
        MistakeKind::Substitution => 2,
        MistakeKind::Transposition => 3,
    }
}

fn decode_kind(v: u8) -> Result<MistakeKind, LoadError> {
    match v {
        0 => Ok(MistakeKind::Addition),
        1 => Ok(MistakeKind::Deletion),
        2 => Ok(MistakeKind::Substitution),
        3 => Ok(MistakeKind::Transposition),
        other => Err(LoadError::Corrupt(format!("mistake kind {other}"))),
    }
}

fn encode_class(c: DomainClass) -> u8 {
    match c {
        DomainClass::Typosquatting => 0,
        DomainClass::Defensive => 1,
        DomainClass::BenignCollision => 2,
        DomainClass::Unregistered => 3,
    }
}

fn decode_class(v: u8) -> Result<DomainClass, LoadError> {
    match v {
        0 => Ok(DomainClass::Typosquatting),
        1 => Ok(DomainClass::Defensive),
        2 => Ok(DomainClass::BenignCollision),
        other => Err(LoadError::Corrupt(format!("domain class {other}"))),
    }
}

fn encode_smtp(s: SmtpProfile) -> u8 {
    match s {
        SmtpProfile::NoListener => 0,
        SmtpProfile::PlainOnly => 1,
        SmtpProfile::StarttlsBroken => 2,
        SmtpProfile::StarttlsOk => 3,
        SmtpProfile::SilentTimeout => 4,
        SmtpProfile::ConnectionReset => 5,
        SmtpProfile::BounceAll => 6,
    }
}

fn decode_smtp(v: u8) -> Result<SmtpProfile, LoadError> {
    match v {
        0 => Ok(SmtpProfile::NoListener),
        1 => Ok(SmtpProfile::PlainOnly),
        2 => Ok(SmtpProfile::StarttlsBroken),
        3 => Ok(SmtpProfile::StarttlsOk),
        4 => Ok(SmtpProfile::SilentTimeout),
        5 => Ok(SmtpProfile::ConnectionReset),
        6 => Ok(SmtpProfile::BounceAll),
        other => Err(LoadError::Corrupt(format!("smtp profile {other}"))),
    }
}

/// Owner sentinels survive the u32 narrowing at the top of the range;
/// real owner ids are bounded by the registrant count, far below.
fn encode_owner(owner: usize) -> u32 {
    if owner == usize::MAX {
        u32::MAX
    } else if owner == usize::MAX - 1 {
        u32::MAX - 1
    } else {
        owner as u32
    }
}

fn decode_owner(v: u32) -> usize {
    if v == u32::MAX {
        usize::MAX
    } else if v == u32::MAX - 1 {
        usize::MAX - 1
    } else {
        v as usize
    }
}

const FLAG_FAT_FINGER: u8 = 1;
const FLAG_PRIVATE: u8 = 2;
const FLAG_HAS_ZONE: u8 = 4;
const FLAG_PARKED: u8 = 8;
/// `mx` column sentinel for "no mail provider".
const MX_NONE: u16 = u16::MAX;

/// Writes `world` to `path` as a versioned, checksummed snapshot.
/// Atomic: a crashed save never leaves a half-written file.
pub fn save(world: &World, path: &Path) -> Result<(), StoreError> {
    let meta = config_fingerprint(&world.config);
    let mut writer = SnapshotWriter::new(WORLD_FORMAT_VERSION, meta.as_bytes());
    let n = world.ctypos.len();

    let mut arena = SectionBuf::with_capacity(n * 12);
    let mut ends = SectionBuf::with_capacity(n * 4 + 8);
    let mut slds = String::new();
    let mut end_offsets: Vec<u32> = Vec::with_capacity(n);
    for c in &world.ctypos {
        slds.push_str(c.candidate.domain.sld());
        end_offsets.push(slds.len() as u32);
    }
    arena.put_str(&slds);
    ends.put_u32s(&end_offsets);
    writer.add_section("ctypo.sld_arena", arena);
    writer.add_section("ctypo.sld_ends", ends);

    let mut target_rank = SectionBuf::with_capacity(n * 4 + 8);
    let mut kind = SectionBuf::with_capacity(n + 8);
    let mut position = SectionBuf::with_capacity(n * 4 + 8);
    let mut flags = SectionBuf::with_capacity(n + 8);
    let mut visual = SectionBuf::with_capacity(n * 8 + 8);
    let mut owner = SectionBuf::with_capacity(n * 4 + 8);
    let mut class = SectionBuf::with_capacity(n + 8);
    let mut smtp = SectionBuf::with_capacity(n + 8);
    let mut whois_mask = SectionBuf::with_capacity(n + 8);
    let mut ns = SectionBuf::with_capacity(n * 2 + 8);
    let mut mx = SectionBuf::with_capacity(n * 2 + 8);
    let mut created = SectionBuf::with_capacity(n * 2 + 8);
    target_rank.put_u32s(
        &world
            .ctypo_meta
            .iter()
            .map(|m| m.target_rank)
            .collect::<Vec<u32>>(),
    );
    kind.put_u8s(
        &world
            .ctypos
            .iter()
            .map(|c| encode_kind(c.candidate.kind))
            .collect::<Vec<u8>>(),
    );
    position.put_u32s(
        &world
            .ctypos
            .iter()
            .map(|c| c.candidate.position as u32)
            .collect::<Vec<u32>>(),
    );
    flags.put_u8s(
        &world
            .ctypos
            .iter()
            .zip(&world.ctypo_meta)
            .map(|(c, m)| {
                let mut f = 0;
                if c.candidate.fat_finger {
                    f |= FLAG_FAT_FINGER;
                }
                if m.draw.private {
                    f |= FLAG_PRIVATE;
                }
                if m.draw.has_zone {
                    f |= FLAG_HAS_ZONE;
                }
                if m.draw.parked {
                    f |= FLAG_PARKED;
                }
                f
            })
            .collect::<Vec<u8>>(),
    );
    visual.put_f64s(
        &world
            .ctypos
            .iter()
            .map(|c| c.candidate.visual)
            .collect::<Vec<f64>>(),
    );
    owner.put_u32s(
        &world
            .ctypos
            .iter()
            .map(|c| encode_owner(c.owner))
            .collect::<Vec<u32>>(),
    );
    class.put_u8s(
        &world
            .ctypos
            .iter()
            .map(|c| encode_class(c.class))
            .collect::<Vec<u8>>(),
    );
    smtp.put_u8s(
        &world
            .ctypos
            .iter()
            .map(|c| encode_smtp(c.smtp))
            .collect::<Vec<u8>>(),
    );
    whois_mask.put_u8s(
        &world
            .ctypo_meta
            .iter()
            .map(|m| m.draw.whois_mask)
            .collect::<Vec<u8>>(),
    );
    ns.put_u16s(
        &world
            .ctypo_meta
            .iter()
            .map(|m| m.draw.ns)
            .collect::<Vec<u16>>(),
    );
    mx.put_u16s(
        &world
            .ctypo_meta
            .iter()
            .map(|m| m.draw.mx.unwrap_or(MX_NONE))
            .collect::<Vec<u16>>(),
    );
    created.put_u16s(
        &world
            .ctypo_meta
            .iter()
            .map(|m| m.draw.created_day)
            .collect::<Vec<u16>>(),
    );
    writer.add_section("ctypo.target_rank", target_rank);
    writer.add_section("ctypo.kind", kind);
    writer.add_section("ctypo.position", position);
    writer.add_section("ctypo.flags", flags);
    writer.add_section("ctypo.visual", visual);
    writer.add_section("ctypo.owner", owner);
    writer.add_section("ctypo.class", class);
    writer.add_section("ctypo.smtp", smtp);
    writer.add_section("ctypo.whois_mask", whois_mask);
    writer.add_section("ctypo.ns", ns);
    writer.add_section("ctypo.mx", mx);
    writer.add_section("ctypo.created_day", created);
    writer.write_to(path)
}

/// One fully-read u8 column of length `expect`.
fn col_u8(snap: &Snapshot, name: &str, expect: usize) -> Result<Vec<u8>, LoadError> {
    let mut r = snap.section(name)?;
    let v = r.take_u8s()?.to_vec();
    r.finish()?;
    if v.len() != expect {
        return Err(LoadError::Corrupt(format!(
            "{name}: {} rows, expected {expect}",
            v.len()
        )));
    }
    Ok(v)
}

fn col_u16(snap: &Snapshot, name: &str, expect: usize) -> Result<Vec<u16>, LoadError> {
    let mut r = snap.section(name)?;
    let v = r.take_u16s()?;
    r.finish()?;
    if v.len() != expect {
        return Err(LoadError::Corrupt(format!(
            "{name}: {} rows, expected {expect}",
            v.len()
        )));
    }
    Ok(v)
}

fn col_u32(snap: &Snapshot, name: &str, expect: usize) -> Result<Vec<u32>, LoadError> {
    let mut r = snap.section(name)?;
    let v = r.take_u32s()?;
    r.finish()?;
    if v.len() != expect {
        return Err(LoadError::Corrupt(format!(
            "{name}: {} rows, expected {expect}",
            v.len()
        )));
    }
    Ok(v)
}

fn col_f64(snap: &Snapshot, name: &str, expect: usize) -> Result<Vec<f64>, LoadError> {
    let mut r = snap.section(name)?;
    let v = r.take_f64s()?;
    r.finish()?;
    if v.len() != expect {
        return Err(LoadError::Corrupt(format!(
            "{name}: {} rows, expected {expect}",
            v.len()
        )));
    }
    Ok(v)
}

/// Loads a world from `path`, verifying that the snapshot was written by
/// this schema version from exactly `config`. On success the returned
/// world is byte-identical (every derived result file included) to
/// `World::build(config)`.
pub fn load(path: &Path, config: &PopulationConfig) -> Result<World, LoadError> {
    let snap = Snapshot::open(path)?;
    if snap.app_version() != WORLD_FORMAT_VERSION {
        return Err(LoadError::FormatVersion {
            found: snap.app_version(),
            expected: WORLD_FORMAT_VERSION,
        });
    }
    if snap.meta() != config_fingerprint(config).as_bytes() {
        return Err(LoadError::ConfigMismatch);
    }

    let mut ends_r = snap.section("ctypo.sld_ends")?;
    let ends = ends_r.take_u32s()?;
    ends_r.finish()?;
    let n = ends.len();
    let mut arena_r = snap.section("ctypo.sld_arena")?;
    let arena = arena_r.take_str()?;
    arena_r.finish()?;

    let target_rank = col_u32(&snap, "ctypo.target_rank", n)?;
    let kind = col_u8(&snap, "ctypo.kind", n)?;
    let position = col_u32(&snap, "ctypo.position", n)?;
    let flags = col_u8(&snap, "ctypo.flags", n)?;
    let visual = col_f64(&snap, "ctypo.visual", n)?;
    let owner = col_u32(&snap, "ctypo.owner", n)?;
    let class = col_u8(&snap, "ctypo.class", n)?;
    let smtp = col_u8(&snap, "ctypo.smtp", n)?;
    let whois_mask = col_u8(&snap, "ctypo.whois_mask", n)?;
    let ns = col_u16(&snap, "ctypo.ns", n)?;
    let mx = col_u16(&snap, "ctypo.mx", n)?;
    let created_day = col_u16(&snap, "ctypo.created_day", n)?;

    let mut records: Vec<CtypoRecord> = Vec::with_capacity(n);
    let mut prev_end = 0usize;
    for i in 0..n {
        let end = ends[i] as usize;
        let sld = arena
            .get(prev_end..end)
            .ok_or_else(|| LoadError::Corrupt(format!("sld arena bounds at row {i}")))?;
        prev_end = end;
        records.push(CtypoRecord {
            sld: sld.to_owned(),
            target_rank: target_rank[i],
            kind: decode_kind(kind[i])?,
            position: position[i],
            fat_finger: flags[i] & FLAG_FAT_FINGER != 0,
            visual: visual[i],
            owner: decode_owner(owner[i]),
            class: decode_class(class[i])?,
            draw: CtypoDraw {
                whois_mask: whois_mask[i],
                private: flags[i] & FLAG_PRIVATE != 0,
                ns: ns[i],
                mx: (mx[i] != MX_NONE).then_some(mx[i]),
                smtp: decode_smtp(smtp[i])?,
                has_zone: flags[i] & FLAG_HAS_ZONE != 0,
                parked: flags[i] & FLAG_PARKED != 0,
                created_day: created_day[i],
            },
        });
    }
    World::from_snapshot_records(config.clone(), records).map_err(LoadError::Corrupt)
}

/// Round-trips `world` through the snapshot encoding in memory (tests
/// and tooling; the file path goes through [`save`]/[`load`]).
pub fn roundtrip_in_memory(world: &World) -> Result<World, LoadError> {
    let dir = std::env::temp_dir();
    let path = dir.join(format!(
        "ets-world-roundtrip-{}-{}.ets",
        std::process::id(),
        world.config.seed
    ));
    save(world, &path)?;
    let out = load(&path, &world.config);
    if let Err(e) = std::fs::remove_file(&path) {
        eprintln!(
            "warning: failed to remove roundtrip temp file {}: {e}",
            path.display()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_sentinels_survive_narrowing() {
        for o in [0usize, 1, 599, usize::MAX - 1, usize::MAX] {
            assert_eq!(decode_owner(encode_owner(o)), o);
        }
    }

    #[test]
    fn enum_codes_round_trip() {
        for k in MistakeKind::ALL {
            assert_eq!(decode_kind(encode_kind(k)).unwrap(), k);
        }
        for c in [
            DomainClass::Typosquatting,
            DomainClass::Defensive,
            DomainClass::BenignCollision,
        ] {
            assert_eq!(decode_class(encode_class(c)).unwrap(), c);
        }
        for s in [
            SmtpProfile::NoListener,
            SmtpProfile::PlainOnly,
            SmtpProfile::StarttlsBroken,
            SmtpProfile::StarttlsOk,
            SmtpProfile::SilentTimeout,
            SmtpProfile::ConnectionReset,
            SmtpProfile::BounceAll,
        ] {
            assert_eq!(decode_smtp(encode_smtp(s)).unwrap(), s);
        }
        assert!(decode_kind(9).is_err());
        assert!(decode_class(3).is_err()); // unregistered is never stored
        assert!(decode_smtp(7).is_err());
    }
}
