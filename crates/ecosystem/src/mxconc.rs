//! Mail-exchange concentration (Figure 8, Table 6).
//!
//! §5.2: "the top eleven SMTP servers handle mail for more than one third
//! of typosquatting domains and 51 for the majority. Less than one percent
//! of the SMTP servers supports more than 74% of domains." Given each
//! ctypo's resolved MX domain, this module produces the per-provider
//! counts, the cumulative-share curve, and the Table-6 style distribution.

use ets_dns::resolver::Resolver;
use ets_dns::Fqdn;
use std::collections::HashMap;

/// Mail-server usage over a domain population.
#[derive(Debug, Clone, PartialEq)]
pub struct MxConcentration {
    /// `(mx_domain, count)` sorted by count descending, then name.
    pub providers: Vec<(Fqdn, usize)>,
    /// Domains that resolved to *some* mail target.
    pub total_with_mail: usize,
    /// Domains with no mail target at all.
    pub unreachable: usize,
}

impl MxConcentration {
    /// Measures concentration by resolving every domain's mail routing.
    pub fn measure<'a>(
        resolver: &Resolver,
        domains: impl Iterator<Item = &'a Fqdn>,
    ) -> MxConcentration {
        let mut counts: HashMap<Fqdn, usize> = HashMap::new();
        let mut total = 0usize;
        let mut unreachable = 0usize;
        for d in domains {
            match resolver.mx_domain(d) {
                Some(mx) => {
                    *counts.entry(mx).or_insert(0) += 1;
                    total += 1;
                }
                None => unreachable += 1,
            }
        }
        let mut providers: Vec<(Fqdn, usize)> = counts.into_iter().collect();
        providers.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        MxConcentration {
            providers,
            total_with_mail: total,
            unreachable,
        }
    }

    /// Cumulative share of mail-capable domains served by the top `k`
    /// providers.
    pub fn top_share(&self, k: usize) -> f64 {
        if self.total_with_mail == 0 {
            return 0.0;
        }
        let top: usize = self.providers.iter().take(k).map(|(_, c)| c).sum();
        top as f64 / self.total_with_mail as f64
    }

    /// Smallest number of providers covering at least `share` of
    /// mail-capable domains.
    pub fn providers_for_share(&self, share: f64) -> usize {
        let mut acc = 0usize;
        for (i, (_, c)) in self.providers.iter().enumerate() {
            acc += c;
            if acc as f64 / self.total_with_mail.max(1) as f64 >= share {
                return i + 1;
            }
        }
        self.providers.len()
    }

    /// The full cumulative curve (x: provider index, y: cumulative share).
    pub fn cumulative_curve(&self) -> Vec<f64> {
        let mut acc = 0usize;
        self.providers
            .iter()
            .map(|(_, c)| {
                acc += c;
                acc as f64 / self.total_with_mail.max(1) as f64
            })
            .collect()
    }

    /// Table-6 style rows for the top `k`: name, count, percent,
    /// cumulative percent.
    pub fn table6_rows(&self, k: usize) -> Vec<(String, usize, f64, f64)> {
        let mut acc = 0.0;
        self.providers
            .iter()
            .take(k)
            .map(|(d, c)| {
                let pct = 100.0 * *c as f64 / self.total_with_mail.max(1) as f64;
                acc += pct;
                (d.to_string(), *c, pct, acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{PopulationConfig, World};

    #[test]
    fn synthetic_world_is_concentrated() {
        let w = World::build(PopulationConfig::tiny(5));
        let resolver = w.resolver();
        let domains: Vec<Fqdn> = w
            .ctypos
            .iter()
            .map(|c| Fqdn::from_domain(&c.candidate.domain))
            .collect();
        let conc = MxConcentration::measure(&resolver, domains.iter());
        assert!(conc.total_with_mail > 50);
        // Table 6 shape: ten providers dominate the hosted population. The
        // synthetic world also contains self-hosted catch-alls (each its
        // own provider), so check the curve, not an absolute.
        let ten = conc.top_share(10);
        let one = conc.top_share(1);
        assert!(ten > one);
        assert!(ten > 0.25, "top-10 share {ten}");
        assert!(conc.providers_for_share(ten - 1e-9) <= 10);
    }

    #[test]
    fn table6_rows_are_cumulative() {
        let w = World::build(PopulationConfig::tiny(6));
        let resolver = w.resolver();
        let domains: Vec<Fqdn> = w
            .ctypos
            .iter()
            .map(|c| Fqdn::from_domain(&c.candidate.domain))
            .collect();
        let conc = MxConcentration::measure(&resolver, domains.iter());
        let rows = conc.table6_rows(5);
        assert_eq!(rows.len(), 5);
        for w2 in rows.windows(2) {
            assert!(w2[1].3 >= w2[0].3, "cumulative must grow");
            assert!(w2[1].1 <= w2[0].1, "counts must be sorted");
        }
        let last = rows.last().unwrap();
        assert!(last.3 <= 100.0 + 1e-9);
    }

    #[test]
    fn empty_population() {
        let w = World::build(PopulationConfig::tiny(5));
        let resolver = w.resolver();
        let conc = MxConcentration::measure(&resolver, std::iter::empty());
        assert_eq!(conc.total_with_mail, 0);
        assert_eq!(conc.top_share(10), 0.0);
        assert!(conc.cumulative_curve().is_empty());
    }

    #[test]
    fn unreachable_counted() {
        let w = World::build(PopulationConfig::tiny(5));
        let resolver = w.resolver();
        let lame: Vec<Fqdn> = w
            .ctypos
            .iter()
            .filter(|c| !c.has_zone)
            .map(|c| Fqdn::from_domain(&c.candidate.domain))
            .collect();
        assert!(!lame.is_empty());
        let conc = MxConcentration::measure(&resolver, lame.iter());
        assert_eq!(conc.total_with_mail, 0);
        assert_eq!(conc.unreachable, lame.len());
    }
}
