//! Registrant clustering from WHOIS records (§5.1).
//!
//! Two domains belong to the same entity when at least four of the six
//! WHOIS fields match (after Halvorson et al.). Privacy-proxied domains
//! and records with fewer than four populated fields are excluded — proxy
//! boilerplate would falsely merge every proxy customer.
//!
//! The pairwise rule is made near-linear by bucketing: since a 4-of-6
//! match requires at least one *specific* field pair to agree, records are
//! indexed by each populated field value and only bucket-mates are
//! compared. Union-find merges matches into clusters.

use ets_dns::whois::WhoisRecord;
use ets_dns::Fqdn;
use ets_parallel::par_map;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// The paper's threshold: four of six fields.
pub const MATCH_THRESHOLD: usize = 4;

/// One input row: a domain and its *public* WHOIS view.
#[derive(Debug, Clone)]
pub struct WhoisRow {
    /// The domain.
    pub domain: Fqdn,
    /// Public WHOIS record.
    pub whois: WhoisRecord,
    /// Whether the registration sits behind a privacy proxy.
    pub private: bool,
}

/// A cluster of domains attributed to one entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Domains in the cluster, sorted.
    pub domains: Vec<Fqdn>,
}

impl Cluster {
    /// Portfolio size.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the cluster is empty (never produced by the clusterer).
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }
}

/// Disjoint-set forest with path compression and union by size.
#[derive(Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns false if already merged.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        true
    }
}

/// Clusters rows by the 4-of-6 rule, excluding proxies and sparse records.
/// Returns clusters sorted by size, largest first.
///
/// Bucket comparisons are *exact*: within each bucket, records with an
/// identical normalized signature collapse to one representative (they
/// necessarily match — eligibility guarantees ≥ 4 populated fields) and
/// the distinct representatives are compared all-pairs. Any matching pair
/// shares at least one field value, hence some bucket, so the global
/// clustering equals full pairwise comparison. This replaces an earlier
/// anchor-plus-adjacent-windows pass that missed unions (two members that
/// match each other but not the bucket anchor and are not adjacent).
///
/// Pair evaluation runs data-parallel per bucket; it reads only the input
/// rows, so the matching-pair set — and the final partition — is
/// identical for any thread count. Buckets are walked in sorted key order
/// because `HashMap` iteration order is unspecified.
pub fn cluster_registrants(rows: &[WhoisRow]) -> Vec<Cluster> {
    let mut cluster_span = ets_obs::span!("whois.cluster");
    cluster_span.arg("rows", rows.len() as u64);
    ets_obs::metrics::counter_add("whois.rows", rows.len() as u64);
    // Eligible rows only.
    let eligible: Vec<(usize, &WhoisRow)> = rows
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.private && r.whois.populated_fields() >= MATCH_THRESHOLD)
        .collect();
    ets_obs::metrics::counter_add("whois.eligible", eligible.len() as u64);
    let mut uf = UnionFind::new(eligible.len());

    // Bucket by normalized field values; compare within buckets.
    let mut buckets: HashMap<(u8, String), Vec<usize>> = HashMap::new();
    for (local, (_, row)) in eligible.iter().enumerate() {
        for (fi, field) in fields(&row.whois).into_iter().enumerate() {
            if let Some(v) = field {
                buckets
                    .entry((fi as u8, normalize(v)))
                    .or_default()
                    .push(local);
            }
        }
    }
    let mut bucket_list: Vec<((u8, String), Vec<usize>)> = buckets
        .into_iter()
        .filter(|(_, members)| members.len() >= 2)
        .collect();
    bucket_list.sort_unstable_by(|(ka, _), (kb, _)| ka.cmp(kb));

    let matched: Vec<Vec<(usize, usize)>> = par_map(&bucket_list, |_, (_, members)| {
        let mut sig_first: HashMap<Vec<Option<String>>, usize> = HashMap::new();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut reps: Vec<usize> = Vec::new();
        for &m in members {
            let sig: Vec<Option<String>> = fields(&eligible[m].1.whois)
                .into_iter()
                .map(|f| f.map(|v| normalize(v)))
                .collect();
            match sig_first.entry(sig) {
                Entry::Occupied(e) => pairs.push((*e.get(), m)),
                Entry::Vacant(e) => {
                    e.insert(m);
                    reps.push(m);
                }
            }
        }
        for i in 0..reps.len() {
            for j in (i + 1)..reps.len() {
                let a = &eligible[reps[i]].1.whois;
                let b = &eligible[reps[j]].1.whois;
                if a.same_entity(b, MATCH_THRESHOLD) {
                    pairs.push((reps[i], reps[j]));
                }
            }
        }
        pairs
    });
    for pairs in matched {
        for (a, b) in pairs {
            uf.union(a, b);
        }
    }

    let mut groups: HashMap<usize, Vec<Fqdn>> = HashMap::new();
    for (local, (_, row)) in eligible.iter().enumerate() {
        let root = uf.find(local);
        groups.entry(root).or_default().push(row.domain.clone());
    }
    let mut clusters: Vec<Cluster> = groups
        .into_values()
        .map(|mut domains| {
            domains.sort();
            Cluster { domains }
        })
        .collect();
    clusters.sort_by(|a, b| {
        b.len()
            .cmp(&a.len())
            .then_with(|| a.domains.cmp(&b.domains))
    });
    clusters
}

fn fields(w: &WhoisRecord) -> [Option<&String>; 6] {
    [
        w.registrant_name.as_ref(),
        w.organization.as_ref(),
        w.email.as_ref(),
        w.phone.as_ref(),
        w.fax.as_ref(),
        w.mail_address.as_ref(),
    ]
}

fn normalize(v: &str) -> String {
    v.trim().to_ascii_lowercase()
}

/// The cumulative-ownership curve of Figure 8: for clusters sorted largest
/// first, the cumulative fraction of domains owned by the top `i+1`
/// clusters at index `i`.
pub fn cumulative_ownership(clusters: &[Cluster]) -> Vec<f64> {
    let total: usize = clusters.iter().map(Cluster::len).sum();
    if total == 0 {
        return Vec::new();
    }
    let mut acc = 0usize;
    clusters
        .iter()
        .map(|c| {
            acc += c.len();
            acc as f64 / total as f64
        })
        .collect()
}

/// Smallest fraction of registrants owning at least `share` of domains
/// (§5.2: "2.3% of all of the registrants own the majority").
pub fn registrant_fraction_owning(clusters: &[Cluster], share: f64) -> f64 {
    let curve = cumulative_ownership(clusters);
    if curve.is_empty() {
        return 0.0;
    }
    let n = curve.len() as f64;
    for (i, &c) in curve.iter().enumerate() {
        if c >= share {
            return (i + 1) as f64 / n;
        }
    }
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Fqdn {
        s.parse().unwrap()
    }

    fn row(domain: &str, whois: WhoisRecord, private: bool) -> WhoisRow {
        WhoisRow {
            domain: n(domain),
            whois,
            private,
        }
    }

    fn identity(i: usize) -> WhoisRecord {
        WhoisRecord::full(
            &format!("Owner {i}"),
            &format!("Org {i}"),
            &format!("o{i}@x.com"),
            &format!("+1.55500000{i:02}"),
            &format!("+1.55600000{i:02}"),
            &format!("{i} Main St"),
        )
    }

    #[test]
    fn same_identity_clusters() {
        let rows = vec![
            row("a.com", identity(1), false),
            row("b.com", identity(1), false),
            row("c.com", identity(2), false),
        ];
        let clusters = cluster_registrants(&rows);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].len(), 2);
        assert_eq!(clusters[0].domains, vec![n("a.com"), n("b.com")]);
    }

    #[test]
    fn partial_match_of_four_clusters() {
        let mut w2 = identity(5);
        w2.registrant_name = Some("Different Name".to_owned());
        w2.fax = None; // 4 fields still match
        let rows = vec![row("a.com", identity(5), false), row("b.com", w2, false)];
        let clusters = cluster_registrants(&rows);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 2);
    }

    #[test]
    fn three_matches_do_not_cluster() {
        let mut w2 = identity(5);
        w2.registrant_name = Some("X".to_owned());
        w2.organization = Some("Y".to_owned());
        w2.fax = None;
        let rows = vec![row("a.com", identity(5), false), row("b.com", w2, false)];
        let clusters = cluster_registrants(&rows);
        assert_eq!(clusters.len(), 2);
    }

    #[test]
    fn private_rows_excluded() {
        let rows = vec![
            row("a.com", identity(1), true),
            row("b.com", identity(1), true),
            row("c.com", identity(2), false),
        ];
        let clusters = cluster_registrants(&rows);
        // only c.com is eligible
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].domains, vec![n("c.com")]);
    }

    #[test]
    fn sparse_records_excluded() {
        let sparse = WhoisRecord {
            registrant_name: Some("Bob".into()),
            email: Some("b@x.com".into()),
            ..Default::default()
        };
        let rows = vec![
            row("a.com", sparse.clone(), false),
            row("b.com", sparse, false),
        ];
        assert!(cluster_registrants(&rows).is_empty());
    }

    #[test]
    fn transitive_clustering() {
        // A matches B on fields 1-4; B matches C on fields 3-6; A and C
        // match on only 2 — union-find still merges all three.
        let a = identity(9);
        let mut b = identity(9);
        let mut c = identity(9);
        b.registrant_name = Some("B Name".into());
        b.organization = Some("B Org".into());
        c.registrant_name = Some("B Name".into());
        c.organization = Some("B Org".into());
        c.email = Some("c@x.com".into());
        c.phone = Some("+1.999".into());
        // a∩b: email, phone, fax, addr = 4 ✓; b∩c: name, org, fax, addr = 4 ✓
        // a∩c: fax, addr = 2
        assert_eq!(a.matching_fields(&b), 4);
        assert_eq!(b.matching_fields(&c), 4);
        assert_eq!(a.matching_fields(&c), 2);
        let rows = vec![
            row("a.com", a, false),
            row("b.com", b, false),
            row("c.com", c, false),
        ];
        let clusters = cluster_registrants(&rows);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].len(), 3);
    }

    #[test]
    fn nonadjacent_bucket_members_cluster() {
        // Regression: b.com and d.com match each other on 4 fields, but in
        // every shared-field bucket they are separated by spoiler rows that
        // match neither, so the old anchor+adjacent-windows passes never
        // compared them. Exact within-bucket comparison must merge them.
        let rec = |name: &str,
                   org: &str,
                   email: Option<&str>,
                   phone: Option<&str>,
                   fax: Option<&str>,
                   addr: Option<&str>| WhoisRecord {
            registrant_name: Some(name.to_owned()),
            organization: Some(org.to_owned()),
            email: email.map(str::to_owned),
            phone: phone.map(str::to_owned),
            fax: fax.map(str::to_owned),
            mail_address: addr.map(str::to_owned),
        };
        let b = rec("B", "OB", Some("x@x"), Some("p"), Some("f"), Some("a"));
        let d = rec("D", "OD", Some("x@x"), Some("p"), Some("f"), Some("a"));
        assert_eq!(b.matching_fields(&d), 4);
        let rows = vec![
            row(
                "se-a.com",
                rec("sea", "osea", Some("x@x"), Some("psea"), None, None),
                false,
            ),
            row(
                "sp-a.com",
                rec("spa", "ospa", Some("espa"), Some("p"), None, None),
                false,
            ),
            row(
                "sf-a.com",
                rec("sfa", "osfa", Some("esfa"), None, Some("f"), None),
                false,
            ),
            row(
                "sa-a.com",
                rec("saa", "osaa", Some("esaa"), None, None, Some("a")),
                false,
            ),
            row("b.com", b, false),
            row(
                "se-b.com",
                rec("seb", "oseb", Some("x@x"), Some("pseb"), None, None),
                false,
            ),
            row(
                "sp-b.com",
                rec("spb", "ospb", Some("espb"), Some("p"), None, None),
                false,
            ),
            row(
                "sf-b.com",
                rec("sfb", "osfb", Some("esfb"), None, Some("f"), None),
                false,
            ),
            row(
                "sa-b.com",
                rec("sab", "osab", Some("esab"), None, None, Some("a")),
                false,
            ),
            row("d.com", d, false),
        ];
        let clusters = cluster_registrants(&rows);
        assert_eq!(clusters.len(), 9, "{clusters:?}");
        assert_eq!(clusters[0].domains, vec![n("b.com"), n("d.com")]);
    }

    #[test]
    fn cumulative_curve() {
        let clusters = vec![
            Cluster {
                domains: vec![n("a.com"), n("b.com"), n("c.com")],
            },
            Cluster {
                domains: vec![n("d.com")],
            },
        ];
        let curve = cumulative_ownership(&clusters);
        assert_eq!(curve, vec![0.75, 1.0]);
        assert!((registrant_fraction_owning(&clusters, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn union_find_behaves() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.find(2), uf.find(0));
        assert_ne!(uf.find(3), uf.find(0));
    }

    #[test]
    fn empty_input() {
        assert!(cluster_registrants(&[]).is_empty());
        assert!(cumulative_ownership(&[]).is_empty());
    }
}
