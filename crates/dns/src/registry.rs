//! The registration database.
//!
//! Holds, for every registered domain: its WHOIS record (possibly behind a
//! privacy proxy), its registrar, its name servers, and its authoritative
//! zone. This is the substrate §5 scans: generate gtypos, ask the registry
//! which are registered (ctypos), resolve their MX/A records, fetch WHOIS,
//! and read the `.com` zone file for name-server statistics.

use crate::name::Fqdn;
use crate::whois::WhoisRecord;
use crate::zone::Zone;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// One domain registration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Registration {
    /// The registered domain.
    pub domain: Fqdn,
    /// Registrar identifier (e.g. `reg-7`).
    pub registrar: String,
    /// True WHOIS data of the owner (may be partly fake/missing).
    pub whois: WhoisRecord,
    /// Privacy proxy service, if the owner hides behind one.
    pub privacy_proxy: Option<String>,
    /// Name-server host names serving the domain.
    pub nameservers: Vec<Fqdn>,
    /// Registration day (simulation days since epoch).
    pub created_day: u32,
}

impl Registration {
    /// The WHOIS record a public query returns: the proxy record when the
    /// registration is proxied, the owner's record otherwise.
    pub fn public_whois(&self) -> WhoisRecord {
        match &self.privacy_proxy {
            Some(service) => WhoisRecord::privacy_proxy(service),
            None => self.whois.clone(),
        }
    }

    /// Whether the registration is privacy-proxied.
    pub fn is_private(&self) -> bool {
        self.privacy_proxy.is_some()
    }
}

/// The registry: registrations plus the authoritative zones behind them.
///
/// Thread-safe: the scanning experiments fan out across worker threads.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    inner: Arc<RwLock<RegistryInner>>,
}

/// One domain's registry row: the registration plus its published zone.
/// One map (not registration/zone side tables) on purpose: the bulk
/// commit paths touch ~10⁶ random buckets, and a second table doubles
/// the cache/TLB misses that dominate that loop.
#[derive(Debug)]
struct RegistryEntry {
    registration: Registration,
    zone: Option<Zone>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    domains: HashMap<Fqdn, RegistryEntry>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the registration and zone tables for `additional` more
    /// entries — the bulk paths (background population, snapshot reload)
    /// know their counts up front, so the maps never rehash mid-commit.
    pub fn reserve(&self, additional: usize) {
        let mut inner = self.inner.write();
        inner.domains.reserve(additional);
    }

    /// Registers a domain with its zone. Returns `false` (and changes
    /// nothing) if the domain was already taken.
    pub fn register(&self, registration: Registration, zone: Option<Zone>) -> bool {
        let mut inner = self.inner.write();
        match inner.domains.entry(registration.domain.clone()) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                if let Some(z) = &zone {
                    assert!(
                        z.origin == registration.domain,
                        "zone origin {} does not match registration {}",
                        z.origin,
                        registration.domain
                    );
                }
                slot.insert(RegistryEntry { registration, zone });
                true
            }
        }
    }

    /// Removes a registration (domain surrender, per the study's trademark
    /// policy). Returns the removed registration, if any.
    pub fn surrender(&self, domain: &Fqdn) -> Option<Registration> {
        let mut inner = self.inner.write();
        inner.domains.remove(domain).map(|e| e.registration)
    }

    /// Whether a domain is registered.
    pub fn is_registered(&self, domain: &Fqdn) -> bool {
        self.inner.read().domains.contains_key(domain)
    }

    /// The registration of a domain.
    pub fn registration(&self, domain: &Fqdn) -> Option<Registration> {
        self.inner
            .read()
            .domains
            .get(domain)
            .map(|e| e.registration.clone())
    }

    /// The public WHOIS view of a domain (proxy record when proxied).
    pub fn whois(&self, domain: &Fqdn) -> Option<WhoisRecord> {
        self.inner
            .read()
            .domains
            .get(domain)
            .map(|e| e.registration.public_whois())
    }

    /// The authoritative zone for a domain, if one is published.
    pub fn zone(&self, domain: &Fqdn) -> Option<Zone> {
        self.inner
            .read()
            .domains
            .get(domain)
            .and_then(|e| e.zone.clone())
    }

    /// Replaces (or publishes) a domain's zone. Returns `false` if the
    /// domain is not registered.
    pub fn publish_zone(&self, zone: Zone) -> bool {
        let mut inner = self.inner.write();
        match inner.domains.get_mut(&zone.origin) {
            Some(e) => {
                e.zone = Some(zone);
                true
            }
            None => false,
        }
    }

    /// Number of registrations.
    pub fn len(&self) -> usize {
        self.inner.read().domains.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All registered domains (sorted, for determinism).
    pub fn domains(&self) -> Vec<Fqdn> {
        let mut v: Vec<Fqdn> = self.inner.read().domains.keys().cloned().collect();
        v.sort();
        v
    }

    /// The zone-file view used by §5.1's name-server analysis: one
    /// `(domain, nameserver)` row per NS delegation, sorted.
    pub fn zone_file(&self) -> Vec<(Fqdn, Fqdn)> {
        let inner = self.inner.read();
        let mut rows: Vec<(Fqdn, Fqdn)> = Vec::new();
        for (domain, e) in &inner.domains {
            for ns in &e.registration.nameservers {
                rows.push((domain.clone(), ns.clone()));
            }
        }
        rows.sort();
        rows
    }

    /// Runs `f` over every registration without cloning the map.
    pub fn for_each<F: FnMut(&Registration)>(&self, mut f: F) {
        let inner = self.inner.read();
        let mut keys: Vec<&Fqdn> = inner.domains.keys().collect();
        keys.sort();
        for k in keys {
            f(&inner.domains[k].registration);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordType;
    use std::net::Ipv4Addr;

    fn n(s: &str) -> Fqdn {
        s.parse().unwrap()
    }

    fn reg(domain: &str, private: bool) -> Registration {
        Registration {
            domain: n(domain),
            registrar: "reg-1".to_owned(),
            whois: WhoisRecord::full("Owner", "Org", "o@x.com", "+1.5550000000", "", "addr"),
            privacy_proxy: private.then(|| "proxy.example".to_owned()),
            nameservers: vec![n("ns1.host.example"), n("ns2.host.example")],
            created_day: 100,
        }
    }

    #[test]
    fn register_and_lookup() {
        let r = Registry::new();
        assert!(r.register(reg("gmial.com", false), None));
        assert!(r.is_registered(&n("gmial.com")));
        assert!(!r.is_registered(&n("gmaill.com")));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn double_registration_fails() {
        let r = Registry::new();
        assert!(r.register(reg("gmial.com", false), None));
        assert!(!r.register(reg("gmial.com", true), None));
        assert!(!r.registration(&n("gmial.com")).unwrap().is_private());
    }

    #[test]
    fn whois_respects_privacy_proxy() {
        let r = Registry::new();
        r.register(reg("hidden.com", true), None);
        r.register(reg("open.com", false), None);
        let hidden = r.whois(&n("hidden.com")).unwrap();
        assert_eq!(hidden.organization.as_deref(), Some("proxy.example"));
        let open = r.whois(&n("open.com")).unwrap();
        assert_eq!(open.registrant_name.as_deref(), Some("Owner"));
    }

    #[test]
    fn zone_publication_and_lookup() {
        let r = Registry::new();
        r.register(reg("typo.com", false), None);
        assert!(r.zone(&n("typo.com")).is_none());
        let z = Zone::catch_all(&n("typo.com"), Ipv4Addr::new(5, 5, 5, 5), 300);
        assert!(r.publish_zone(z));
        let z = r.zone(&n("typo.com")).unwrap();
        assert_eq!(z.lookup(&n("a.typo.com"), RecordType::Mx).len(), 1);
        // Unregistered domains cannot publish.
        let z2 = Zone::parked(&n("other.com"), Ipv4Addr::new(1, 2, 3, 4), 300);
        assert!(!r.publish_zone(z2));
    }

    #[test]
    fn surrender_removes_everything() {
        let r = Registry::new();
        let zone = Zone::parked(&n("trademark.com"), Ipv4Addr::new(1, 1, 1, 1), 300);
        r.register(reg("trademark.com", false), Some(zone));
        assert!(r.surrender(&n("trademark.com")).is_some());
        assert!(!r.is_registered(&n("trademark.com")));
        assert!(r.zone(&n("trademark.com")).is_none());
        assert!(r.surrender(&n("trademark.com")).is_none());
    }

    #[test]
    fn zone_file_lists_delegations() {
        let r = Registry::new();
        r.register(reg("a.com", false), None);
        r.register(reg("b.com", false), None);
        let rows = r.zone_file();
        assert_eq!(rows.len(), 4); // 2 domains × 2 NS
        assert!(rows.iter().all(|(_, ns)| ns.to_string().starts_with("ns")));
    }

    #[test]
    fn registry_is_shared_across_clones() {
        let r = Registry::new();
        let r2 = r.clone();
        r.register(reg("shared.com", false), None);
        assert!(r2.is_registered(&n("shared.com")));
    }

    #[test]
    #[should_panic(expected = "does not match registration")]
    fn mismatched_zone_panics() {
        let r = Registry::new();
        let z = Zone::parked(&n("other.com"), Ipv4Addr::new(1, 1, 1, 1), 300);
        r.register(reg("mine.com", false), Some(z));
    }
}
