//! # ets-dns
//!
//! The DNS substrate of the email-typosquatting reproduction.
//!
//! The study leans on DNS in very specific ways — wildcard MX records so a
//! typo domain catches mail for any subdomain (Table 1), the RFC 5321 rule
//! that a missing MX record falls back to the A record, MX/A scans over
//! millions of candidate typo domains (§5.1), and WHOIS records for
//! registrant clustering — and this crate implements all of them over an
//! in-memory authority rather than the live Internet:
//!
//! * [`name`] — fully-qualified names with wildcard labels.
//! * [`record`] — A / NS / MX / TXT / SOA / CNAME resource records.
//! * [`zone`] — authoritative zones with RFC 4592 wildcard matching.
//! * [`wire`] — the RFC 1035 message codec, including name compression.
//! * [`resolver`] — lookups against a zone set, plus the RFC 5321
//!   MX-with-A-fallback resolution used by every SMTP client.
//! * [`server`] — a UDP driver serving the resolver over real sockets.
//! * [`registry`] — the registration database: who owns which domain,
//!   through which registrar, behind which privacy proxy.
//! * [`whois`] — WHOIS records with the six fields the clustering of
//!   §5.1 matches on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod name;
pub mod record;
pub mod registry;
pub mod resolver;
pub mod server;
pub mod whois;
pub mod wire;
pub mod zone;

pub use name::Fqdn;
pub use record::{RecordData, RecordType, ResourceRecord};
pub use registry::{Registration, Registry};
pub use resolver::{MailTarget, Resolver};
pub use whois::WhoisRecord;
pub use zone::Zone;
