//! WHOIS records.
//!
//! §5.1 clusters registrants on six WHOIS fields — registrant name,
//! organization, email address, phone number, fax number, and mail
//! address — declaring two domains same-owner when at least four fields
//! match. Much of real WHOIS data is fake, missing, or hidden behind a
//! privacy proxy, all of which this model represents.

use serde::{Deserialize, Serialize};

/// The six matchable WHOIS fields; any may be absent.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WhoisRecord {
    /// Registrant name (often fake — "Mickey Mouse" still clusters).
    pub registrant_name: Option<String>,
    /// Organization.
    pub organization: Option<String>,
    /// Contact email.
    pub email: Option<String>,
    /// Phone number.
    pub phone: Option<String>,
    /// Fax number.
    pub fax: Option<String>,
    /// Postal address.
    pub mail_address: Option<String>,
}

impl WhoisRecord {
    /// A fully-populated record.
    pub fn full(name: &str, org: &str, email: &str, phone: &str, fax: &str, address: &str) -> Self {
        WhoisRecord {
            registrant_name: Some(name.to_owned()),
            organization: Some(org.to_owned()),
            email: Some(email.to_owned()),
            phone: Some(phone.to_owned()),
            fax: Some(fax.to_owned()),
            mail_address: Some(address.to_owned()),
        }
    }

    /// The record a privacy proxy service exposes: proxy boilerplate in
    /// every field. All proxied domains share these strings, which is why
    /// §5.2 *excludes* proxy-protected registrants from clustering.
    pub fn privacy_proxy(service: &str) -> Self {
        WhoisRecord {
            registrant_name: Some(format!("{service} privacy customer")),
            organization: Some(service.to_owned()),
            email: Some(format!("contact@{service}")),
            phone: Some("+1.0000000000".to_owned()),
            fax: None,
            mail_address: Some(format!("c/o {service}, PO Box 0")),
        }
    }

    /// Number of populated fields.
    pub fn populated_fields(&self) -> usize {
        [
            &self.registrant_name,
            &self.organization,
            &self.email,
            &self.phone,
            &self.fax,
            &self.mail_address,
        ]
        .iter()
        .filter(|f| f.is_some())
        .count()
    }

    /// Number of fields that are populated in *both* records and equal
    /// (case-insensitive, trimmed).
    pub fn matching_fields(&self, other: &WhoisRecord) -> usize {
        fn eq(a: &Option<String>, b: &Option<String>) -> bool {
            match (a, b) {
                (Some(x), Some(y)) => x.trim().eq_ignore_ascii_case(y.trim()),
                _ => false,
            }
        }
        [
            eq(&self.registrant_name, &other.registrant_name),
            eq(&self.organization, &other.organization),
            eq(&self.email, &other.email),
            eq(&self.phone, &other.phone),
            eq(&self.fax, &other.fax),
            eq(&self.mail_address, &other.mail_address),
        ]
        .iter()
        .filter(|&&m| m)
        .count()
    }

    /// The §5.1 rule: same entity when at least `threshold` (the paper
    /// uses 4) of the six fields match. Records with fewer than `threshold`
    /// populated fields can never cluster.
    pub fn same_entity(&self, other: &WhoisRecord, threshold: usize) -> bool {
        self.matching_fields(other) >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alice() -> WhoisRecord {
        WhoisRecord::full(
            "Alice Ng",
            "Typo Holdings LLC",
            "alice@typoholdings.example",
            "+1.5551234567",
            "+1.5551234568",
            "1 Main St, Springfield",
        )
    }

    #[test]
    fn full_record_matches_itself() {
        let a = alice();
        assert_eq!(a.matching_fields(&a), 6);
        assert!(a.same_entity(&a, 4));
        assert_eq!(a.populated_fields(), 6);
    }

    #[test]
    fn four_of_six_clusters() {
        let a = alice();
        let mut b = alice();
        b.registrant_name = Some("A. Ng".to_owned()); // differs
        b.fax = None; // missing
        assert_eq!(a.matching_fields(&b), 4);
        assert!(a.same_entity(&b, 4));
        b.phone = Some("+1.9990000000".to_owned()); // now only 3 match
        assert!(!a.same_entity(&b, 4));
    }

    #[test]
    fn missing_fields_do_not_match() {
        let mut a = alice();
        let mut b = alice();
        a.email = None;
        b.email = None;
        // both missing — not a match
        assert_eq!(a.matching_fields(&b), 5);
    }

    #[test]
    fn comparison_ignores_case_and_whitespace() {
        let a = alice();
        let mut b = alice();
        b.organization = Some("  TYPO HOLDINGS llc ".to_owned());
        assert_eq!(a.matching_fields(&b), 6);
    }

    #[test]
    fn proxy_records_look_alike() {
        let p1 = WhoisRecord::privacy_proxy("whoisguard.example");
        let p2 = WhoisRecord::privacy_proxy("whoisguard.example");
        // This is exactly why the paper excludes proxies: every customer of
        // the same proxy would falsely cluster.
        assert!(p1.same_entity(&p2, 4));
    }

    #[test]
    fn sparse_records_never_cluster() {
        let sparse = WhoisRecord {
            registrant_name: Some("Bob".to_owned()),
            email: Some("bob@x.com".to_owned()),
            ..Default::default()
        };
        assert_eq!(sparse.populated_fields(), 2);
        assert!(!sparse.same_entity(&sparse.clone(), 4));
    }
}
