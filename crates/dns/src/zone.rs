//! Authoritative zones with wildcard matching.

use crate::name::Fqdn;
use crate::record::{RecordData, RecordType, ResourceRecord};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// An authoritative zone: an origin plus its records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zone {
    /// The zone apex (e.g. `exampel.com`).
    pub origin: Fqdn,
    records: Vec<ResourceRecord>,
}

impl Zone {
    /// Creates an empty zone.
    pub fn new(origin: Fqdn) -> Self {
        Zone {
            origin,
            records: Vec::new(),
        }
    }

    /// Adds a record. Panics if the owner name is outside the zone.
    pub fn add(&mut self, record: ResourceRecord) {
        // A wildcard `*.x` passes the suffix test for zone `x` directly,
        // so no separate parent() step is needed.
        assert!(
            record.name.is_within(&self.origin),
            "record owner {} outside zone {}",
            record.name,
            self.origin
        );
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[ResourceRecord] {
        &self.records
    }

    /// Looks up records of `rtype` for `qname`, applying RFC 4592 wildcard
    /// semantics: exact matches win; only if *no* record of any type exists
    /// at the exact name do wildcard owners apply.
    pub fn lookup(&self, qname: &Fqdn, rtype: RecordType) -> Vec<&ResourceRecord> {
        let exact_any = self
            .records
            .iter()
            .any(|r| !r.name.is_wildcard() && &r.name == qname);
        if exact_any {
            return self
                .records
                .iter()
                .filter(|r| !r.name.is_wildcard() && &r.name == qname && r.record_type() == rtype)
                .collect();
        }
        self.records
            .iter()
            .filter(|r| r.name.is_wildcard() && r.name.matches(qname) && r.record_type() == rtype)
            .collect()
    }

    /// Whether `qname` belongs to this zone.
    pub fn contains(&self, qname: &Fqdn) -> bool {
        qname.is_within(&self.origin)
    }

    /// Builds the study's standard typo-domain zone (Table 1): wildcard and
    /// apex MX pointing at the apex, wildcard and apex A pointing at the
    /// collection VPS.
    pub fn catch_all(origin: &Fqdn, vps_addr: Ipv4Addr, ttl: u32) -> Zone {
        // Built from name *values*: this runs once per ctypo registration,
        // so no record takes the string/re-parse round trip.
        let mut z = Zone::new(origin.clone());
        let wildcard = origin.wildcard();
        let mx = |exchange: Fqdn| RecordData::Mx {
            preference: 1,
            exchange,
        };
        z.add(ResourceRecord::new(
            wildcard.clone(),
            ttl,
            mx(origin.clone()),
        ));
        z.add(ResourceRecord::new(origin.clone(), ttl, mx(origin.clone())));
        z.add(ResourceRecord::new(wildcard, ttl, RecordData::A(vps_addr)));
        z.add(ResourceRecord::new(
            origin.clone(),
            ttl,
            RecordData::A(vps_addr),
        ));
        z
    }

    /// Builds a web-parking zone: A record only, no MX (the "registered but
    /// cannot receive email" population of Table 4).
    pub fn parked(origin: &Fqdn, addr: Ipv4Addr, ttl: u32) -> Zone {
        let mut z = Zone::new(origin.clone());
        z.add(ResourceRecord::new(
            origin.clone(),
            ttl,
            RecordData::A(addr),
        ));
        z
    }

    /// Builds a zone whose MX points at an external mail hosting provider
    /// (the concentrated mail servers of Figure 8 / Table 6).
    pub fn hosted_mail(
        origin: &Fqdn,
        mx_host: &Fqdn,
        web_addr: Option<Ipv4Addr>,
        ttl: u32,
    ) -> Zone {
        let mut z = Zone::new(origin.clone());
        z.add(ResourceRecord::new(
            origin.clone(),
            ttl,
            RecordData::Mx {
                preference: 10,
                exchange: mx_host.clone(),
            },
        ));
        if let Some(a) = web_addr {
            z.add(ResourceRecord::new(origin.clone(), ttl, RecordData::A(a)));
        }
        z
    }
}

/// Formats a zone as the Table-1 style settings listing.
pub fn table1_listing(zone: &Zone) -> String {
    let mut out = String::from("FQDN TTL TYPE priority record\n");
    for r in zone.records() {
        out.push_str(&r.presentation());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordData;

    fn n(s: &str) -> Fqdn {
        s.parse().unwrap()
    }

    #[test]
    fn catch_all_matches_table1() {
        let z = Zone::catch_all(&n("exampel.com"), Ipv4Addr::new(1, 1, 1, 1), 300);
        assert_eq!(z.records().len(), 4);
        let listing = table1_listing(&z);
        assert!(listing.contains("*.exampel.com. 300 MX 1 exampel.com."));
        assert!(listing.contains("exampel.com. 300 A NA 1.1.1.1"));
    }

    #[test]
    fn apex_lookup_uses_exact_records() {
        let z = Zone::catch_all(&n("exampel.com"), Ipv4Addr::new(1, 1, 1, 1), 300);
        let mx = z.lookup(&n("exampel.com"), RecordType::Mx);
        assert_eq!(mx.len(), 1);
        assert!(!mx[0].name.is_wildcard());
    }

    #[test]
    fn subdomain_lookup_uses_wildcard() {
        let z = Zone::catch_all(&n("exampel.com"), Ipv4Addr::new(1, 1, 1, 1), 300);
        // Any subdomain, any depth: the study collects typos sent to any
        // subdomain of its registered domains.
        for sub in [
            "smtp.exampel.com",
            "mail.smtp.exampel.com",
            "xyz.exampel.com",
        ] {
            let mx = z.lookup(&n(sub), RecordType::Mx);
            assert_eq!(mx.len(), 1, "{sub}");
            assert!(mx[0].name.is_wildcard());
            let a = z.lookup(&n(sub), RecordType::A);
            assert_eq!(a.len(), 1, "{sub}");
        }
    }

    #[test]
    fn exact_node_shadows_wildcard() {
        // RFC 4592: a record of any type at the exact name blocks wildcard
        // synthesis for all types.
        let mut z = Zone::catch_all(&n("exampel.com"), Ipv4Addr::new(1, 1, 1, 1), 300);
        z.add(ResourceRecord::a(
            "www.exampel.com",
            300,
            Ipv4Addr::new(2, 2, 2, 2),
        ));
        let mx = z.lookup(&n("www.exampel.com"), RecordType::Mx);
        assert!(mx.is_empty(), "exact A node must shadow the wildcard MX");
        let a = z.lookup(&n("www.exampel.com"), RecordType::A);
        assert_eq!(a[0].data, RecordData::A(Ipv4Addr::new(2, 2, 2, 2)));
    }

    #[test]
    fn parked_zone_has_no_mx() {
        let z = Zone::parked(&n("parked.com"), Ipv4Addr::new(9, 9, 9, 9), 300);
        assert!(z.lookup(&n("parked.com"), RecordType::Mx).is_empty());
        assert_eq!(z.lookup(&n("parked.com"), RecordType::A).len(), 1);
    }

    #[test]
    fn hosted_mail_zone() {
        let z = Zone::hosted_mail(&n("typo.com"), &n("mx1.b-io.co"), None, 300);
        let mx = z.lookup(&n("typo.com"), RecordType::Mx);
        assert_eq!(mx.len(), 1);
        match &mx[0].data {
            RecordData::Mx { exchange, .. } => assert_eq!(exchange, &n("mx1.b-io.co")),
            _ => panic!("not MX"),
        }
        assert!(z.lookup(&n("typo.com"), RecordType::A).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn foreign_record_rejected() {
        let mut z = Zone::new(n("a.com"));
        z.add(ResourceRecord::a("b.com", 300, Ipv4Addr::new(1, 1, 1, 1)));
    }

    #[test]
    fn contains_checks_suffix() {
        let z = Zone::new(n("exampel.com"));
        assert!(z.contains(&n("exampel.com")));
        assert!(z.contains(&n("deep.sub.exampel.com")));
        assert!(!z.contains(&n("example.com")));
    }
}
