//! Resource records: the types the study touches.

use crate::name::Fqdn;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Record types, with their RFC 1035 type codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecordType {
    /// IPv4 address.
    A,
    /// Authoritative name server.
    Ns,
    /// Canonical name alias.
    Cname,
    /// Start of authority.
    Soa,
    /// Mail exchange.
    Mx,
    /// Free-form text.
    Txt,
}

impl RecordType {
    /// RFC 1035 TYPE code.
    pub fn code(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
        }
    }

    /// Parses an RFC 1035 TYPE code.
    pub fn from_code(code: u16) -> Option<RecordType> {
        Some(match code {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            _ => return None,
        })
    }
}

impl fmt::Display for RecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RecordType::A => "A",
            RecordType::Ns => "NS",
            RecordType::Cname => "CNAME",
            RecordType::Soa => "SOA",
            RecordType::Mx => "MX",
            RecordType::Txt => "TXT",
        };
        f.write_str(s)
    }
}

/// Typed record data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordData {
    /// IPv4 address.
    A(Ipv4Addr),
    /// Name server host.
    Ns(Fqdn),
    /// Alias target.
    Cname(Fqdn),
    /// Start of authority (primary NS, responsible mailbox, serial).
    Soa {
        /// Primary name server.
        mname: Fqdn,
        /// Responsible mailbox (dots for @).
        rname: Fqdn,
        /// Zone serial.
        serial: u32,
    },
    /// Mail exchange: preference then host.
    Mx {
        /// Preference (lower is tried first).
        preference: u16,
        /// Mail server host name.
        exchange: Fqdn,
    },
    /// Text record.
    Txt(String),
}

impl RecordData {
    /// The record type of this data.
    pub fn record_type(&self) -> RecordType {
        match self {
            RecordData::A(_) => RecordType::A,
            RecordData::Ns(_) => RecordType::Ns,
            RecordData::Cname(_) => RecordType::Cname,
            RecordData::Soa { .. } => RecordType::Soa,
            RecordData::Mx { .. } => RecordType::Mx,
            RecordData::Txt(_) => RecordType::Txt,
        }
    }
}

/// A resource record: owner name, TTL, typed data.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// Owner name (may be a wildcard like `*.exampel.com`).
    pub name: Fqdn,
    /// Time to live, seconds. Table 1 uses 300.
    pub ttl: u32,
    /// Typed payload.
    pub data: RecordData,
}

impl ResourceRecord {
    /// Creates a record.
    pub fn new(name: Fqdn, ttl: u32, data: RecordData) -> Self {
        ResourceRecord { name, ttl, data }
    }

    /// Shorthand for an A record.
    pub fn a(name: &str, ttl: u32, addr: Ipv4Addr) -> Self {
        ResourceRecord::new(name.parse().expect("valid name"), ttl, RecordData::A(addr))
    }

    /// Shorthand for an MX record.
    pub fn mx(name: &str, ttl: u32, preference: u16, exchange: &str) -> Self {
        ResourceRecord::new(
            name.parse().expect("valid name"),
            ttl,
            RecordData::Mx {
                preference,
                exchange: exchange.parse().expect("valid exchange"),
            },
        )
    }

    /// Shorthand for an NS record.
    pub fn ns(name: &str, ttl: u32, host: &str) -> Self {
        ResourceRecord::new(
            name.parse().expect("valid name"),
            ttl,
            RecordData::Ns(host.parse().expect("valid host")),
        )
    }

    /// The record type.
    pub fn record_type(&self) -> RecordType {
        self.data.record_type()
    }

    /// Zone-file-style presentation, as in Table 1:
    /// `*.exampel.com.  300  MX  1  exampel.com.`
    pub fn presentation(&self) -> String {
        let rdata = match &self.data {
            RecordData::A(ip) => format!("NA {ip}"),
            RecordData::Ns(h) => format!("NA {h}."),
            RecordData::Cname(h) => format!("NA {h}."),
            RecordData::Soa {
                mname,
                rname,
                serial,
            } => {
                format!("NA {mname}. {rname}. {serial}")
            }
            RecordData::Mx {
                preference,
                exchange,
            } => format!("{preference} {exchange}."),
            RecordData::Txt(t) => format!("NA \"{t}\""),
        };
        format!(
            "{}. {} {} {}",
            self.name,
            self.ttl,
            self.record_type(),
            rdata
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_round_trip() {
        for t in [
            RecordType::A,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Soa,
            RecordType::Mx,
            RecordType::Txt,
        ] {
            assert_eq!(RecordType::from_code(t.code()), Some(t));
        }
        assert_eq!(RecordType::from_code(999), None);
    }

    #[test]
    fn data_knows_its_type() {
        assert_eq!(
            RecordData::A(Ipv4Addr::new(1, 1, 1, 1)).record_type(),
            RecordType::A
        );
        assert_eq!(
            RecordData::Mx {
                preference: 1,
                exchange: "exampel.com".parse().unwrap()
            }
            .record_type(),
            RecordType::Mx
        );
    }

    #[test]
    fn table1_presentation() {
        // Table 1's four rows for an example typo domain.
        let rows = [
            ResourceRecord::mx("*.exampel.com", 300, 1, "exampel.com"),
            ResourceRecord::mx("exampel.com", 300, 1, "exampel.com"),
            ResourceRecord::a("*.exampel.com", 300, Ipv4Addr::new(1, 1, 1, 1)),
            ResourceRecord::a("exampel.com", 300, Ipv4Addr::new(1, 1, 1, 1)),
        ];
        assert_eq!(
            rows[0].presentation(),
            "*.exampel.com. 300 MX 1 exampel.com."
        );
        assert_eq!(rows[2].presentation(), "*.exampel.com. 300 A NA 1.1.1.1");
    }
}
