//! Resolution against the registry, including RFC 5321 mail routing.
//!
//! The resolver answers A/MX/NS/TXT queries from the zones published in a
//! [`Registry`], and implements the mail-specific rule of RFC 5321 §5.1
//! that the study's scan relies on: *"in the absence of an MX record, the
//! A record of the domain name should be used as the mail server's
//! address"* (an "implicit MX").

use crate::name::Fqdn;
use crate::record::{RecordData, RecordType};
use crate::registry::Registry;
use crate::wire::{DnsMessage, Rcode};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Where mail for a domain should be delivered.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MailTarget {
    /// Explicit MX records, sorted by preference (then name, for
    /// determinism); each resolved to an address when possible.
    Mx(Vec<MxTarget>),
    /// No MX record; RFC 5321 implicit MX via the A record.
    ImplicitA(Ipv4Addr),
    /// Neither MX nor A — the domain cannot receive mail
    /// (Table 4's "No MX or A record found").
    Unreachable,
    /// The domain is not registered at all.
    NxDomain,
}

/// One resolved MX target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MxTarget {
    /// Preference (lower first).
    pub preference: u16,
    /// Exchange host name.
    pub exchange: Fqdn,
    /// The exchange's address, if its A record resolves.
    pub address: Option<Ipv4Addr>,
}

/// A resolver bound to a registry.
#[derive(Debug, Clone)]
pub struct Resolver {
    registry: Registry,
}

impl Resolver {
    /// Creates a resolver over `registry`.
    pub fn new(registry: Registry) -> Self {
        Resolver { registry }
    }

    /// The registrable zone a name falls under, if registered.
    fn zone_for(&self, name: &Fqdn) -> Option<crate::zone::Zone> {
        // Walk up: the zone cut in this simulation is always at the
        // registrable (two-label) boundary, but checking each ancestor
        // keeps deeper delegations possible.
        let mut cur = name.clone();
        loop {
            if let Some(z) = self.registry.zone(&cur) {
                return Some(z);
            }
            if cur.label_count() <= 2 {
                return None;
            }
            cur = cur.parent();
        }
    }

    /// Looks up all records of `rtype` at `name`. `None` means NXDOMAIN
    /// (no zone); an empty vec means the zone exists but has no data.
    pub fn lookup(&self, name: &Fqdn, rtype: RecordType) -> Option<Vec<RecordData>> {
        let zone = self.zone_for(name)?;
        Some(
            zone.lookup(name, rtype)
                .into_iter()
                .map(|r| r.data.clone())
                .collect(),
        )
    }

    /// Resolves the A record of `name` (first address).
    pub fn resolve_a(&self, name: &Fqdn) -> Option<Ipv4Addr> {
        self.lookup(name, RecordType::A)?
            .into_iter()
            .find_map(|d| match d {
                RecordData::A(ip) => Some(ip),
                _ => None,
            })
    }

    /// RFC 5321 mail routing for `domain`.
    pub fn resolve_mail(&self, domain: &Fqdn) -> MailTarget {
        let Some(records) = self.lookup(domain, RecordType::Mx) else {
            return MailTarget::NxDomain;
        };
        let mut mxs: Vec<MxTarget> = records
            .into_iter()
            .filter_map(|d| match d {
                RecordData::Mx {
                    preference,
                    exchange,
                } => Some(MxTarget {
                    preference,
                    address: self.resolve_a(&exchange),
                    exchange,
                }),
                _ => None,
            })
            .collect();
        if mxs.is_empty() {
            return match self.resolve_a(domain) {
                Some(ip) => MailTarget::ImplicitA(ip),
                None => MailTarget::Unreachable,
            };
        }
        mxs.sort_by(|a, b| {
            a.preference
                .cmp(&b.preference)
                .then_with(|| a.exchange.cmp(&b.exchange))
        });
        MailTarget::Mx(mxs)
    }

    /// The best delivery address for `domain`, if any: first MX with an
    /// address, else the implicit A.
    pub fn mail_address(&self, domain: &Fqdn) -> Option<Ipv4Addr> {
        match self.resolve_mail(domain) {
            MailTarget::Mx(mxs) => mxs.into_iter().find_map(|m| m.address),
            MailTarget::ImplicitA(ip) => Some(ip),
            _ => None,
        }
    }

    /// The mail-exchange *domain* used for the concentration analyses
    /// (Table 6 / Figure 8): the registrable suffix of the first MX host,
    /// or of the domain itself under implicit-A routing, or `None` when
    /// unreachable. When the first MX host has no registrable suffix the
    /// host name itself is returned.
    pub fn mx_domain(&self, domain: &Fqdn) -> Option<Fqdn> {
        match self.resolve_mail(domain) {
            MailTarget::Mx(mxs) => {
                let first = mxs.first()?;
                Some(
                    first
                        .exchange
                        .registrable()
                        .unwrap_or_else(|| first.exchange.clone()),
                )
            }
            MailTarget::ImplicitA(_) => {
                Some(domain.registrable().unwrap_or_else(|| domain.clone()))
            }
            _ => None,
        }
    }

    /// Serves a wire-format query, the way the simulated authoritative
    /// server answers the scanner.
    pub fn serve(&self, query: &DnsMessage) -> DnsMessage {
        let Some(q) = query.questions.first() else {
            return DnsMessage::response_to(query, Rcode::FormErr);
        };
        match self.lookup(&q.name, q.qtype) {
            None => DnsMessage::response_to(query, Rcode::NxDomain),
            Some(records) => {
                let mut resp = DnsMessage::response_to(query, Rcode::NoError);
                for data in records {
                    resp.answers.push(crate::record::ResourceRecord {
                        name: q.name.clone(),
                        ttl: 300,
                        data,
                    });
                }
                resp
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registration;
    use crate::whois::WhoisRecord;
    use crate::zone::Zone;

    fn n(s: &str) -> Fqdn {
        s.parse().unwrap()
    }

    fn setup() -> (Registry, Resolver) {
        let registry = Registry::new();
        let reg = |d: &str| Registration {
            domain: n(d),
            registrar: "r".into(),
            whois: WhoisRecord::default(),
            privacy_proxy: None,
            nameservers: vec![n("ns1.x.com")],
            created_day: 0,
        };
        // catch-all typo domain
        registry.register(
            reg("gmial.com"),
            Some(Zone::catch_all(
                &n("gmial.com"),
                Ipv4Addr::new(10, 0, 0, 1),
                300,
            )),
        );
        // parked: A only
        registry.register(
            reg("parked.com"),
            Some(Zone::parked(
                &n("parked.com"),
                Ipv4Addr::new(10, 0, 0, 2),
                300,
            )),
        );
        // hosted mail via external MX; the MX host itself registered with an A
        registry.register(
            reg("hosted.com"),
            Some(Zone::hosted_mail(
                &n("hosted.com"),
                &n("mx1.b-io.co"),
                None,
                300,
            )),
        );
        registry.register(reg("b-io.co"), {
            let mut z = Zone::new(n("b-io.co"));
            z.add(crate::record::ResourceRecord::a(
                "mx1.b-io.co",
                300,
                Ipv4Addr::new(10, 0, 0, 3),
            ));
            Some(z)
        });
        // registered, no zone at all ("no info")
        registry.register(reg("noinfo.com"), None);
        let resolver = Resolver::new(registry.clone());
        (registry, resolver)
    }

    #[test]
    fn explicit_mx_wins() {
        let (_, r) = setup();
        match r.resolve_mail(&n("gmial.com")) {
            MailTarget::Mx(mxs) => {
                assert_eq!(mxs.len(), 1);
                assert_eq!(mxs[0].exchange, n("gmial.com"));
                assert_eq!(mxs[0].address, Some(Ipv4Addr::new(10, 0, 0, 1)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wildcard_subdomain_mail_routes() {
        let (_, r) = setup();
        // smtp typo: mail sent to any subdomain of the typo domain
        match r.resolve_mail(&n("smtp.gmial.com")) {
            MailTarget::Mx(mxs) => assert_eq!(mxs[0].address, Some(Ipv4Addr::new(10, 0, 0, 1))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn implicit_a_fallback() {
        let (_, r) = setup();
        assert_eq!(
            r.resolve_mail(&n("parked.com")),
            MailTarget::ImplicitA(Ipv4Addr::new(10, 0, 0, 2))
        );
        assert_eq!(
            r.mail_address(&n("parked.com")),
            Some(Ipv4Addr::new(10, 0, 0, 2))
        );
    }

    #[test]
    fn nxdomain_and_unreachable() {
        let (_, r) = setup();
        assert_eq!(r.resolve_mail(&n("unregistered.com")), MailTarget::NxDomain);
        // registered with no zone: looks like NXDOMAIN to the resolver
        assert_eq!(r.resolve_mail(&n("noinfo.com")), MailTarget::NxDomain);
    }

    #[test]
    fn unreachable_when_zone_has_neither() {
        let registry = Registry::new();
        registry.register(
            Registration {
                domain: n("empty.com"),
                registrar: "r".into(),
                whois: WhoisRecord::default(),
                privacy_proxy: None,
                nameservers: vec![],
                created_day: 0,
            },
            Some(Zone::new(n("empty.com"))),
        );
        let r = Resolver::new(registry);
        assert_eq!(r.resolve_mail(&n("empty.com")), MailTarget::Unreachable);
    }

    #[test]
    fn hosted_mail_resolves_through_provider() {
        let (_, r) = setup();
        match r.resolve_mail(&n("hosted.com")) {
            MailTarget::Mx(mxs) => {
                assert_eq!(mxs[0].exchange, n("mx1.b-io.co"));
                assert_eq!(mxs[0].address, Some(Ipv4Addr::new(10, 0, 0, 3)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.mx_domain(&n("hosted.com")), Some(n("b-io.co")));
        assert_eq!(r.mx_domain(&n("parked.com")), Some(n("parked.com")));
        assert_eq!(r.mx_domain(&n("unregistered.com")), None);
    }

    #[test]
    fn mx_sorting_by_preference() {
        let registry = Registry::new();
        let mut z = Zone::new(n("multi.com"));
        z.add(crate::record::ResourceRecord::mx(
            "multi.com",
            300,
            20,
            "backup.multi.com",
        ));
        z.add(crate::record::ResourceRecord::mx(
            "multi.com",
            300,
            10,
            "primary.multi.com",
        ));
        z.add(crate::record::ResourceRecord::a(
            "primary.multi.com",
            300,
            Ipv4Addr::new(1, 1, 1, 1),
        ));
        registry.register(
            Registration {
                domain: n("multi.com"),
                registrar: "r".into(),
                whois: WhoisRecord::default(),
                privacy_proxy: None,
                nameservers: vec![],
                created_day: 0,
            },
            Some(z),
        );
        let r = Resolver::new(registry);
        match r.resolve_mail(&n("multi.com")) {
            MailTarget::Mx(mxs) => {
                assert_eq!(mxs[0].exchange, n("primary.multi.com"));
                assert_eq!(mxs[1].exchange, n("backup.multi.com"));
                assert_eq!(mxs[1].address, None);
                assert_eq!(
                    r.mail_address(&n("multi.com")),
                    Some(Ipv4Addr::new(1, 1, 1, 1))
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wire_level_service() {
        let (_, r) = setup();
        let q = DnsMessage::query(77, n("gmial.com"), RecordType::Mx);
        let resp = r.serve(&q);
        assert_eq!(resp.id, 77);
        assert!(resp.is_response);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.answers.len(), 1);
        let nx = r.serve(&DnsMessage::query(78, n("nope.com"), RecordType::A));
        assert_eq!(nx.rcode, Rcode::NxDomain);
        // full wire round trip
        let wire = crate::wire::encode(&resp);
        assert_eq!(crate::wire::decode(&wire).unwrap(), resp);
    }
}
