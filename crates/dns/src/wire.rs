//! RFC 1035 wire-format codec.
//!
//! Encodes and decodes DNS messages — header, question, resource records —
//! including name compression on encode and pointer-chasing (with loop
//! protection) on decode. The simulated resolver does not *need* a wire
//! format to function, but the study's scanning methodology (§5.1: MX/A
//! lookups over millions of ctypos) is reproduced faithfully down to the
//! packet level so the scan benchmarks measure real protocol work.

use crate::name::Fqdn;
use crate::record::{RecordData, RecordType, ResourceRecord};
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Maximum compression-pointer hops tolerated while decoding one name.
const MAX_POINTER_HOPS: usize = 32;

/// DNS opcode (only QUERY is used).
pub const OPCODE_QUERY: u8 = 0;

/// Response codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist (authoritative).
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Query refused.
    Refused,
}

impl Rcode {
    /// 4-bit wire value.
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
        }
    }

    /// Parses the 4-bit wire value.
    pub fn from_code(code: u8) -> Option<Rcode> {
        Some(match code {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            _ => return None,
        })
    }
}

/// A question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name.
    pub name: Fqdn,
    /// Queried type.
    pub qtype: RecordType,
}

/// A DNS message (header flags reduced to the ones the study exercises).
#[derive(Debug, Clone, PartialEq)]
pub struct DnsMessage {
    /// Transaction ID.
    pub id: u16,
    /// Response flag (QR).
    pub is_response: bool,
    /// Authoritative answer flag (AA).
    pub authoritative: bool,
    /// Recursion desired (RD).
    pub recursion_desired: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authority: Vec<ResourceRecord>,
}

impl DnsMessage {
    /// Builds a query for one (name, type).
    pub fn query(id: u16, name: Fqdn, qtype: RecordType) -> DnsMessage {
        DnsMessage {
            id,
            is_response: false,
            authoritative: false,
            recursion_desired: true,
            rcode: Rcode::NoError,
            questions: vec![Question { name, qtype }],
            answers: Vec::new(),
            authority: Vec::new(),
        }
    }

    /// Builds a response skeleton echoing a query.
    pub fn response_to(query: &DnsMessage, rcode: Rcode) -> DnsMessage {
        DnsMessage {
            id: query.id,
            is_response: true,
            authoritative: true,
            recursion_desired: query.recursion_desired,
            rcode,
            questions: query.questions.clone(),
            answers: Vec::new(),
            authority: Vec::new(),
        }
    }
}

/// Errors from [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Message shorter than its own structure claims.
    Truncated,
    /// A label length byte used the reserved 0x80/0x40 prefixes.
    BadLabelType(u8),
    /// Compression pointers formed a loop (or chain beyond the hop limit).
    PointerLoop,
    /// A pointer referenced data at or beyond its own position.
    ForwardPointer,
    /// Unknown record type in a section that must be understood.
    UnknownType(u16),
    /// Unknown class (only IN is supported).
    UnknownClass(u16),
    /// A decoded name failed validation.
    BadName,
    /// RDLENGTH disagreed with the actual RDATA size.
    BadRdLength,
    /// Unknown RCODE bits.
    BadRcode(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::BadLabelType(b) => write!(f, "reserved label type byte {b:#x}"),
            WireError::PointerLoop => write!(f, "compression pointer loop"),
            WireError::ForwardPointer => write!(f, "forward compression pointer"),
            WireError::UnknownType(t) => write!(f, "unknown record type {t}"),
            WireError::UnknownClass(c) => write!(f, "unknown class {c}"),
            WireError::BadName => write!(f, "invalid name"),
            WireError::BadRdLength => write!(f, "rdlength mismatch"),
            WireError::BadRcode(c) => write!(f, "unknown rcode {c}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a message, compressing names against earlier occurrences.
pub fn encode(msg: &DnsMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(512);
    let mut compress: HashMap<String, u16> = HashMap::new();
    buf.put_u16(msg.id);
    let mut flags: u16 = 0;
    if msg.is_response {
        flags |= 0x8000;
    }
    flags |= (OPCODE_QUERY as u16) << 11;
    if msg.authoritative {
        flags |= 0x0400;
    }
    if msg.recursion_desired {
        flags |= 0x0100;
    }
    flags |= msg.rcode.code() as u16;
    buf.put_u16(flags);
    buf.put_u16(msg.questions.len() as u16);
    buf.put_u16(msg.answers.len() as u16);
    buf.put_u16(msg.authority.len() as u16);
    buf.put_u16(0); // no additional section
    for q in &msg.questions {
        encode_name(&mut buf, &q.name, &mut compress);
        buf.put_u16(q.qtype.code());
        buf.put_u16(1); // class IN
    }
    for rr in msg.answers.iter().chain(msg.authority.iter()) {
        encode_rr(&mut buf, rr, &mut compress);
    }
    buf.freeze()
}

fn encode_rr(buf: &mut BytesMut, rr: &ResourceRecord, compress: &mut HashMap<String, u16>) {
    encode_name(buf, &rr.name, compress);
    buf.put_u16(rr.record_type().code());
    buf.put_u16(1); // class IN
    buf.put_u32(rr.ttl);
    let len_pos = buf.len();
    buf.put_u16(0); // placeholder
    let start = buf.len();
    match &rr.data {
        RecordData::A(ip) => buf.put_slice(&ip.octets()),
        RecordData::Ns(h) | RecordData::Cname(h) => encode_name(buf, h, compress),
        RecordData::Soa {
            mname,
            rname,
            serial,
        } => {
            encode_name(buf, mname, compress);
            encode_name(buf, rname, compress);
            buf.put_u32(*serial);
            // refresh/retry/expire/minimum fixed for the simulation
            buf.put_u32(3600);
            buf.put_u32(600);
            buf.put_u32(86_400);
            buf.put_u32(300);
        }
        RecordData::Mx {
            preference,
            exchange,
        } => {
            buf.put_u16(*preference);
            encode_name(buf, exchange, compress);
        }
        RecordData::Txt(t) => {
            for chunk in t.as_bytes().chunks(255) {
                buf.put_u8(chunk.len() as u8);
                buf.put_slice(chunk);
            }
            if t.is_empty() {
                buf.put_u8(0);
            }
        }
    }
    let rdlen = (buf.len() - start) as u16;
    buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
}

/// Encodes a name with compression: each suffix already emitted is replaced
/// by a pointer.
fn encode_name(buf: &mut BytesMut, name: &Fqdn, compress: &mut HashMap<String, u16>) {
    let labels: Vec<&str> = name.labels().collect();
    for i in 0..labels.len() {
        let suffix = labels[i..].join(".");
        if let Some(&off) = compress.get(&suffix) {
            buf.put_u16(0xC000 | off);
            return;
        }
        if buf.len() <= 0x3FFF {
            compress.insert(suffix, buf.len() as u16);
        }
        let label = labels[i];
        buf.put_u8(label.len() as u8);
        buf.put_slice(label.as_bytes());
    }
    buf.put_u8(0);
}

fn read_u16(data: &[u8], pos: &mut usize) -> Result<u16, WireError> {
    if *pos + 2 > data.len() {
        return Err(WireError::Truncated);
    }
    let v = u16::from_be_bytes([data[*pos], data[*pos + 1]]);
    *pos += 2;
    Ok(v)
}

/// Decodes a message.
pub fn decode(data: &[u8]) -> Result<DnsMessage, WireError> {
    let mut pos = 0usize;
    let id = read_u16(data, &mut pos)?;
    let flags = read_u16(data, &mut pos)?;
    let qd = read_u16(data, &mut pos)?;
    let an = read_u16(data, &mut pos)?;
    let ns = read_u16(data, &mut pos)?;
    let _ar = read_u16(data, &mut pos)?;
    let rcode =
        Rcode::from_code((flags & 0xF) as u8).ok_or(WireError::BadRcode((flags & 0xF) as u8))?;
    let mut msg = DnsMessage {
        id,
        is_response: flags & 0x8000 != 0,
        authoritative: flags & 0x0400 != 0,
        recursion_desired: flags & 0x0100 != 0,
        rcode,
        questions: Vec::new(),
        answers: Vec::new(),
        authority: Vec::new(),
    };
    for _ in 0..qd {
        let (name, new_pos) = decode_name(data, pos)?;
        pos = new_pos;
        let qtype = read_u16(data, &mut pos)?;
        let class = read_u16(data, &mut pos)?;
        if class != 1 {
            return Err(WireError::UnknownClass(class));
        }
        msg.questions.push(Question {
            name,
            qtype: RecordType::from_code(qtype).ok_or(WireError::UnknownType(qtype))?,
        });
    }
    for section in 0..2 {
        let count = if section == 0 { an } else { ns };
        for _ in 0..count {
            let (rr, new_pos) = decode_rr(data, pos)?;
            pos = new_pos;
            if section == 0 {
                msg.answers.push(rr);
            } else {
                msg.authority.push(rr);
            }
        }
    }
    Ok(msg)
}

fn decode_rr(data: &[u8], mut pos: usize) -> Result<(ResourceRecord, usize), WireError> {
    let (name, p) = decode_name(data, pos)?;
    pos = p;
    if pos + 10 > data.len() {
        return Err(WireError::Truncated);
    }
    let rtype = u16::from_be_bytes(data[pos..pos + 2].try_into().unwrap());
    let class = u16::from_be_bytes(data[pos + 2..pos + 4].try_into().unwrap());
    let ttl = u32::from_be_bytes(data[pos + 4..pos + 8].try_into().unwrap());
    let rdlen = u16::from_be_bytes(data[pos + 8..pos + 10].try_into().unwrap()) as usize;
    pos += 10;
    if class != 1 {
        return Err(WireError::UnknownClass(class));
    }
    if pos + rdlen > data.len() {
        return Err(WireError::Truncated);
    }
    let rd_end = pos + rdlen;
    let rtype = RecordType::from_code(rtype).ok_or(WireError::UnknownType(rtype))?;
    let record_data = match rtype {
        RecordType::A => {
            if rdlen != 4 {
                return Err(WireError::BadRdLength);
            }
            RecordData::A(Ipv4Addr::new(
                data[pos],
                data[pos + 1],
                data[pos + 2],
                data[pos + 3],
            ))
        }
        RecordType::Ns => {
            let (h, p) = decode_name(data, pos)?;
            if p != rd_end {
                return Err(WireError::BadRdLength);
            }
            RecordData::Ns(h)
        }
        RecordType::Cname => {
            let (h, p) = decode_name(data, pos)?;
            if p != rd_end {
                return Err(WireError::BadRdLength);
            }
            RecordData::Cname(h)
        }
        RecordType::Soa => {
            let (mname, p1) = decode_name(data, pos)?;
            let (rname, p2) = decode_name(data, p1)?;
            if p2 + 20 != rd_end {
                return Err(WireError::BadRdLength);
            }
            let serial = u32::from_be_bytes(data[p2..p2 + 4].try_into().unwrap());
            RecordData::Soa {
                mname,
                rname,
                serial,
            }
        }
        RecordType::Mx => {
            if rdlen < 3 {
                return Err(WireError::BadRdLength);
            }
            let preference = u16::from_be_bytes(data[pos..pos + 2].try_into().unwrap());
            let (exchange, p) = decode_name(data, pos + 2)?;
            if p != rd_end {
                return Err(WireError::BadRdLength);
            }
            RecordData::Mx {
                preference,
                exchange,
            }
        }
        RecordType::Txt => {
            let mut text = String::new();
            let mut tp = pos;
            while tp < rd_end {
                let l = data[tp] as usize;
                tp += 1;
                if tp + l > rd_end {
                    return Err(WireError::BadRdLength);
                }
                text.push_str(&String::from_utf8_lossy(&data[tp..tp + l]));
                tp += l;
            }
            RecordData::Txt(text)
        }
    };
    Ok((
        ResourceRecord {
            name,
            ttl,
            data: record_data,
        },
        rd_end,
    ))
}

/// Decodes a (possibly compressed) name starting at `pos`; returns the name
/// and the position just past its in-place representation.
fn decode_name(data: &[u8], start: usize) -> Result<(Fqdn, usize), WireError> {
    let mut labels: Vec<String> = Vec::new();
    let mut pos = start;
    let mut after: Option<usize> = None;
    let mut hops = 0usize;
    loop {
        if pos >= data.len() {
            return Err(WireError::Truncated);
        }
        let len = data[pos];
        match len & 0xC0 {
            0x00 => {
                if len == 0 {
                    pos += 1;
                    break;
                }
                let l = len as usize;
                if pos + 1 + l > data.len() {
                    return Err(WireError::Truncated);
                }
                let label = std::str::from_utf8(&data[pos + 1..pos + 1 + l])
                    .map_err(|_| WireError::BadName)?;
                labels.push(label.to_ascii_lowercase());
                pos += 1 + l;
            }
            0xC0 => {
                if pos + 2 > data.len() {
                    return Err(WireError::Truncated);
                }
                let target = (u16::from_be_bytes([data[pos] & 0x3F, data[pos + 1]])) as usize;
                if target >= pos {
                    return Err(WireError::ForwardPointer);
                }
                if after.is_none() {
                    after = Some(pos + 2);
                }
                hops += 1;
                if hops > MAX_POINTER_HOPS {
                    return Err(WireError::PointerLoop);
                }
                pos = target;
            }
            other => return Err(WireError::BadLabelType(other)),
        }
    }
    let name = Fqdn::parse(&labels.join(".")).map_err(|_| WireError::BadName)?;
    Ok((name, after.unwrap_or(pos)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(s: &str) -> Fqdn {
        s.parse().unwrap()
    }

    fn sample_response() -> DnsMessage {
        let q = DnsMessage::query(0x1234, n("smtp.exampel.com"), RecordType::Mx);
        let mut resp = DnsMessage::response_to(&q, Rcode::NoError);
        resp.answers.push(ResourceRecord::mx(
            "smtp.exampel.com",
            300,
            1,
            "exampel.com",
        ));
        resp.answers.push(ResourceRecord::a(
            "exampel.com",
            300,
            Ipv4Addr::new(1, 1, 1, 1),
        ));
        resp.authority
            .push(ResourceRecord::ns("exampel.com", 300, "ns1.exampel.com"));
        resp
    }

    #[test]
    fn query_round_trip() {
        let q = DnsMessage::query(42, n("gmial.com"), RecordType::A);
        let wire = encode(&q);
        let back = decode(&wire).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn response_round_trip() {
        let resp = sample_response();
        let wire = encode(&resp);
        let back = decode(&wire).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn compression_shrinks_repeated_suffixes() {
        let resp = sample_response();
        let compressed = encode(&resp);
        // Upper bound: sum of uncompressed name lengths + fixed fields.
        // The shared "exampel.com" suffix appears 5 times; compression must
        // save at least 3 pointer substitutions (11 bytes saved each).
        let mut uncompressed = 12usize; // header
        uncompressed += n("smtp.exampel.com").wire_len() + 4;
        uncompressed += n("smtp.exampel.com").wire_len() + 10 + 2 + n("exampel.com").wire_len();
        uncompressed += n("exampel.com").wire_len() + 10 + 4;
        uncompressed += n("exampel.com").wire_len() + 10 + n("ns1.exampel.com").wire_len();
        assert!(
            compressed.len() + 20 < uncompressed,
            "compressed {} vs uncompressed {}",
            compressed.len(),
            uncompressed
        );
    }

    #[test]
    fn all_record_types_round_trip() {
        let q = DnsMessage::query(7, n("x.com"), RecordType::Txt);
        let mut resp = DnsMessage::response_to(&q, Rcode::NoError);
        resp.answers.push(ResourceRecord::new(
            n("x.com"),
            60,
            RecordData::Txt("v=spf1 -all".to_owned()),
        ));
        resp.answers.push(ResourceRecord::new(
            n("x.com"),
            60,
            RecordData::Cname(n("y.com")),
        ));
        resp.answers.push(ResourceRecord::new(
            n("x.com"),
            60,
            RecordData::Soa {
                mname: n("ns1.x.com"),
                rname: n("hostmaster.x.com"),
                serial: 2016110501,
            },
        ));
        let back = decode(&encode(&resp)).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn nxdomain_round_trip() {
        let q = DnsMessage::query(9, n("unregistered-typo.com"), RecordType::Mx);
        let resp = DnsMessage::response_to(&q, Rcode::NxDomain);
        let back = decode(&encode(&resp)).unwrap();
        assert_eq!(back.rcode, Rcode::NxDomain);
        assert!(back.answers.is_empty());
    }

    #[test]
    fn truncated_input_errors() {
        let wire = encode(&sample_response());
        for cut in [0, 5, 11, 13, wire.len() - 1] {
            assert!(decode(&wire[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn pointer_loop_is_rejected() {
        // Hand-craft: header + a name that is a pointer to itself.
        let mut raw = vec![0u8; 12];
        raw[4] = 0;
        raw[5] = 1; // one question
                    // name at offset 12: pointer to offset 12 (forward/self)
        raw.extend_from_slice(&[0xC0, 12]);
        raw.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(decode(&raw).unwrap_err(), WireError::ForwardPointer);
    }

    #[test]
    fn legal_pointer_chains_decode() {
        // Craft: question name stored plainly; answer 1's owner is a
        // pointer to it; answer 2's owner is a pointer to answer 1's
        // pointer (a two-hop chain) -- legal per RFC 1035 since every hop
        // is strictly backward.
        let mut raw = vec![0u8; 12];
        raw[2] = 0x80; // response bit
        raw[5] = 1; // qdcount
        raw[7] = 2; // ancount
                    // question: "ab.cd" at offset 12
        raw.extend_from_slice(&[2, b'a', b'b', 2, b'c', b'd', 0]);
        raw.extend_from_slice(&[0, 1, 0, 1]); // A IN
                                              // answer 1: owner = pointer to offset 12
        let p1 = raw.len();
        raw.extend_from_slice(&[0xC0, 12]);
        raw.extend_from_slice(&[0, 1, 0, 1]); // A IN
        raw.extend_from_slice(&[0, 0, 1, 44]); // ttl 300
        raw.extend_from_slice(&[0, 4, 10, 0, 0, 1]); // rdlen 4, 10.0.0.1
                                                     // answer 2: owner = pointer to answer 1's pointer (two hops)
        raw.extend_from_slice(&[0xC0, p1 as u8]);
        raw.extend_from_slice(&[0, 1, 0, 1]); // A IN
        raw.extend_from_slice(&[0, 0, 1, 44]); // ttl 300
        raw.extend_from_slice(&[0, 4, 10, 0, 0, 2]); // rdlen 4, 10.0.0.2
        let msg = decode(&raw).expect("pointer chain is legal");
        assert_eq!(msg.answers.len(), 2);
        assert_eq!(msg.answers[0].name, n("ab.cd"));
        assert_eq!(msg.answers[1].name, n("ab.cd"));
        assert_eq!(
            msg.answers[1].data,
            RecordData::A(Ipv4Addr::new(10, 0, 0, 2))
        );
    }

    #[test]
    fn reserved_label_bits_rejected() {
        let mut raw = vec![0u8; 12];
        raw[4] = 0;
        raw[5] = 1;
        raw.push(0x80); // reserved label type
        assert_eq!(decode(&raw).unwrap_err(), WireError::BadLabelType(0x80));
    }

    #[test]
    fn long_txt_splits_into_chunks() {
        let big = "x".repeat(600);
        let q = DnsMessage::query(1, n("t.com"), RecordType::Txt);
        let mut resp = DnsMessage::response_to(&q, Rcode::NoError);
        resp.answers.push(ResourceRecord::new(
            n("t.com"),
            60,
            RecordData::Txt(big.clone()),
        ));
        let back = decode(&encode(&resp)).unwrap();
        match &back.answers[0].data {
            RecordData::Txt(t) => assert_eq!(t, &big),
            _ => panic!("not TXT"),
        }
    }

    proptest! {
        #[test]
        fn decoder_never_panics(data: Vec<u8>) {
            let _ = decode(&data);
        }

        #[test]
        fn arbitrary_queries_round_trip(
            id: u16,
            label_a in "[a-z]{1,20}",
            label_b in "[a-z]{1,20}",
        ) {
            let name = Fqdn::parse(&format!("{label_a}.{label_b}.com")).unwrap();
            let q = DnsMessage::query(id, name, RecordType::Mx);
            prop_assert_eq!(decode(&encode(&q)).unwrap(), q);
        }
    }
}
