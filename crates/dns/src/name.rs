//! Fully-qualified domain names for the DNS substrate.
//!
//! Unlike [`ets_core::DomainName`] (registrable names only), [`Fqdn`]
//! models anything DNS can name: single labels, deep subdomains, the root,
//! and wildcard owners (`*.exampel.com.`) as used in Table 1's zone setup.

use ets_core::DomainName;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// Errors from parsing an [`Fqdn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FqdnError {
    /// A label was empty (double dot).
    EmptyLabel,
    /// A label exceeded 63 octets.
    LabelTooLong(String),
    /// Total name exceeded 255 octets in wire form.
    NameTooLong,
    /// A label contained a byte outside letters/digits/hyphen/underscore
    /// (underscore is tolerated: service labels like `_dmarc` exist).
    BadCharacter(char),
    /// `*` appeared anywhere but as a whole leftmost label.
    BadWildcard,
}

impl fmt::Display for FqdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FqdnError::EmptyLabel => write!(f, "empty label"),
            FqdnError::LabelTooLong(l) => write!(f, "label `{l}` over 63 octets"),
            FqdnError::NameTooLong => write!(f, "name over 255 octets"),
            FqdnError::BadCharacter(c) => write!(f, "character `{c}` not allowed"),
            FqdnError::BadWildcard => write!(f, "wildcard must be the whole leftmost label"),
        }
    }
}

impl std::error::Error for FqdnError {}

/// A fully-qualified, lower-cased domain name. The root is the empty label
/// sequence.
///
/// Stored as one shared dotted string (no trailing dot; empty for the
/// root): cloning is a refcount bump and equality/hashing are a single
/// pass, which matters because the registry keys ~10⁶ registrations and
/// zones by name and every zone record carries its owner name. Ordering
/// stays label-wise (see the manual `Ord`), so sorted outputs are
/// identical to the old label-vector representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct Fqdn {
    name: Arc<str>,
}

impl Fqdn {
    /// The root name (`.`).
    pub fn root() -> Self {
        Fqdn {
            name: Arc::from(""),
        }
    }

    /// Parses a name; a trailing dot is accepted and ignored, `.` or the
    /// empty string denote the root.
    pub fn parse(input: &str) -> Result<Self, FqdnError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Ok(Fqdn::root());
        }
        let mut wire_len = 1usize; // root byte
        for (i, raw) in trimmed.split('.').enumerate() {
            if raw.is_empty() {
                return Err(FqdnError::EmptyLabel);
            }
            if raw.len() > 63 {
                return Err(FqdnError::LabelTooLong(raw.to_owned()));
            }
            if raw.contains('*') {
                if raw != "*" || i != 0 {
                    return Err(FqdnError::BadWildcard);
                }
            } else {
                for c in raw.chars() {
                    if !(c.is_ascii_alphanumeric() || c == '-' || c == '_') {
                        return Err(FqdnError::BadCharacter(c));
                    }
                }
            }
            wire_len += raw.len() + 1;
        }
        if wire_len > 255 {
            return Err(FqdnError::NameTooLong);
        }
        Ok(Fqdn {
            name: Arc::from(trimmed.to_ascii_lowercase()),
        })
    }

    /// The dotted form backing this name: no trailing dot, empty for the
    /// root (unlike [`fmt::Display`], which prints the root as `.`).
    pub fn as_str(&self) -> &str {
        &self.name
    }

    /// Labels left to right.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        // `"".split('.')` yields one empty label, so the root needs the
        // filter; valid names never contain empty labels.
        self.name.split('.').filter(|l| !l.is_empty())
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        if self.name.is_empty() {
            return 0;
        }
        self.name.as_bytes().iter().filter(|&&b| b == b'.').count() + 1
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.name.is_empty()
    }

    /// Whether the leftmost label is `*`.
    pub fn is_wildcard(&self) -> bool {
        &*self.name == "*" || self.name.starts_with("*.")
    }

    /// The name with its leftmost label removed (`a.b.c` → `b.c`;
    /// root stays root).
    pub fn parent(&self) -> Fqdn {
        match self.name.find('.') {
            Some(dot) => Fqdn {
                name: Arc::from(&self.name[dot + 1..]),
            },
            None => Fqdn::root(),
        }
    }

    /// Prepends a label (`x` + `b.c` → `x.b.c`).
    pub fn child(&self, label: &str) -> Result<Fqdn, FqdnError> {
        Fqdn::parse(&format!("{label}.{self}"))
    }

    /// The wildcard owner covering names below this one (`*.self`).
    /// Callers must not pass the root or an existing wildcard (the result
    /// would not be a valid name).
    pub fn wildcard(&self) -> Fqdn {
        debug_assert!(!self.is_root() && !self.is_wildcard());
        let mut s = String::with_capacity(self.name.len() + 2);
        s.push_str("*.");
        s.push_str(&self.name);
        Fqdn { name: Arc::from(s) }
    }

    /// Whether `self` equals `other` or is underneath it
    /// (`a.b.c` is within `b.c` and within `c`).
    pub fn is_within(&self, other: &Fqdn) -> bool {
        if other.name.is_empty() {
            return true; // everything is within the root
        }
        if other.name.len() > self.name.len() {
            return false;
        }
        if other.name.len() == self.name.len() {
            return self.name == other.name;
        }
        // A proper suffix counts only on a label boundary: `b.c` contains
        // `a.b.c` but not `ab.c`.
        self.name.ends_with(&*other.name)
            && self.name.as_bytes()[self.name.len() - other.name.len() - 1] == b'.'
    }

    /// Whether a wildcard owner name covers `name` (RFC 4592: `*.zone`
    /// matches any name at least one label below `zone`, but not `zone`
    /// itself). Non-wildcard owners match only exact names.
    pub fn matches(&self, name: &Fqdn) -> bool {
        if !self.is_wildcard() {
            return self == name;
        }
        let suffix = self.parent();
        name.label_count() > suffix.label_count() && name.is_within(&suffix)
    }

    /// Converts a registrable [`DomainName`] from `ets-core` — a single
    /// copy, no re-validation: a `DomainName` is by construction a
    /// lowercase dotted name within every `Fqdn` limit.
    pub fn from_domain(d: &DomainName) -> Fqdn {
        Fqdn {
            name: Arc::from(d.as_str()),
        }
    }

    /// Tries to view this name as a registrable two-label domain.
    pub fn to_domain(&self) -> Option<DomainName> {
        DomainName::parse(&self.to_string()).ok()
    }

    /// The registrable suffix (last two labels), if this name has one.
    pub fn registrable(&self) -> Option<Fqdn> {
        let last = self.name.rfind('.')?;
        let start = match self.name[..last].rfind('.') {
            Some(dot) => dot + 1,
            None => 0,
        };
        Some(Fqdn {
            name: Arc::from(&self.name[start..]),
        })
    }

    /// Wire-format length (sum of label length bytes + label bytes + root).
    pub fn wire_len(&self) -> usize {
        if self.name.is_empty() {
            1
        } else {
            // count byte per label + label bytes + root byte: the dotted
            // form is one byte short per label boundary, plus the root.
            self.name.len() + 2
        }
    }
}

impl fmt::Display for Fqdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            return f.write_str(".");
        }
        f.write_str(&self.name)
    }
}

// Ordering is label-wise, exactly as the former `Vec<String>` layout
// compared: `a.b` sorts before `a-x.b` because the first *labels* are
// `a` < `a-x`, even though byte-wise `-` < `.` would say otherwise.
// Sorted result files depend on this order.
impl Ord for Fqdn {
    fn cmp(&self, other: &Self) -> Ordering {
        self.labels().cmp(other.labels())
    }
}

impl PartialOrd for Fqdn {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl FromStr for Fqdn {
    type Err = FqdnError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Fqdn::parse(s)
    }
}

impl TryFrom<String> for Fqdn {
    type Error = FqdnError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        Fqdn::parse(&s)
    }
}

impl From<Fqdn> for String {
    fn from(f: Fqdn) -> String {
        f.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Fqdn {
        Fqdn::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("ExAmPeL.com.").to_string(), "exampel.com");
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n("").to_string(), ".");
        assert!(n(".").is_root());
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!(Fqdn::parse("a..b"), Err(FqdnError::EmptyLabel));
        assert!(matches!(
            Fqdn::parse("é.com"),
            Err(FqdnError::BadCharacter(_))
        ));
        let long = "a".repeat(64);
        assert!(matches!(
            Fqdn::parse(&format!("{long}.com")),
            Err(FqdnError::LabelTooLong(_))
        ));
    }

    #[test]
    fn underscore_labels_allowed() {
        assert_eq!(n("_dmarc.gmail.com").label_count(), 3);
    }

    #[test]
    fn wildcard_rules() {
        assert!(n("*.exampel.com").is_wildcard());
        assert_eq!(Fqdn::parse("a.*.com"), Err(FqdnError::BadWildcard));
        assert_eq!(Fqdn::parse("x*.com"), Err(FqdnError::BadWildcard));
    }

    #[test]
    fn wildcard_matching_rfc4592() {
        let wc = n("*.exampel.com");
        assert!(wc.matches(&n("mail.exampel.com")));
        assert!(wc.matches(&n("a.b.exampel.com")));
        assert!(
            !wc.matches(&n("exampel.com")),
            "wildcard must not match the zone apex"
        );
        assert!(!wc.matches(&n("other.com")));
        // exact owner matches only itself
        let exact = n("exampel.com");
        assert!(exact.matches(&n("exampel.com")));
        assert!(!exact.matches(&n("mail.exampel.com")));
    }

    #[test]
    fn parent_and_within() {
        assert_eq!(n("a.b.c").parent(), n("b.c"));
        assert!(n("a.b.c").is_within(&n("b.c")));
        assert!(n("a.b.c").is_within(&n("a.b.c")));
        assert!(!n("b.c").is_within(&n("a.b.c")));
        assert!(n("a.b.c").is_within(&Fqdn::root()));
    }

    #[test]
    fn child_builds_subdomains() {
        assert_eq!(n("gmail.com").child("smtp").unwrap(), n("smtp.gmail.com"));
    }

    #[test]
    fn domain_conversions() {
        let d: DomainName = "gmial.com".parse().unwrap();
        let f = Fqdn::from_domain(&d);
        assert_eq!(f.to_string(), "gmial.com");
        assert_eq!(f.to_domain().unwrap(), d);
        assert!(n("*.x.com").to_domain().is_none());
        assert_eq!(n("smtp.gmail.com").registrable().unwrap(), n("gmail.com"));
        assert!(n("com").registrable().is_none());
    }

    #[test]
    fn wire_len() {
        // "ab.cd" -> 1+2 + 1+2 + 1 = 7
        assert_eq!(n("ab.cd").wire_len(), 7);
        assert_eq!(Fqdn::root().wire_len(), 1);
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = vec![n("b.com"), n("a.com"), n("a.com")];
        v.sort();
        v.dedup();
        assert_eq!(v, vec![n("a.com"), n("b.com")]);
    }
}
