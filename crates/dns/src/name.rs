//! Fully-qualified domain names for the DNS substrate.
//!
//! Unlike [`ets_core::DomainName`] (registrable names only), [`Fqdn`]
//! models anything DNS can name: single labels, deep subdomains, the root,
//! and wildcard owners (`*.exampel.com.`) as used in Table 1's zone setup.

use ets_core::DomainName;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Errors from parsing an [`Fqdn`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FqdnError {
    /// A label was empty (double dot).
    EmptyLabel,
    /// A label exceeded 63 octets.
    LabelTooLong(String),
    /// Total name exceeded 255 octets in wire form.
    NameTooLong,
    /// A label contained a byte outside letters/digits/hyphen/underscore
    /// (underscore is tolerated: service labels like `_dmarc` exist).
    BadCharacter(char),
    /// `*` appeared anywhere but as a whole leftmost label.
    BadWildcard,
}

impl fmt::Display for FqdnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FqdnError::EmptyLabel => write!(f, "empty label"),
            FqdnError::LabelTooLong(l) => write!(f, "label `{l}` over 63 octets"),
            FqdnError::NameTooLong => write!(f, "name over 255 octets"),
            FqdnError::BadCharacter(c) => write!(f, "character `{c}` not allowed"),
            FqdnError::BadWildcard => write!(f, "wildcard must be the whole leftmost label"),
        }
    }
}

impl std::error::Error for FqdnError {}

/// A fully-qualified, lower-cased domain name. The root is the empty label
/// sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct Fqdn {
    labels: Vec<String>,
}

impl Fqdn {
    /// The root name (`.`).
    pub fn root() -> Self {
        Fqdn { labels: Vec::new() }
    }

    /// Parses a name; a trailing dot is accepted and ignored, `.` or the
    /// empty string denote the root.
    pub fn parse(input: &str) -> Result<Self, FqdnError> {
        let trimmed = input.strip_suffix('.').unwrap_or(input);
        if trimmed.is_empty() {
            return Ok(Fqdn::root());
        }
        let mut labels = Vec::new();
        let mut wire_len = 1usize; // root byte
        for (i, raw) in trimmed.split('.').enumerate() {
            if raw.is_empty() {
                return Err(FqdnError::EmptyLabel);
            }
            if raw.len() > 63 {
                return Err(FqdnError::LabelTooLong(raw.to_owned()));
            }
            if raw.contains('*') {
                if raw != "*" || i != 0 {
                    return Err(FqdnError::BadWildcard);
                }
            } else {
                for c in raw.chars() {
                    if !(c.is_ascii_alphanumeric() || c == '-' || c == '_') {
                        return Err(FqdnError::BadCharacter(c));
                    }
                }
            }
            wire_len += raw.len() + 1;
            labels.push(raw.to_ascii_lowercase());
        }
        if wire_len > 255 {
            return Err(FqdnError::NameTooLong);
        }
        Ok(Fqdn { labels })
    }

    /// Labels left to right.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Whether this is the root name.
    pub fn is_root(&self) -> bool {
        self.labels.is_empty()
    }

    /// Whether the leftmost label is `*`.
    pub fn is_wildcard(&self) -> bool {
        self.labels.first().map(String::as_str) == Some("*")
    }

    /// The name with its leftmost label removed (`a.b.c` → `b.c`;
    /// root stays root).
    pub fn parent(&self) -> Fqdn {
        if self.labels.is_empty() {
            return Fqdn::root();
        }
        Fqdn {
            labels: self.labels[1..].to_vec(),
        }
    }

    /// Prepends a label (`x` + `b.c` → `x.b.c`).
    pub fn child(&self, label: &str) -> Result<Fqdn, FqdnError> {
        Fqdn::parse(&format!("{label}.{self}"))
    }

    /// Whether `self` equals `other` or is underneath it
    /// (`a.b.c` is within `b.c` and within `c`).
    pub fn is_within(&self, other: &Fqdn) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        self.labels[self.labels.len() - other.labels.len()..] == other.labels[..]
    }

    /// Whether a wildcard owner name covers `name` (RFC 4592: `*.zone`
    /// matches any name at least one label below `zone`, but not `zone`
    /// itself). Non-wildcard owners match only exact names.
    pub fn matches(&self, name: &Fqdn) -> bool {
        if !self.is_wildcard() {
            return self == name;
        }
        let suffix = self.parent();
        name.label_count() > suffix.label_count() && name.is_within(&suffix)
    }

    /// Converts a registrable [`DomainName`] from `ets-core`.
    pub fn from_domain(d: &DomainName) -> Fqdn {
        Fqdn::parse(d.as_str()).expect("DomainName is always a valid Fqdn")
    }

    /// Tries to view this name as a registrable two-label domain.
    pub fn to_domain(&self) -> Option<DomainName> {
        DomainName::parse(&self.to_string()).ok()
    }

    /// The registrable suffix (last two labels), if this name has one.
    pub fn registrable(&self) -> Option<Fqdn> {
        if self.labels.len() < 2 {
            return None;
        }
        Some(Fqdn {
            labels: self.labels[self.labels.len() - 2..].to_vec(),
        })
    }

    /// Wire-format length (sum of label length bytes + label bytes + root).
    pub fn wire_len(&self) -> usize {
        1 + self.labels.iter().map(|l| l.len() + 1).sum::<usize>()
    }
}

impl fmt::Display for Fqdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.labels.is_empty() {
            return f.write_str(".");
        }
        f.write_str(&self.labels.join("."))
    }
}

impl FromStr for Fqdn {
    type Err = FqdnError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Fqdn::parse(s)
    }
}

impl TryFrom<String> for Fqdn {
    type Error = FqdnError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        Fqdn::parse(&s)
    }
}

impl From<Fqdn> for String {
    fn from(f: Fqdn) -> String {
        f.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> Fqdn {
        Fqdn::parse(s).unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(n("ExAmPeL.com.").to_string(), "exampel.com");
        assert_eq!(n(".").to_string(), ".");
        assert_eq!(n("").to_string(), ".");
        assert!(n(".").is_root());
    }

    #[test]
    fn rejects_bad_labels() {
        assert_eq!(Fqdn::parse("a..b"), Err(FqdnError::EmptyLabel));
        assert!(matches!(
            Fqdn::parse("é.com"),
            Err(FqdnError::BadCharacter(_))
        ));
        let long = "a".repeat(64);
        assert!(matches!(
            Fqdn::parse(&format!("{long}.com")),
            Err(FqdnError::LabelTooLong(_))
        ));
    }

    #[test]
    fn underscore_labels_allowed() {
        assert_eq!(n("_dmarc.gmail.com").label_count(), 3);
    }

    #[test]
    fn wildcard_rules() {
        assert!(n("*.exampel.com").is_wildcard());
        assert_eq!(Fqdn::parse("a.*.com"), Err(FqdnError::BadWildcard));
        assert_eq!(Fqdn::parse("x*.com"), Err(FqdnError::BadWildcard));
    }

    #[test]
    fn wildcard_matching_rfc4592() {
        let wc = n("*.exampel.com");
        assert!(wc.matches(&n("mail.exampel.com")));
        assert!(wc.matches(&n("a.b.exampel.com")));
        assert!(
            !wc.matches(&n("exampel.com")),
            "wildcard must not match the zone apex"
        );
        assert!(!wc.matches(&n("other.com")));
        // exact owner matches only itself
        let exact = n("exampel.com");
        assert!(exact.matches(&n("exampel.com")));
        assert!(!exact.matches(&n("mail.exampel.com")));
    }

    #[test]
    fn parent_and_within() {
        assert_eq!(n("a.b.c").parent(), n("b.c"));
        assert!(n("a.b.c").is_within(&n("b.c")));
        assert!(n("a.b.c").is_within(&n("a.b.c")));
        assert!(!n("b.c").is_within(&n("a.b.c")));
        assert!(n("a.b.c").is_within(&Fqdn::root()));
    }

    #[test]
    fn child_builds_subdomains() {
        assert_eq!(n("gmail.com").child("smtp").unwrap(), n("smtp.gmail.com"));
    }

    #[test]
    fn domain_conversions() {
        let d: DomainName = "gmial.com".parse().unwrap();
        let f = Fqdn::from_domain(&d);
        assert_eq!(f.to_string(), "gmial.com");
        assert_eq!(f.to_domain().unwrap(), d);
        assert!(n("*.x.com").to_domain().is_none());
        assert_eq!(n("smtp.gmail.com").registrable().unwrap(), n("gmail.com"));
        assert!(n("com").registrable().is_none());
    }

    #[test]
    fn wire_len() {
        // "ab.cd" -> 1+2 + 1+2 + 1 = 7
        assert_eq!(n("ab.cd").wire_len(), 7);
        assert_eq!(Fqdn::root().wire_len(), 1);
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = vec![n("b.com"), n("a.com"), n("a.com")];
        v.sort();
        v.dedup();
        assert_eq!(v, vec![n("a.com"), n("b.com")]);
    }
}
