//! A UDP driver serving the resolver over real sockets.
//!
//! Like the SMTP substrate, the DNS protocol logic is transport-free (the
//! [`crate::resolver::Resolver`] answers [`crate::wire::DnsMessage`]s);
//! this driver binds a `std::net::UdpSocket`, decodes RFC 1035 packets,
//! and serves authoritative answers — the piece of Figure 1 that answers
//! MX queries for the study's typo domains.

use crate::resolver::Resolver;
use crate::wire::{self, DnsMessage, Rcode};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running UDP DNS server.
pub struct DnsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl DnsServer {
    /// Binds to `addr` (port 0 for ephemeral) and serves `resolver`.
    pub fn bind(addr: &str, resolver: Resolver) -> std::io::Result<DnsServer> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_read_timeout(Some(Duration::from_millis(200)))?;
        let local = socket.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let thread = std::thread::spawn(move || serve_loop(socket, resolver, flag));
        Ok(DnsServer {
            addr: local,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins its thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DnsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(socket: UdpSocket, resolver: Resolver, shutdown: Arc<AtomicBool>) {
    let mut buf = [0u8; 1500];
    while !shutdown.load(Ordering::SeqCst) {
        let (n, peer) = match socket.recv_from(&mut buf) {
            Ok(v) => v,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let response = match wire::decode(&buf[..n]) {
            Ok(query) => resolver.serve(&query),
            Err(_) => {
                // Best effort FORMERR: echo the id if we can read it.
                let id = if n >= 2 {
                    u16::from_be_bytes([buf[0], buf[1]])
                } else {
                    0
                };
                let mut resp =
                    DnsMessage::query(id, crate::name::Fqdn::root(), crate::record::RecordType::A);
                resp.questions.clear();
                resp.is_response = true;
                resp.rcode = Rcode::FormErr;
                resp
            }
        };
        let bytes = wire::encode(&response);
        // ets-lint: allow(swallowed-error): UDP responses are best-effort
        // by protocol; a failed send is the client's timeout to handle.
        let _ = socket.send_to(&bytes, peer);
    }
}

/// A blocking UDP query helper (client side of the driver).
pub fn query_udp(
    server: SocketAddr,
    query: &DnsMessage,
    timeout: Duration,
) -> std::io::Result<DnsMessage> {
    let socket = UdpSocket::bind("127.0.0.1:0")?;
    socket.set_read_timeout(Some(timeout))?;
    socket.send_to(&wire::encode(query), server)?;
    let mut buf = [0u8; 1500];
    let (n, _) = socket.recv_from(&mut buf)?;
    wire::decode(&buf[..n])
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{RecordData, RecordType};
    use crate::registry::{Registration, Registry};
    use crate::whois::WhoisRecord;
    use crate::zone::Zone;
    use crate::Fqdn;
    use std::net::Ipv4Addr;

    fn registry() -> Registry {
        let registry = Registry::new();
        registry.register(
            Registration {
                domain: "gmial.com".parse().unwrap(),
                registrar: "r".into(),
                whois: WhoisRecord::default(),
                privacy_proxy: None,
                nameservers: vec![],
                created_day: 0,
            },
            Some(Zone::catch_all(
                &"gmial.com".parse().unwrap(),
                Ipv4Addr::new(198, 51, 100, 1),
                300,
            )),
        );
        registry
    }

    #[test]
    fn serves_mx_over_udp() {
        let server = DnsServer::bind("127.0.0.1:0", Resolver::new(registry())).unwrap();
        let q = DnsMessage::query(
            0x55AA,
            "smtp.gmial.com".parse::<Fqdn>().unwrap(),
            RecordType::Mx,
        );
        let resp = query_udp(server.addr(), &q, Duration::from_secs(2)).unwrap();
        assert_eq!(resp.id, 0x55AA);
        assert!(resp.is_response);
        assert_eq!(resp.rcode, Rcode::NoError);
        assert_eq!(resp.answers.len(), 1);
        match &resp.answers[0].data {
            RecordData::Mx { exchange, .. } => {
                assert_eq!(exchange, &"gmial.com".parse::<Fqdn>().unwrap())
            }
            other => panic!("{other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn nxdomain_over_udp() {
        let server = DnsServer::bind("127.0.0.1:0", Resolver::new(registry())).unwrap();
        let q = DnsMessage::query(
            7,
            "unregistered-name.com".parse::<Fqdn>().unwrap(),
            RecordType::A,
        );
        let resp = query_udp(server.addr(), &q, Duration::from_secs(2)).unwrap();
        assert_eq!(resp.rcode, Rcode::NxDomain);
        assert!(resp.answers.is_empty());
    }

    #[test]
    fn garbage_gets_formerr() {
        let server = DnsServer::bind("127.0.0.1:0", Resolver::new(registry())).unwrap();
        let socket = UdpSocket::bind("127.0.0.1:0").unwrap();
        socket
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        socket.send_to(&[0xAB, 0xCD, 0xFF], server.addr()).unwrap();
        let mut buf = [0u8; 512];
        let (n, _) = socket.recv_from(&mut buf).unwrap();
        let resp = wire::decode(&buf[..n]).unwrap();
        assert_eq!(resp.id, 0xABCD);
        assert_eq!(resp.rcode, Rcode::FormErr);
    }

    #[test]
    fn many_queries_sequentially() {
        let server = DnsServer::bind("127.0.0.1:0", Resolver::new(registry())).unwrap();
        for i in 0..20u16 {
            let q = DnsMessage::query(i, "gmial.com".parse::<Fqdn>().unwrap(), RecordType::A);
            let resp = query_udp(server.addr(), &q, Duration::from_secs(2)).unwrap();
            assert_eq!(resp.id, i);
            assert_eq!(resp.answers.len(), 1);
        }
    }
}
