//! Log-linear latency histograms with exact-count quantile extraction.
//!
//! The serving path needs p50/p99/p999 over values spanning six orders
//! of magnitude (a sub-millisecond command parse to a multi-second
//! read-timeout), which fixed-bucket histograms cannot cover without
//! either huge bucket counts or useless resolution. The classic answer
//! (HdrHistogram) is log2 bucket groups subdivided linearly:
//!
//! * Values below 2^[`SUB_BITS`] get exact unit buckets.
//! * Each power-of-two group `[2^k, 2^(k+1))` is split into
//!   2^[`SUB_BITS`] equal sub-buckets, bounding the relative quantile
//!   error at `1/2^SUB_BITS` (6.25%).
//! * Values at or above 2^[`MAX_EXP`] land in one overflow bucket
//!   (about 12.7 days in microseconds — nothing a session should reach);
//!   quantiles falling there report the exact tracked maximum.
//!
//! Bucket counts are plain `u64` adds, so two histograms merge
//! commutatively — the same determinism-boundary property the counter
//! registry relies on. [`AtomicLatencyHistogram`] is the shared-recording
//! variant (relaxed `fetch_add`/`fetch_max`), used by the SMTP serving
//! path and snapshotted by the telemetry exposition tick.
//!
//! Latency values are wall-clock derived, so like gauges they are
//! **excluded** from the deterministic `metrics::snapshot_json` — they
//! appear only in the live `/metrics` + `/snapshot.json` exposition.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Linear sub-bucket resolution: each log2 group splits into
/// `2^SUB_BITS` sub-buckets.
pub const SUB_BITS: u32 = 4;
/// Sub-buckets per group.
const SUB: usize = 1 << SUB_BITS;
/// Values at or above `2^MAX_EXP` fall into the overflow bucket.
pub const MAX_EXP: u32 = 40;
/// Total bucket count, including the overflow bucket.
pub const BUCKETS: usize = SUB + (MAX_EXP - SUB_BITS) as usize * SUB + 1;

/// The bucket index for `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        return value as usize;
    }
    let top = 63 - value.leading_zeros();
    if top >= MAX_EXP {
        return BUCKETS - 1;
    }
    let group = (top - SUB_BITS) as usize;
    let sub = ((value >> (top - SUB_BITS)) as usize) - SUB;
    SUB + group * SUB + sub
}

/// The inclusive `(lower, upper)` value range of bucket `index`.
pub fn bucket_range(index: usize) -> (u64, u64) {
    if index < SUB {
        return (index as u64, index as u64);
    }
    if index >= BUCKETS - 1 {
        return (1u64 << MAX_EXP, u64::MAX);
    }
    let group = ((index - SUB) / SUB) as u32;
    let sub = ((index - SUB) % SUB) as u64;
    let lower = ((SUB as u64) + sub) << group;
    (lower, lower + (1u64 << group) - 1)
}

/// A mergeable log-linear histogram (single-threaded view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Merges `other` into `self`. Bucket adds are `u64` and the max is
    /// a max, so the merge commutes: any merge order yields the same
    /// histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (zero when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values, rounded down (zero when
    /// empty). Exact — the sum is tracked outside the bucket grid.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `(lower, upper)` bucket range containing the `q`-quantile
    /// (`0.0 ..= 1.0`) by exact cumulative count, or `None` when empty.
    /// The true rank-`q` value is guaranteed to lie within the range.
    pub fn quantile_range(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_range(i));
            }
        }
        Some(bucket_range(BUCKETS - 1))
    }

    /// The `q`-quantile estimate: the upper edge of the quantile's
    /// bucket, clamped to the tracked maximum (so the overflow bucket
    /// reports the exact max, and no estimate exceeds an observed
    /// value). Relative error is at most `1/2^SUB_BITS`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.quantile_range(q).map(|(_, upper)| upper.min(self.max))
    }
}

/// The shared-recording variant: relaxed atomic adds, safe to hammer
/// from many connection-handler threads at once.
pub struct AtomicLatencyHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for AtomicLatencyHistogram {
    fn default() -> Self {
        AtomicLatencyHistogram::new()
    }
}

impl AtomicLatencyHistogram {
    /// An empty histogram.
    pub fn new() -> AtomicLatencyHistogram {
        AtomicLatencyHistogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (lock-free).
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy. Concurrent records may straddle the copy
    /// (the per-field loads are not one atomic transaction), which only
    /// shifts a record into the next exposition tick.
    pub fn snapshot(&self) -> LatencyHistogram {
        LatencyHistogram {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// The process-global latency registry, keyed by metric name. Handles
/// are `Arc`-shared so hot paths resolve a name once and record through
/// the atomic histogram with zero lookups.
static LATENCY: Mutex<Vec<(String, Arc<AtomicLatencyHistogram>)>> = Mutex::new(Vec::new());

fn registry() -> MutexGuard<'static, Vec<(String, Arc<AtomicLatencyHistogram>)>> {
    LATENCY.lock().unwrap_or_else(|p| p.into_inner())
}

/// The shared recorder for `name`, created on first use.
pub fn recorder(name: &str) -> Arc<AtomicLatencyHistogram> {
    let mut reg = registry();
    if let Some((_, h)) = reg.iter().find(|(n, _)| n == name) {
        return h.clone();
    }
    let h = Arc::new(AtomicLatencyHistogram::new());
    reg.push((name.to_owned(), h.clone()));
    reg.sort_by(|(a, _), (b, _)| a.cmp(b));
    h
}

/// Point-in-time snapshots of every registered latency histogram,
/// sorted by name.
pub fn snapshots() -> Vec<(String, LatencyHistogram)> {
    registry()
        .iter()
        .map(|(n, h)| (n.clone(), h.snapshot()))
        .collect()
}

/// Clears the registry (tests only). Existing handles keep recording
/// into their (now unregistered) histograms.
pub fn reset() {
    registry().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for q in [0.01, 0.5, 1.0] {
            let (lo, hi) = h.quantile_range(q).unwrap();
            assert_eq!(lo, hi, "q={q}");
        }
        assert_eq!(h.quantile(1.0), Some(15));
        assert_eq!(h.count(), 16);
    }

    #[test]
    fn bucket_ranges_partition_the_value_space() {
        // Every bucket's range maps back to the same bucket, and ranges
        // are contiguous.
        let mut expected_lower = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(lo, expected_lower, "bucket {i}");
            assert_eq!(bucket_index(lo), i, "lower edge of {i}");
            assert_eq!(bucket_index(hi), i, "upper edge of {i}");
            if i < BUCKETS - 1 {
                expected_lower = hi + 1;
            }
        }
        assert_eq!(bucket_range(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        for v in [1_000u64, 25_000, 2_000_000, 900_000_000] {
            h.record(v);
            let (lo, hi) = h.quantile_range(1.0).unwrap();
            assert!(lo <= v && v <= hi);
            let width = (hi - lo) as f64;
            assert!(width / lo as f64 <= 1.0 / SUB as f64 + 1e-9);
            h = LatencyHistogram::new();
        }
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn overflow_bucket_reports_exact_max() {
        let mut h = LatencyHistogram::new();
        let big = (1u64 << MAX_EXP) + 123_456;
        h.record(big);
        h.record(7);
        assert_eq!(h.quantile(1.0), Some(big));
        assert_eq!(h.quantile(0.25), Some(7));
    }

    #[test]
    fn merge_commutes_and_matches_combined() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for v in [3u64, 17, 900, 1 << 20] {
            a.record(v);
            combined.record(v);
        }
        for v in [5u64, 4_000, u64::MAX / 2] {
            b.record(v);
            combined.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, combined);
    }

    #[test]
    fn atomic_variant_matches_plain() {
        let atomic = AtomicLatencyHistogram::new();
        let mut plain = LatencyHistogram::new();
        for v in [0u64, 9, 300, 70_000, 1 << 41] {
            atomic.record(v);
            plain.record(v);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn registry_hands_out_shared_recorders() {
        let _guard = crate::test_lock();
        reset();
        let a = recorder("test.latency");
        let b = recorder("test.latency");
        a.record(10);
        b.record(20);
        let snaps = snapshots();
        let (_, h) = snaps
            .iter()
            .find(|(n, _)| n == "test.latency")
            .expect("registered");
        assert_eq!(h.count(), 2);
        reset();
    }
}
