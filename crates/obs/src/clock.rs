//! The **only** module in the workspace (outside the benchmark harness)
//! that may read the wall clock.
//!
//! The determinism contract of this repository is that every value in
//! `results/*.json` is a pure function of `(seed, scale)`. Wall-clock
//! readings obviously are not, so they are quarantined here: everything
//! else in `ets-obs` consumes the `u64` microsecond values this module
//! hands out, and those values only ever flow into trace and bench
//! artifacts (`trace.json`, `bench_pipeline.json`), never into result
//! figures. `ets-lint`'s `nondeterministic-source` rule allowlists
//! exactly this file — `Instant::now` anywhere else in the workspace,
//! including elsewhere in `ets-obs`, is a deny-tier finding.

use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide epoch: the first clock read. All trace timestamps are
/// microseconds since this instant, which is what the Chrome trace
/// format's `ts` field expects (relative, monotonic, µs).
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the first call to any function in this module.
/// Monotonic and cheap; the first call returns 0.
pub fn monotonic_micros() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_micros() as u64
}

/// A started stopwatch, for stage-level timing.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts a stopwatch now.
    pub fn start() -> Stopwatch {
        // Touch the epoch so a run's first timed stage still reports
        // trace timestamps relative to a sensible zero.
        let _ = EPOCH.get_or_init(Instant::now);
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_micros_is_monotonic() {
        let a = monotonic_micros();
        let b = monotonic_micros();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_measures_nonnegative_time() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_secs() >= 0.0);
    }
}
