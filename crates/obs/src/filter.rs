//! The `ETS_TRACE` env-filter: per-module-prefix trace levels.
//!
//! Grammar (comma-separated directives, later directives win on ties of
//! equal prefix length; the longest matching prefix wins otherwise):
//!
//! ```text
//! ETS_TRACE=off                     # nothing recorded
//! ETS_TRACE=info                    # stage spans only
//! ETS_TRACE=trace                   # everything (the --trace default)
//! ETS_TRACE=parallel=off            # drop per-worker spans, keep the rest
//! ETS_TRACE=info,funnel=trace       # stages + full funnel detail
//! ```
//!
//! A bare level sets the default; `prefix=level` applies to every span
//! whose dotted name starts with that prefix (`funnel` matches
//! `funnel.layer3` but not `funnels`).

use std::str::FromStr;

/// Span verbosity levels, ordered: a span is recorded when its level is
/// at or below the effective filter level for its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Never recorded; as a filter level, records nothing.
    Off,
    /// Pipeline stages and other once-per-run structure.
    Info,
    /// Inner phases (funnel layers, world-build sub-stages).
    Debug,
    /// Per-worker fan-out spans and other high-volume detail.
    Trace,
}

impl Level {
    /// Lower-case name, for trace output.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Ok(Level::Off),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" | "all" | "on" => Ok(Level::Trace),
            other => Err(format!(
                "unknown trace level {other:?} (expected off|info|debug|trace)"
            )),
        }
    }
}

/// A parsed `ETS_TRACE` filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    /// Level for spans no directive matches.
    default: Level,
    /// `(module prefix, level)` directives, as written.
    directives: Vec<(String, Level)>,
}

impl Filter {
    /// Records everything — the default when `--trace` is given and
    /// `ETS_TRACE` is unset.
    pub const fn all() -> Filter {
        Filter {
            default: Level::Trace,
            directives: Vec::new(),
        }
    }

    /// Records nothing.
    pub const fn off() -> Filter {
        Filter {
            default: Level::Off,
            directives: Vec::new(),
        }
    }

    /// True when no span can ever be recorded under this filter.
    pub fn is_off(&self) -> bool {
        self.default == Level::Off && self.directives.iter().all(|(_, l)| *l == Level::Off)
    }

    /// Parses a directive string. The default level (when only
    /// `prefix=level` directives are given) is `trace`.
    pub fn parse(spec: &str) -> Result<Filter, String> {
        let mut default = None;
        let mut directives = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((prefix, level)) => {
                    let prefix = prefix.trim();
                    if prefix.is_empty() {
                        return Err(format!("empty module prefix in directive {part:?}"));
                    }
                    directives.push((prefix.to_owned(), level.parse()?));
                }
                None => default = Some(part.parse()?),
            }
        }
        Ok(Filter {
            default: default.unwrap_or(Level::Trace),
            directives,
        })
    }

    /// The effective level for a dotted span name: the longest matching
    /// prefix directive, or the default.
    pub fn level_for(&self, name: &str) -> Level {
        let mut best: Option<(usize, Level)> = None;
        for (prefix, level) in &self.directives {
            let matches = name == prefix
                || (name.len() > prefix.len()
                    && name.starts_with(prefix.as_str())
                    && name.as_bytes()[prefix.len()] == b'.');
            let longer = match best {
                None => true,
                Some((len, _)) => prefix.len() >= len,
            };
            if matches && longer {
                best = Some((prefix.len(), *level));
            }
        }
        best.map_or(self.default, |(_, l)| l)
    }

    /// Whether a span at `level` under `name` should be recorded.
    pub fn enabled(&self, name: &str, level: Level) -> bool {
        level != Level::Off && level <= self.level_for(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_level_sets_default() {
        let f = Filter::parse("info").unwrap();
        assert!(f.enabled("stage.world_build", Level::Info));
        assert!(!f.enabled("parallel.worker", Level::Trace));
    }

    #[test]
    fn prefix_directive_overrides_default() {
        let f = Filter::parse("info,funnel=trace").unwrap();
        assert!(f.enabled("funnel.layer3", Level::Trace));
        assert!(!f.enabled("parallel.worker", Level::Trace));
    }

    #[test]
    fn longest_prefix_wins() {
        let f = Filter::parse("funnel=off,funnel.layer3=debug").unwrap();
        assert_eq!(f.level_for("funnel.layer3"), Level::Debug);
        assert_eq!(f.level_for("funnel.layer5"), Level::Off);
        assert_eq!(f.level_for("funnel.layer3.pass"), Level::Debug);
    }

    #[test]
    fn prefix_matches_whole_labels_only() {
        let f = Filter::parse("funnel=off").unwrap();
        assert_eq!(f.level_for("funnels.x"), Level::Trace);
        assert_eq!(f.level_for("funnel"), Level::Off);
    }

    #[test]
    fn off_spec_disables_everything() {
        let f = Filter::parse("off").unwrap();
        assert!(f.is_off());
        assert!(!f.enabled("anything", Level::Info));
    }

    #[test]
    fn bad_specs_are_errors() {
        assert!(Filter::parse("verbose").is_err());
        assert!(Filter::parse("=info").is_err());
        assert!(Filter::parse("x=loud").is_err());
    }

    #[test]
    fn empty_spec_defaults_to_trace_everything() {
        let f = Filter::parse("").unwrap();
        assert!(f.enabled("parallel.worker", Level::Trace));
        assert_eq!(f, Filter::all());
    }
}
