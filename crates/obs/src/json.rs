//! A minimal JSON *writer* — just enough to emit trace artifacts without
//! pulling a serialization dependency into the observability layer.
//!
//! Only writing is provided (the crate never reads JSON back); tests
//! round-trip the output through the workspace's `serde_json` to prove
//! it parses.

/// Appends `s` as a JSON string literal (quoted, escaped) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in a JSON-valid form (JSON has no NaN/Infinity; they
/// degrade to `null`).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{v:?}` keeps a decimal point or exponent, so the value reads
        // back as a float rather than an integer.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

/// Appends a `[a, b, c]` array of integers.
pub fn write_u64_array(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(f: impl FnOnce(&mut String)) -> String {
        let mut out = String::new();
        f(&mut out);
        out
    }

    #[test]
    fn strings_escape_and_parse_back() {
        let raw = "a \"b\"\\\n\tcontrol:\u{1}";
        let enc = s(|o| write_str(o, raw));
        let back: serde_json::Value = serde_json::from_str(&enc).unwrap();
        assert_eq!(back.as_str(), Some(raw));
    }

    #[test]
    fn floats_stay_floats() {
        assert_eq!(s(|o| write_f64(o, 2.0)), "2.0");
        assert_eq!(s(|o| write_f64(o, f64::NAN)), "null");
        let back: serde_json::Value = serde_json::from_str(&s(|o| write_f64(o, 0.25))).unwrap();
        assert_eq!(back.as_f64(), Some(0.25));
    }

    #[test]
    fn arrays_parse_back() {
        let enc = s(|o| write_u64_array(o, &[1, 2, 30]));
        let back: serde_json::Value = serde_json::from_str(&enc).unwrap();
        assert_eq!(back.as_array().unwrap().len(), 3);
    }
}
