//! The global metrics registry: monotonic counters, gauges, fixed-bucket
//! histograms, and the ordered stage-timing timeline.
//!
//! The registry is split along the repository's determinism boundary:
//!
//! * **Counters and histograms** hold *workload* quantities (emails
//!   classified, funnel layer drops, DL-1 fan-out sizes). Increments are
//!   commutative, so even when they happen inside `ets-parallel` fan-out
//!   closures the final values are a pure function of `(seed, scale)` —
//!   [`snapshot_json`] is asserted byte-identical across thread counts.
//! * **Gauges and stage timings** may hold wall-clock-derived values
//!   (emails/sec, seconds per stage). They are excluded from the
//!   deterministic snapshot and only flow into trace and bench
//!   artifacts.
//!
//! Counters and histograms record through the per-thread sharded backend
//! (`crate::sharded`): the hot path is a thread-local lookup plus one
//! relaxed `fetch_add`, and readers merge shards commutatively, so the
//! contention of the old single global mutex is gone while the snapshot
//! stays thread-count-invariant. Gauges and the stage timeline are cold
//! (once per stage / per tick) and stay behind one mutex.

use crate::json;
use crate::sharded;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Mutex, MutexGuard};

pub use crate::sharded::retire_local;

/// A fixed-bucket histogram: `counts[i]` is the number of recorded
/// values `<= bounds[i]`, with one overflow bucket at the end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `len == bounds.len() + 1`.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Total number of recorded values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[derive(Debug)]
struct Inner {
    gauges: BTreeMap<String, f64>,
    /// `(stage name, wall-clock seconds)` in run order — the
    /// `bench_pipeline.json` timeline.
    stages: Vec<(String, f64)>,
}

static REGISTRY: Mutex<Inner> = Mutex::new(Inner {
    gauges: BTreeMap::new(),
    stages: Vec::new(),
});

/// Histogram names already warned about, so a hot-path bounds conflict
/// logs once instead of once per record.
static BOUNDS_WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

/// Poison only means a panicking thread held the guard mid-update; the
/// panic still propagates to the test/process, so recovering here never
/// masks a failure.
fn lock() -> MutexGuard<'static, Inner> {
    REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
}

/// Adds `delta` to the named monotonic counter (created at zero).
pub fn counter_add(name: &str, delta: u64) {
    sharded::counter_add(name, delta);
}

/// Current value of a counter (zero when never touched).
pub fn counter_value(name: &str) -> u64 {
    sharded::counter_value(name)
}

/// All counters, sorted by name.
pub fn counters() -> Vec<(String, u64)> {
    sharded::merged_counters().into_iter().collect()
}

/// Counters with the given dotted prefix, with `prefix.` stripped,
/// sorted by name.
pub fn counters_with_prefix(prefix: &str) -> Vec<(String, u64)> {
    sharded::merged_counters()
        .iter()
        .filter_map(|(k, v)| {
            k.strip_prefix(prefix)
                .and_then(|rest| rest.strip_prefix('.'))
                .map(|rest| (rest.to_owned(), *v))
        })
        .collect()
}

/// Sets the named gauge (last write wins). Gauges may carry wall-clock
/// derived values and are excluded from the deterministic snapshot.
pub fn gauge_set(name: &str, value: f64) {
    lock().gauges.insert(name.to_owned(), value);
}

/// Current gauges, sorted by name.
pub fn gauges() -> Vec<(String, f64)> {
    lock().gauges.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Gauges with the given dotted prefix, with `prefix.` stripped, sorted
/// by name.
pub fn gauges_with_prefix(prefix: &str) -> Vec<(String, f64)> {
    lock()
        .gauges
        .iter()
        .filter_map(|(k, v)| {
            k.strip_prefix(prefix)
                .and_then(|rest| rest.strip_prefix('.'))
                .map(|rest| (rest.to_owned(), *v))
        })
        .collect()
}

/// Records one value into the named fixed-bucket histogram. The bucket
/// bounds are fixed by the first call; later calls must pass the same
/// bounds. A violation drops the value, bumps the
/// `obs.histogram_bounds_conflict` counter, and logs one warning per
/// metric name (never panics inside a measurement run).
pub fn histogram_record(name: &str, bounds: &[u64], value: u64) {
    if let Err(canonical) = sharded::histogram_record(name, bounds, value) {
        counter_add("obs.histogram_bounds_conflict", 1);
        warn_bounds_conflict(name, &canonical, bounds);
    }
}

/// Logs the bounds-conflict diagnostic, rate-limited to once per metric
/// name. Returns whether this call was the one that logged.
fn warn_bounds_conflict(name: &str, registered: &[u64], passed: &[u64]) -> bool {
    let mut warned = BOUNDS_WARNED.lock().unwrap_or_else(|p| p.into_inner());
    if !warned.insert(name.to_owned()) {
        return false;
    }
    eprintln!(
        "[ets-obs] warn: histogram {name:?} bounds conflict: registered {registered:?} \
         but caller passed {passed:?}; value dropped \
         (counted in obs.histogram_bounds_conflict; warning once per metric)"
    );
    true
}

/// A copy of the named histogram, if recorded.
pub fn histogram(name: &str) -> Option<Histogram> {
    sharded::merged_histogram(name).map(|(bounds, counts)| Histogram { bounds, counts })
}

/// Appends one entry to the stage-timing timeline.
pub fn stage_record(name: &str, seconds: f64) {
    lock().stages.push((name.to_owned(), seconds));
}

/// The stage-timing timeline, in run order.
pub fn stage_timeline() -> Vec<(String, f64)> {
    lock().stages.clone()
}

/// Runs `f` as a named pipeline stage: wraps it in a `stage.<name>` span,
/// appends its wall-clock duration to the timeline, and returns the
/// result together with the measured seconds.
pub fn time_stage<T>(name: &str, f: impl FnOnce() -> T) -> (T, f64) {
    let _span = crate::span::enter(&format!("stage.{name}"));
    let sw = crate::clock::Stopwatch::start();
    let out = f();
    let secs = sw.elapsed_secs();
    stage_record(name, secs);
    (out, secs)
}

/// Like [`time_stage`], but the stage lands on the timeline only when
/// `f` returns `Ok` — a failed attempt (e.g. a rejected snapshot load
/// that falls back to a fresh build) must not masquerade as a completed
/// pipeline stage in the bench reports. The span and the measured
/// seconds are produced either way.
pub fn time_stage_result<T, E>(
    name: &str,
    f: impl FnOnce() -> Result<T, E>,
) -> (Result<T, E>, f64) {
    let _span = crate::span::enter(&format!("stage.{name}"));
    let sw = crate::clock::Stopwatch::start();
    let out = f();
    let secs = sw.elapsed_secs();
    if out.is_ok() {
        stage_record(name, secs);
    }
    (out, secs)
}

/// The deterministic snapshot: counters and histograms only, sorted by
/// name, rendered to JSON. Byte-identical across thread counts for a
/// given `(seed, scale)` workload.
pub fn snapshot_json() -> String {
    let merged = sharded::merged_counters();
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, value)) in merged.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        json::write_str(&mut out, name);
        out.push_str(": ");
        out.push_str(&value.to_string());
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, (bounds, counts))) in sharded::merged_histograms().iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    ");
        json::write_str(&mut out, name);
        out.push_str(": {\"bounds\": ");
        json::write_u64_array(&mut out, bounds);
        out.push_str(", \"counts\": ");
        json::write_u64_array(&mut out, counts);
        out.push('}');
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Clears every metric and the stage timeline (tests only — production
/// code records for the life of the process).
pub fn reset() {
    sharded::reset();
    let mut r = lock();
    r.gauges.clear();
    r.stages.clear();
    drop(r);
    BOUNDS_WARNED
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests that read whole snapshots
    /// serialize on the workspace-wide obs test lock.
    fn locked<T>(f: impl FnOnce() -> T) -> T {
        let _guard = crate::test_lock();
        reset();
        let out = f();
        reset();
        out
    }

    #[test]
    fn counters_accumulate() {
        locked(|| {
            counter_add("t.a", 2);
            counter_add("t.a", 3);
            assert_eq!(counter_value("t.a"), 5);
            assert_eq!(counter_value("t.untouched"), 0);
        });
    }

    #[test]
    fn prefix_query_strips_prefix() {
        locked(|| {
            counter_add("lab.world_targets", 10);
            counter_add("lab.traffic_emails", 20);
            counter_add("other.x", 1);
            let got = counters_with_prefix("lab");
            assert_eq!(
                got,
                vec![
                    ("traffic_emails".to_owned(), 20),
                    ("world_targets".to_owned(), 10)
                ]
            );
        });
    }

    #[test]
    fn histogram_buckets_by_inclusive_upper_bound() {
        locked(|| {
            let bounds = [1, 4, 16];
            for v in [0, 1, 2, 4, 5, 100] {
                histogram_record("t.h", &bounds, v);
            }
            let h = histogram("t.h").unwrap();
            assert_eq!(h.counts, vec![2, 2, 1, 1]);
            assert_eq!(h.total(), 6);
        });
    }

    #[test]
    fn histogram_bounds_conflict_is_counted_not_fatal() {
        locked(|| {
            histogram_record("t.h2", &[1, 2], 1);
            histogram_record("t.h2", &[1, 3], 1);
            assert_eq!(counter_value("obs.histogram_bounds_conflict"), 1);
            assert_eq!(histogram("t.h2").unwrap().total(), 1);
        });
    }

    #[test]
    fn bounds_conflict_warns_once_per_metric() {
        locked(|| {
            histogram_record("t.warn", &[1, 2], 1);
            // First conflicting record logs; the repeat is rate-limited.
            assert!(warn_bounds_conflict("t.warn", &[1, 2], &[9]));
            assert!(!warn_bounds_conflict("t.warn", &[1, 2], &[9]));
            // A different metric gets its own one-shot warning.
            assert!(warn_bounds_conflict("t.warn2", &[1], &[2]));
            // And the real record path flows through the same limiter.
            histogram_record("t.warn", &[1, 9], 1);
            assert_eq!(counter_value("obs.histogram_bounds_conflict"), 1);
        });
    }

    #[test]
    fn counts_from_other_threads_merge_into_reads() {
        locked(|| {
            counter_add("t.cross", 1);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        counter_add("t.cross", 10);
                        histogram_record("t.cross_h", &[8], 3);
                    });
                }
            });
            assert_eq!(counter_value("t.cross"), 41);
            assert_eq!(histogram("t.cross_h").unwrap().total(), 4);
            // The scoped threads have exited, so their shards are
            // already retired; an explicit retire of this thread's
            // shard must not change any merged value.
            retire_local();
            assert_eq!(counter_value("t.cross"), 41);
        });
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        locked(|| {
            counter_add("z.last", 1);
            counter_add("a.first", 2);
            histogram_record("m.h", &[10], 3);
            gauge_set("wallclock.rate", 123.4);
            let a = snapshot_json();
            let b = snapshot_json();
            assert_eq!(a, b);
            let first = a.find("a.first").unwrap();
            let last = a.find("z.last").unwrap();
            assert!(first < last);
            // Gauges are wall-clock territory: never in the snapshot.
            assert!(!a.contains("wallclock.rate"));
        });
    }

    #[test]
    fn time_stage_appends_to_timeline() {
        locked(|| {
            let (out, secs) = time_stage("unit_test_stage", || 41 + 1);
            assert_eq!(out, 42);
            assert!(secs >= 0.0);
            let tl = stage_timeline();
            assert_eq!(tl.len(), 1);
            assert_eq!(tl[0].0, "unit_test_stage");
        });
    }
}
