//! Hierarchical spans with RAII guards.
//!
//! A span is opened with [`enter`] (or the [`span!`](crate::span!)
//! macro) and closed when its guard drops; while open, it is the parent
//! of any span opened later on the same thread, via a thread-local span
//! stack. Crossing a thread boundary — the `ets-parallel` fan-outs —
//! is explicit: the spawning side reads [`current_id`] and each worker
//! opens its span with [`worker`], naming the parent and its worker
//! index.
//!
//! When tracing is disabled (the default) every entry point returns a
//! no-op guard after one relaxed atomic load: default runs pay nothing
//! and produce no artifacts.

use crate::filter::Level;
use crate::trace::{self, SpanEvent};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

/// Span ids are unique per process; 0 means "no span" (a root parent).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Open-span stack of this thread: the top is the current parent.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Trace "thread id" label: 0 for the main thread, worker index + 1
    /// inside fan-out workers.
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// Opens an `Info`-level span. Prefer the [`span!`](crate::span!) macro.
pub fn enter(name: &str) -> SpanGuard {
    enter_at(name, Level::Info)
}

/// Opens a span at an explicit level.
pub fn enter_at(name: &str, level: Level) -> SpanGuard {
    if !trace::should_record(name, level) {
        return SpanGuard { rec: None };
    }
    let parent = current_id();
    open(name, level, parent, None)
}

/// Opens a span on a fan-out worker thread: `parent` is the spawning
/// side's [`current_id`], `index` the worker's slot. The worker's trace
/// thread id becomes `index + 1` for the life of the thread.
pub fn worker(name: &str, parent: u64, index: usize) -> SpanGuard {
    if !trace::should_record(name, Level::Trace) {
        return SpanGuard { rec: None };
    }
    TID.with(|t| t.set(index as u64 + 1));
    open(name, Level::Trace, parent, Some(index as u64))
}

fn open(name: &str, level: Level, parent: u64, worker: Option<u64>) -> SpanGuard {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| s.borrow_mut().push(id));
    let mut args = Vec::new();
    if let Some(w) = worker {
        args.push(("worker", w));
    }
    SpanGuard {
        rec: Some(Rec {
            id,
            parent,
            name: name.to_owned(),
            level,
            tid: TID.with(Cell::get),
            start_us: crate::clock::monotonic_micros(),
            args,
        }),
    }
}

/// The id of the innermost open span on this thread, or 0.
pub fn current_id() -> u64 {
    STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

struct Rec {
    id: u64,
    parent: u64,
    name: String,
    level: Level,
    tid: u64,
    start_us: u64,
    args: Vec<(&'static str, u64)>,
}

/// RAII guard: records the span when dropped. No-op when tracing was
/// disabled at entry.
pub struct SpanGuard {
    rec: Option<Rec>,
}

impl SpanGuard {
    /// This span's id (0 when tracing is disabled) — pass it to
    /// [`worker`] on spawned threads to parent their spans here.
    pub fn id(&self) -> u64 {
        self.rec.as_ref().map_or(0, |r| r.id)
    }

    /// Attaches a numeric argument, exported into the trace (e.g. items
    /// processed by a worker). No-op when disabled.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if let Some(rec) = self.rec.as_mut() {
            rec.args.push((key, value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(rec) = self.rec.take() else {
            return;
        };
        let end_us = crate::clock::monotonic_micros();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop in reverse entry order on a given thread, so
            // the top is this span; be defensive anyway.
            if stack.last() == Some(&rec.id) {
                stack.pop();
            } else {
                stack.retain(|&x| x != rec.id);
            }
        });
        trace::push(SpanEvent {
            id: rec.id,
            parent: rec.parent,
            name: rec.name,
            level: rec.level,
            tid: rec.tid,
            start_us: rec.start_us,
            dur_us: end_us.saturating_sub(rec.start_us),
            args: rec.args,
        });
    }
}

/// Opens a named span, returning its RAII guard; the optional second
/// argument is a [`Level`](crate::filter::Level) (default `Info`).
///
/// ```
/// let _guard = ets_obs::span!("funnel.layer2");
/// let _noisy = ets_obs::span!("funnel.layer2.pass", ets_obs::filter::Level::Debug);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
    ($name:expr, $level:expr) => {
        $crate::span::enter_at($name, $level)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;

    #[test]
    fn disabled_spans_are_no_ops() {
        let _guard = crate::test_lock();
        trace::disable();
        let g = enter("test.disabled");
        assert_eq!(g.id(), 0);
        assert_eq!(current_id(), 0);
        drop(g);
        assert!(trace::drain().is_empty());
    }

    #[test]
    fn nesting_follows_the_thread_stack() {
        let _guard = crate::test_lock();
        trace::enable(Filter::all());
        {
            let outer = enter("test.outer");
            assert_eq!(current_id(), outer.id());
            let inner = enter("test.inner");
            assert_eq!(current_id(), inner.id());
            drop(inner);
            assert_eq!(current_id(), outer.id());
        }
        let events = trace::drain();
        trace::disable();
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| e.name == "test.inner").unwrap();
        let outer = events.iter().find(|e| e.name == "test.outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert!(inner.start_us >= outer.start_us);
    }

    #[test]
    fn worker_spans_parent_across_threads() {
        let _guard = crate::test_lock();
        trace::enable(Filter::all());
        {
            let fan = enter("test.fan");
            let parent = fan.id();
            std::thread::scope(|scope| {
                for w in 0..2 {
                    scope.spawn(move || {
                        let mut g = worker("test.worker", parent, w);
                        g.arg("items", 10 + w as u64);
                    });
                }
            });
        }
        let events = trace::drain();
        trace::disable();
        let fan = events.iter().find(|e| e.name == "test.fan").unwrap();
        let workers: Vec<_> = events.iter().filter(|e| e.name == "test.worker").collect();
        assert_eq!(workers.len(), 2);
        for w in workers {
            assert_eq!(w.parent, fan.id);
            assert!(w.tid > 0);
            assert!(w.args.iter().any(|(k, _)| *k == "worker"));
            assert!(w.args.iter().any(|(k, v)| *k == "items" && *v >= 10));
        }
    }

    #[test]
    fn filter_drops_below_threshold_spans() {
        let _guard = crate::test_lock();
        trace::enable(Filter::parse("info,test.noisy=off").unwrap());
        {
            let _a = enter("test.kept");
            let _b = enter("test.noisy");
            let _c = enter_at("test.detail", Level::Debug);
        }
        let events = trace::drain();
        trace::disable();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "test.kept");
    }
}
