//! Dependency-free HTTP introspection listener for live telemetry.
//!
//! Serves three read-only endpoints over plain `std::net`:
//!
//! * `/metrics` — Prometheus text exposition (version 0.0.4): counters,
//!   gauges, fixed-bucket histograms, and latency summaries with
//!   p50/p99/p999 quantiles.
//! * `/snapshot.json` — the full registry as JSON: counters, gauges,
//!   histograms, latency quantiles, plus any registered custom sections
//!   (e.g. the SMTP sampled-session ring).
//! * `/healthz` — liveness probe (`200 ok`).
//!
//! Rendering happens on a periodic **aggregation tick**, not per scrape:
//! the tick thread merges the sharded registry once and caches the
//! rendered bodies, so an aggressive scraper costs one buffer copy per
//! request and never touches the recording hot path. Telemetry about
//! the listener itself (tick count, scrape count, HTTP errors) is
//! recorded as *gauges* — wall-clock-side by definition — so enabling
//! `--telemetry` can never perturb the deterministic counter snapshot.

use crate::{json, latency, metrics};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Options for [`serve_with`].
pub struct ServeOptions {
    /// Aggregation interval between registry renders.
    pub tick: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            tick: Duration::from_millis(1000),
        }
    }
}

/// A handle to the running introspection listener; dropping it shuts
/// the listener down and joins its threads.
pub struct TelemetryServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    tick_thread: Option<JoinHandle<()>>,
}

/// Rendered endpoint bodies, swapped atomically each tick.
struct Rendered {
    metrics_text: String,
    snapshot_json: String,
}

type SectionFn = dyn Fn() -> String + Send + Sync;

/// Custom `/snapshot.json` sections: name → callback returning a raw
/// JSON value. Process-global so instrumented subsystems (the SMTP
/// session ring) can register without holding a server handle.
static SECTIONS: Mutex<Vec<(String, Arc<SectionFn>)>> = Mutex::new(Vec::new());

fn sections() -> MutexGuard<'static, Vec<(String, Arc<SectionFn>)>> {
    SECTIONS.lock().unwrap_or_else(|p| p.into_inner())
}

/// Registers (or replaces) a custom `/snapshot.json` section. The
/// callback runs on the aggregation tick and must return a raw JSON
/// value (object, array, or scalar).
pub fn register_section(name: &str, f: impl Fn() -> String + Send + Sync + 'static) {
    let mut secs = sections();
    if let Some(slot) = secs.iter_mut().find(|(n, _)| n == name) {
        slot.1 = Arc::new(f);
        return;
    }
    secs.push((name.to_owned(), Arc::new(f)));
    secs.sort_by(|(a, _), (b, _)| a.cmp(b));
}

/// Starts the introspection listener on `addr` (port 0 binds an
/// ephemeral port) with default options.
pub fn serve(addr: &str) -> io::Result<TelemetryServer> {
    serve_with(addr, ServeOptions::default())
}

/// Starts the introspection listener with explicit options.
pub fn serve_with(addr: &str, opts: ServeOptions) -> io::Result<TelemetryServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    // First render happens synchronously so even an immediate scrape
    // sees a complete document rather than a 503.
    let cache = Arc::new(Mutex::new(Arc::new(render_all())));

    let tick_thread = {
        let cache = cache.clone();
        let flag = shutdown.clone();
        std::thread::spawn(move || {
            let mut ticks = 0u64;
            while !flag.load(Ordering::Relaxed) {
                sleep_responsive(opts.tick, &flag);
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                let fresh = Arc::new(render_all());
                *cache.lock().unwrap_or_else(|p| p.into_inner()) = fresh;
                ticks += 1;
                metrics::gauge_set("obs.telemetry.ticks", ticks as f64);
            }
        })
    };

    let accept_thread = {
        let cache = cache.clone();
        let flag = shutdown.clone();
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            let mut errors = 0u64;
            for stream in listener.incoming() {
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let doc = cache.lock().unwrap_or_else(|p| p.into_inner()).clone();
                match handle_client(stream, &doc) {
                    Ok(()) => scrapes += 1,
                    Err(_) => errors += 1,
                }
                metrics::gauge_set("obs.telemetry.scrapes", scrapes as f64);
                if errors > 0 {
                    metrics::gauge_set("obs.telemetry.http_errors", errors as f64);
                }
            }
        })
    };

    Ok(TelemetryServer {
        addr: local,
        shutdown,
        accept_thread: Some(accept_thread),
        tick_thread: Some(tick_thread),
    })
}

impl TelemetryServer {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a dummy connection; if the connect
        // fails the listener is already gone and accept errors out.
        if let Ok(wake) = TcpStream::connect(self.addr) {
            drop(wake);
        }
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        if let Some(h) = self.tick_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Sleeps up to `total`, polling `flag` so shutdown is prompt even with
/// slow ticks.
fn sleep_responsive(total: Duration, flag: &AtomicBool) {
    let step = Duration::from_millis(25);
    let mut remaining = total;
    while remaining > Duration::ZERO && !flag.load(Ordering::Relaxed) {
        let chunk = remaining.min(step);
        std::thread::sleep(chunk);
        remaining = remaining.saturating_sub(chunk);
    }
}

/// Answers one HTTP request on `stream` from the cached documents.
fn handle_client(mut stream: TcpStream, doc: &Rendered) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the end of the request head (we ignore bodies).
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > 8192 {
            return respond(&mut stream, 431, "text/plain", "head too large\n");
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "only GET\n");
    }
    match path {
        "/healthz" => respond(&mut stream, 200, "text/plain", "ok\n"),
        "/metrics" => respond(
            &mut stream,
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &doc.metrics_text,
        ),
        "/snapshot.json" => respond(&mut stream, 200, "application/json", &doc.snapshot_json),
        _ => respond(&mut stream, 404, "text/plain", "unknown path\n"),
    }
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str) -> io::Result<()> {
    let reason = match code {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A metric name in Prometheus grammar: dots (and any other separator)
/// become underscores.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders both endpoint bodies from one pass over the registry.
fn render_all() -> Rendered {
    let counters = metrics::counters();
    let gauges = metrics::gauges();
    let latencies = latency::snapshots();
    let histograms: Vec<(String, metrics::Histogram)> = counter_histograms();
    Rendered {
        metrics_text: render_metrics(&counters, &gauges, &histograms, &latencies),
        snapshot_json: render_snapshot(&counters, &gauges, &histograms, &latencies),
    }
}

/// Every fixed-bucket histogram in the registry, by name.
fn counter_histograms() -> Vec<(String, metrics::Histogram)> {
    crate::sharded::merged_histograms()
        .into_iter()
        .map(|(name, (bounds, counts))| (name, metrics::Histogram { bounds, counts }))
        .collect()
}

const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")];

fn render_metrics(
    counters: &[(String, u64)],
    gauges: &[(String, f64)],
    histograms: &[(String, metrics::Histogram)],
    latencies: &[(String, latency::LatencyHistogram)],
) -> String {
    let mut out = String::new();
    for (name, value) in counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, h) in histograms {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cumulative += count;
            out.push_str(&format!("{n}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        let total = h.total();
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {total}\n"));
        out.push_str(&format!("{n}_count {total}\n"));
    }
    for (name, h) in latencies {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, label) in QUANTILES {
            let v = h.quantile(q).unwrap_or(0);
            out.push_str(&format!("{n}{{quantile=\"{label}\"}} {v}\n"));
        }
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum(), h.count()));
    }
    out
}

fn render_snapshot(
    counters: &[(String, u64)],
    gauges: &[(String, f64)],
    histograms: &[(String, metrics::Histogram)],
    latencies: &[(String, latency::LatencyHistogram)],
) -> String {
    let mut out = String::from("{\n  \"uptime_us\": ");
    out.push_str(&crate::clock::monotonic_micros().to_string());
    out.push_str(",\n  \"counters\": {");
    for (i, (name, value)) in counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        json::write_str(&mut out, name);
        out.push_str(": ");
        out.push_str(&value.to_string());
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in gauges.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        json::write_str(&mut out, name);
        out.push_str(": ");
        json::write_f64(&mut out, *value);
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, h)) in histograms.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        json::write_str(&mut out, name);
        out.push_str(": {\"bounds\": ");
        json::write_u64_array(&mut out, &h.bounds);
        out.push_str(", \"counts\": ");
        json::write_u64_array(&mut out, &h.counts);
        out.push('}');
    }
    out.push_str("\n  },\n  \"latency\": {");
    for (i, (name, h)) in latencies.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        json::write_str(&mut out, name);
        out.push_str(&format!(
            ": {{\"count\": {}, \"sum\": {}, \"max\": {}",
            h.count(),
            h.sum(),
            h.max()
        ));
        for (q, label) in QUANTILES {
            out.push_str(&format!(
                ", \"p{}\": {}",
                label.trim_start_matches("0."),
                h.quantile(q).unwrap_or(0)
            ));
        }
        out.push('}');
    }
    out.push_str("\n  },\n  \"sections\": {");
    let secs: Vec<(String, Arc<SectionFn>)> = sections().clone();
    for (i, (name, f)) in secs.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        json::write_str(&mut out, name);
        out.push_str(": ");
        out.push_str(&f());
    }
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn endpoints_serve_cached_registry() {
        let _guard = crate::test_lock();
        metrics::reset();
        latency::reset();
        metrics::counter_add("serve.test_counter", 7);
        metrics::gauge_set("serve.test_gauge", 1.5);
        metrics::histogram_record("serve.test_hist", &[10, 100], 42);
        latency::recorder("serve.test_us").record(1234);
        let srv = serve_with(
            "127.0.0.1:0",
            ServeOptions {
                tick: Duration::from_millis(20),
            },
        )
        .unwrap();

        let (head, body) = get(srv.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, body) = get(srv.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("# TYPE serve_test_counter counter"));
        assert!(body.contains("serve_test_counter 7"));
        assert!(body.contains("# TYPE serve_test_gauge gauge"));
        assert!(body.contains("serve_test_hist_bucket{le=\"100\"} 1"));
        assert!(body.contains("serve_test_us{quantile=\"0.999\"}"));

        let (_, body) = get(srv.addr(), "/snapshot.json");
        assert!(body.contains("\"serve.test_counter\": 7"));
        assert!(body.contains("\"uptime_us\""));
        assert!(body.contains("\"p999\""));

        let (head, _) = get(srv.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        drop(srv);
        metrics::reset();
        latency::reset();
    }

    #[test]
    fn sections_render_into_snapshot() {
        let _guard = crate::test_lock();
        metrics::reset();
        register_section("unit_test_section", || "{\"n\": 3}".to_owned());
        let srv = serve("127.0.0.1:0").unwrap();
        let (_, body) = get(srv.addr(), "/snapshot.json");
        assert!(body.contains("\"unit_test_section\": {\"n\": 3}"), "{body}");
        drop(srv);
        metrics::reset();
    }

    #[test]
    fn prom_names_are_sanitized() {
        assert_eq!(
            prom_name("smtp.session_outcome.no_error"),
            "smtp_session_outcome_no_error"
        );
        assert_eq!(prom_name("a-b.c"), "a_b_c");
    }
}
