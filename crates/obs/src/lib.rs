//! `ets-obs` — dependency-free observability for the measurement
//! pipeline: hierarchical spans, a global metrics registry, a JSONL
//! structured event log, and Chrome-trace export.
//!
//! A multi-stage, multi-threaded measurement run needs per-stage
//! accounting — *where did the funnel drop these emails, which worker
//! ran long* — but this repository's defining invariant is that
//! `results/*.json` is a pure function of `(seed, scale)`. The crate
//! therefore splits observability along that determinism boundary:
//!
//! * [`metrics`] counters and fixed-bucket histograms hold workload
//!   quantities whose updates commute, so their final values (and the
//!   [`metrics::snapshot_json`] rendering) are byte-identical across
//!   thread counts. Gauges and stage timings may carry wall-clock
//!   values and stay out of the snapshot.
//! * [`mod@span`] spans carry wall-clock timestamps and live only in trace
//!   artifacts (`trace.json` / `trace.jsonl`), written by [`trace`].
//! * [`latency`] log-linear histograms hold wall-clock durations with
//!   p50/p99/p999 quantile extraction; like gauges they are excluded
//!   from the deterministic snapshot and surface through the live
//!   [`serve`] introspection endpoints (`/metrics`, `/snapshot.json`,
//!   `/healthz`).
//! * [`clock`] is the single module allowed to read the wall clock —
//!   `ets-lint`'s `nondeterministic-source` rule allowlists exactly
//!   `crates/obs/src/clock.rs` and denies `Instant::now` everywhere
//!   else, including the rest of this crate.
//!
//! Tracing is **off by default**: every span entry point is a no-op
//! behind one relaxed atomic load until [`trace::enable`] is called
//! (the `repro --trace <file>` flag, filtered by the `ETS_TRACE`
//! env var — see [`filter`]).
//!
//! ```
//! let _stage = ets_obs::span!("funnel.layer2");
//! ets_obs::metrics::counter_add("funnel.emails", 128);
//! ```

#![forbid(unsafe_code)]

pub mod clock;
pub mod filter;
mod json;
pub mod latency;
pub mod mem;
pub mod metrics;
pub mod serve;
mod sharded;
pub mod span;
pub mod trace;

pub use filter::{Filter, Level};
pub use span::SpanGuard;

/// Serializes tests that touch the process-global registry/sink.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}
