//! Peak-memory accounting for the streaming pipeline (the `MemGauge`).
//!
//! The repository's crate-hygiene rule (`#![forbid(unsafe_code)]` in
//! every crate root) rules out a counting `GlobalAlloc` — allocator
//! hooks are unsafe by definition — so this gauge tracks **logical live
//! bytes** instead: pipeline stages register payload bytes when a work
//! unit enters the engine ([`add`]) and release them when it is handed
//! off downstream ([`sub`]); a CAS loop maintains the high-water mark
//! ([`peak`]). That measures exactly the quantity the bounded-memory
//! claim is about — bytes of email payload the pipeline holds in flight
//! — without allocator-slack noise.
//!
//! Like the gauges in [`crate::metrics`], these values are scheduling
//! territory: the peak depends on thread interleaving, so it flows into
//! `bench_*` artifacts only, never into deterministic snapshots.
//!
//! The `mem-gauge` cargo feature (default-on) compiles the accounting;
//! without it every function is a no-op returning zero.

#[cfg(feature = "mem-gauge")]
mod imp {
    use std::sync::atomic::{AtomicU64, Ordering};

    static LIVE: AtomicU64 = AtomicU64::new(0);
    static PEAK: AtomicU64 = AtomicU64::new(0);

    pub fn add(bytes: u64) {
        let now = LIVE.fetch_add(bytes, Ordering::AcqRel) + bytes;
        let mut peak = PEAK.load(Ordering::Acquire);
        while now > peak {
            match PEAK.compare_exchange_weak(peak, now, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => break,
                Err(observed) => peak = observed,
            }
        }
    }

    pub fn sub(bytes: u64) {
        // Saturate rather than wrap: an unbalanced release is a caller
        // bug, but a gauge must never explode to 2^64.
        let _ = LIVE.fetch_update(Ordering::AcqRel, Ordering::Acquire, |v| {
            Some(v.saturating_sub(bytes))
        });
    }

    pub fn live() -> u64 {
        LIVE.load(Ordering::Acquire)
    }

    pub fn peak() -> u64 {
        PEAK.load(Ordering::Acquire)
    }

    pub fn reset_peak() {
        PEAK.store(LIVE.load(Ordering::Acquire), Ordering::Release);
    }

    pub fn reset() {
        LIVE.store(0, Ordering::Release);
        PEAK.store(0, Ordering::Release);
    }
}

#[cfg(not(feature = "mem-gauge"))]
mod imp {
    pub fn add(_bytes: u64) {}
    pub fn sub(_bytes: u64) {}
    pub fn live() -> u64 {
        0
    }
    pub fn peak() -> u64 {
        0
    }
    pub fn reset_peak() {}
    pub fn reset() {}
}

/// Registers `bytes` of payload entering the pipeline, raising the peak
/// watermark if the new live total exceeds it.
pub fn add(bytes: u64) {
    imp::add(bytes);
}

/// Releases `bytes` of payload handed off downstream (saturating at 0).
pub fn sub(bytes: u64) {
    imp::sub(bytes);
}

/// Payload bytes currently in flight.
pub fn live() -> u64 {
    imp::live()
}

/// The high-water mark of [`live`] since the last [`reset_peak`].
pub fn peak() -> u64 {
    imp::peak()
}

/// Restarts the peak watermark at the current live total — call at a
/// stage boundary to measure that stage's own peak.
pub fn reset_peak() {
    imp::reset_peak();
}

/// Zeroes both counters (tests only).
pub fn reset() {
    imp::reset();
}

#[cfg(all(test, feature = "mem-gauge"))]
mod tests {
    use super::*;

    #[test]
    fn watermark_tracks_high_water() {
        let _guard = crate::test_lock();
        reset();
        add(100);
        add(50);
        assert_eq!(live(), 150);
        assert_eq!(peak(), 150);
        sub(120);
        assert_eq!(live(), 30);
        assert_eq!(peak(), 150, "peak survives release");
        reset_peak();
        assert_eq!(peak(), 30);
        add(10);
        assert_eq!(peak(), 40);
        sub(1000);
        assert_eq!(live(), 0, "release saturates at zero");
        reset();
    }

    #[test]
    fn concurrent_adds_never_lose_bytes() {
        let _guard = crate::test_lock();
        reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..10_000 {
                        add(3);
                        sub(3);
                    }
                });
            }
        });
        assert_eq!(live(), 0);
        assert!(peak() >= 3);
        reset();
    }
}
