//! Per-thread sharded recording backend for counters and fixed-bucket
//! histograms.
//!
//! The v1 registry funneled every `counter_add` through one global
//! `Mutex<BTreeMap>`. Under the serving path's per-connection threads
//! (and the fan-out workers of `ets-parallel`) that mutex becomes the
//! contention point, so recording is now sharded:
//!
//! * Each recording thread lazily registers one **shard** and caches
//!   `Arc`-shared atomic cells per metric name in a thread-local map.
//!   The steady-state hot path is one epoch load, one local lookup, and
//!   one `fetch_add(Relaxed)` — no global lock, no inter-thread cache
//!   traffic beyond the cell itself.
//! * Readers (`merged_counters`, `merged_histograms`, the snapshot)
//!   merge the retired state with every live shard by **summing `u64`
//!   cells** — a commutative, associative merge, so the totals (and the
//!   rendered snapshot) are a pure function of the workload, never of
//!   thread count or scheduling. This preserves the PR 4 determinism
//!   boundary verbatim.
//! * When a thread exits, its `Local` cache drops and the shard's cells
//!   are folded into the global retired maps ([`retire_shard`]), so the
//!   live-shard list stays bounded by the number of *live* threads.
//!   `std::thread` runs TLS destructors before `join` returns, so after
//!   a `thread::scope` (or an `ets-parallel` fan-out) completes, every
//!   worker's counts are already retired.
//!
//! `reset()` bumps a global epoch: stale thread-local caches detect the
//! mismatch on their next record and re-register a fresh shard, which
//! keeps the test-only reset coherent without blocking the hot path.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One histogram's shared recording cell: canonical bounds plus one
/// atomic count per bucket (`counts.len() == bounds.len() + 1`, the last
/// being the overflow bucket).
pub(crate) struct HistCell {
    bounds: Arc<Vec<u64>>,
    counts: Vec<AtomicU64>,
}

impl HistCell {
    fn new(bounds: Arc<Vec<u64>>) -> HistCell {
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        HistCell { bounds, counts }
    }

    fn record(&self, value: u64) {
        let i = self.bounds.partition_point(|&b| b < value);
        self.counts[i].fetch_add(1, Ordering::Relaxed);
    }

    fn load_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// One thread's shard. The maps are only locked on a thread's *first*
/// touch of a given metric name (and by readers); steady-state records
/// go straight to the cached `Arc` cells.
#[derive(Default)]
struct Shard {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    hists: Mutex<BTreeMap<String, Arc<HistCell>>>,
}

/// Global sharded state: the live shard list, the folded state of exited
/// threads, and the canonical (first-registration-wins) histogram
/// bounds.
struct Global {
    shards: Vec<Arc<Shard>>,
    retired_counters: BTreeMap<String, u64>,
    /// Counts only; bounds come from `canonical_bounds`.
    retired_hists: BTreeMap<String, Vec<u64>>,
    canonical_bounds: BTreeMap<String, Arc<Vec<u64>>>,
}

static GLOBAL: Mutex<Global> = Mutex::new(Global {
    shards: Vec::new(),
    retired_counters: BTreeMap::new(),
    retired_hists: BTreeMap::new(),
    canonical_bounds: BTreeMap::new(),
});

/// Epoch counter bumped by [`reset`]; thread-local caches self-invalidate
/// on mismatch.
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// Poison only means a panicking thread held the guard mid-update; the
/// panic still propagates to the test/process, so recovering here never
/// masks a failure.
fn glock() -> MutexGuard<'static, Global> {
    GLOBAL.lock().unwrap_or_else(|p| p.into_inner())
}

fn shard_counters(shard: &Shard) -> MutexGuard<'_, BTreeMap<String, Arc<AtomicU64>>> {
    shard.counters.lock().unwrap_or_else(|p| p.into_inner())
}

fn shard_hists(shard: &Shard) -> MutexGuard<'_, BTreeMap<String, Arc<HistCell>>> {
    shard.hists.lock().unwrap_or_else(|p| p.into_inner())
}

/// The thread-local recorder: a registered shard plus name→cell caches.
/// The caches are lookup-only (`get`/`insert`/`clear`), never iterated —
/// iteration and merging happen over the shard's ordered maps.
struct Local {
    epoch: u64,
    shard: Arc<Shard>,
    counter_cache: HashMap<String, Arc<AtomicU64>>,
    hist_cache: HashMap<String, Arc<HistCell>>,
}

impl Drop for Local {
    fn drop(&mut self) {
        retire_shard(&self.shard, self.epoch);
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

/// Folds a shard's cells into the retired maps and drops it from the
/// live list. A no-op when `epoch` is stale: `reset` already bumped the
/// epoch and cleared the state this shard belonged to.
fn retire_shard(shard: &Arc<Shard>, epoch: u64) {
    let mut g = glock();
    if EPOCH.load(Ordering::Relaxed) != epoch {
        return;
    }
    let Some(pos) = g.shards.iter().position(|s| Arc::ptr_eq(s, shard)) else {
        return;
    };
    g.shards.swap_remove(pos);
    for (name, cell) in shard_counters(shard).iter() {
        *g.retired_counters.entry(name.clone()).or_insert(0) += cell.load(Ordering::Relaxed);
    }
    for (name, cell) in shard_hists(shard).iter() {
        let fresh = cell.load_counts();
        let folded = g
            .retired_hists
            .entry(name.clone())
            .or_insert_with(|| vec![0; fresh.len()]);
        for (dst, src) in folded.iter_mut().zip(fresh) {
            *dst += src;
        }
    }
}

/// Ensures the calling thread has a current-epoch recorder, registering
/// a fresh shard (and discarding any stale cache) as needed.
fn ensure(slot: &mut Option<Local>) -> &mut Local {
    let current = EPOCH.load(Ordering::Relaxed);
    if slot.as_ref().map(|l| l.epoch) != Some(current) {
        // Dropping a stale recorder is a no-op retire (epoch mismatch).
        *slot = None;
    }
    slot.get_or_insert_with(|| {
        let shard: Arc<Shard> = Arc::default();
        let mut g = glock();
        // Re-read under the lock: `reset` bumps the epoch while holding
        // it, so shard registration and epoch observation are coherent.
        let epoch = EPOCH.load(Ordering::Relaxed);
        g.shards.push(shard.clone());
        drop(g);
        Local {
            epoch,
            shard,
            counter_cache: HashMap::new(),
            hist_cache: HashMap::new(),
        }
    })
}

/// Adds `delta` to the named counter (created at zero) via the calling
/// thread's shard.
pub(crate) fn counter_add(name: &str, delta: u64) {
    let direct = LOCAL.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let l = ensure(&mut slot);
        if let Some(cell) = l.counter_cache.get(name) {
            cell.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        let cell = shard_counters(&l.shard)
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        cell.fetch_add(delta, Ordering::Relaxed);
        l.counter_cache.insert(name.to_owned(), cell);
    });
    if direct.is_err() {
        // TLS already torn down (a destructor is recording): fold the
        // delta straight into the retired state.
        let mut g = glock();
        *g.retired_counters.entry(name.to_owned()).or_insert(0) += delta;
    }
}

/// Records one histogram value via the calling thread's shard. Bounds
/// are canonicalized on first registration; a mismatching caller gets
/// `Err` with the canonical bounds (and the value is dropped).
pub(crate) fn histogram_record(
    name: &str,
    bounds: &[u64],
    value: u64,
) -> Result<(), Arc<Vec<u64>>> {
    let recorded = LOCAL.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let l = ensure(&mut slot);
        if let Some(cell) = l.hist_cache.get(name) {
            if cell.bounds.as_slice() != bounds {
                return Err(cell.bounds.clone());
            }
            cell.record(value);
            return Ok(());
        }
        let canonical = canonical_bounds(name, bounds);
        if canonical.as_slice() != bounds {
            return Err(canonical);
        }
        let cell = shard_hists(&l.shard)
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(HistCell::new(canonical)))
            .clone();
        cell.record(value);
        l.hist_cache.insert(name.to_owned(), cell);
        Ok(())
    });
    match recorded {
        Ok(r) => r,
        Err(_) => {
            // TLS torn down: record into the retired counts directly.
            let canonical = canonical_bounds(name, bounds);
            if canonical.as_slice() != bounds {
                return Err(canonical);
            }
            let mut g = glock();
            let counts = g
                .retired_hists
                .entry(name.to_owned())
                .or_insert_with(|| vec![0; bounds.len() + 1]);
            let i = bounds.partition_point(|&b| b < value);
            counts[i] += 1;
            Ok(())
        }
    }
}

/// The canonical bounds for `name`: registers `bounds` on first use.
fn canonical_bounds(name: &str, bounds: &[u64]) -> Arc<Vec<u64>> {
    let mut g = glock();
    g.canonical_bounds
        .entry(name.to_owned())
        .or_insert_with(|| Arc::new(bounds.to_vec()))
        .clone()
}

/// Current merged value of one counter (zero when never touched).
pub(crate) fn counter_value(name: &str) -> u64 {
    let g = glock();
    let mut total = g.retired_counters.get(name).copied().unwrap_or(0);
    for shard in &g.shards {
        if let Some(cell) = shard_counters(shard).get(name) {
            total += cell.load(Ordering::Relaxed);
        }
    }
    total
}

/// All counters, merged across retired state and live shards.
pub(crate) fn merged_counters() -> BTreeMap<String, u64> {
    let g = glock();
    let mut out = g.retired_counters.clone();
    for shard in &g.shards {
        for (name, cell) in shard_counters(shard).iter() {
            *out.entry(name.clone()).or_insert(0) += cell.load(Ordering::Relaxed);
        }
    }
    out
}

/// All histograms as `(bounds, counts)`, merged across retired state and
/// live shards.
pub(crate) fn merged_histograms() -> BTreeMap<String, (Vec<u64>, Vec<u64>)> {
    let g = glock();
    let mut out: BTreeMap<String, (Vec<u64>, Vec<u64>)> = BTreeMap::new();
    for (name, bounds) in g.canonical_bounds.iter() {
        let mut counts = vec![0u64; bounds.len() + 1];
        if let Some(folded) = g.retired_hists.get(name) {
            for (dst, src) in counts.iter_mut().zip(folded) {
                *dst += src;
            }
        }
        for shard in &g.shards {
            if let Some(cell) = shard_hists(shard).get(name) {
                for (dst, src) in counts.iter_mut().zip(cell.load_counts()) {
                    *dst += src;
                }
            }
        }
        // Bounds registered by a conflicting caller may never have been
        // recorded into; surface them anyway (all-zero counts) so the
        // registry's view matches what `histogram_record` accepted.
        out.insert(name.clone(), (bounds.as_ref().clone(), counts));
    }
    out
}

/// One merged histogram, if its bounds were ever registered.
pub(crate) fn merged_histogram(name: &str) -> Option<(Vec<u64>, Vec<u64>)> {
    merged_histograms().remove(name)
}

/// Flushes the calling thread's shard into the retired state and drops
/// its caches. Recording from this thread remains valid (a fresh shard
/// is registered on the next record); retiring eagerly keeps the live
/// shard list — and thus reader latency — bounded when many short-lived
/// worker threads record.
pub fn retire_local() {
    // Ignore errors during TLS teardown: the destructor already retired.
    let _ = LOCAL.try_with(|slot| {
        *slot.borrow_mut() = None;
    });
}

/// Clears all sharded state and invalidates every thread-local cache
/// (tests only — production code records for the life of the process).
pub(crate) fn reset() {
    let mut g = glock();
    EPOCH.fetch_add(1, Ordering::Relaxed);
    g.shards.clear();
    g.retired_counters.clear();
    g.retired_hists.clear();
    g.canonical_bounds.clear();
}
