//! The global trace sink and its exporters.
//!
//! While tracing is enabled, closed spans accumulate in an in-memory
//! sink; [`export`] then writes three sibling artifacts:
//!
//! * `<path>` — Chrome trace format (an object with `traceEvents` of
//!   `ph: "X"` complete events), loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev);
//! * `<base>.jsonl` — one JSON object per line: every span, then every
//!   gauge, stage timing, counter, and histogram;
//! * `<base>.metrics.json` — the deterministic counter/histogram
//!   snapshot ([`crate::metrics::snapshot_json`]), byte-identical across
//!   thread counts.
//!
//! (`<base>` is `<path>` minus a trailing `.json`, so `--trace
//! trace.json` yields `trace.json`, `trace.jsonl`, `trace.metrics.json`.)
//!
//! Span timestamps are wall-clock microseconds from [`crate::clock`] —
//! nondeterministic by nature, which is why they live here and never in
//! `results/*.json`.

use crate::filter::{Filter, Level};
use crate::{json, metrics};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

/// One closed span.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Unique span id (never 0).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Dotted span name, e.g. `funnel.layer3`.
    pub name: String,
    /// Level the span was opened at.
    pub level: Level,
    /// Trace thread label: 0 = main thread, worker index + 1 in fan-outs.
    pub tid: u64,
    /// Start, microseconds since the process clock epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Numeric attachments (e.g. `items` processed by a worker).
    pub args: Vec<(&'static str, u64)>,
}

struct State {
    filter: Filter,
    events: Vec<SpanEvent>,
}

/// Fast-path gate checked on every span entry.
static ENABLED: AtomicBool = AtomicBool::new(false);

static STATE: Mutex<State> = Mutex::new(State {
    filter: Filter::off(),
    events: Vec::new(),
});

fn lock() -> MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(|p| p.into_inner())
}

/// Enables tracing under `filter`. Returns `false` (and stays disabled)
/// when the filter can never record anything.
pub fn enable(filter: Filter) -> bool {
    let mut s = lock();
    if filter.is_off() {
        ENABLED.store(false, Ordering::Relaxed);
        return false;
    }
    s.filter = filter;
    ENABLED.store(true, Ordering::Relaxed);
    true
}

/// Disables tracing and clears any buffered events.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut s = lock();
    s.filter = Filter::off();
    s.events.clear();
}

/// Whether tracing is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether a span named `name` at `level` should be recorded now.
pub(crate) fn should_record(name: &str, level: Level) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    lock().filter.enabled(name, level)
}

/// Buffers one closed span.
pub(crate) fn push(event: SpanEvent) {
    lock().events.push(event);
}

/// Removes and returns all buffered spans, ordered by start time then id.
pub fn drain() -> Vec<SpanEvent> {
    let mut events = std::mem::take(&mut lock().events);
    events.sort_by_key(|e| (e.start_us, e.id));
    events
}

/// The three artifact paths derived from a `--trace` path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportPaths {
    /// Chrome-trace-format file (the path as given).
    pub chrome: String,
    /// JSONL structured event log.
    pub jsonl: String,
    /// Deterministic counter/histogram snapshot.
    pub metrics: String,
}

/// Derives the sibling artifact paths for a `--trace` path.
pub fn artifact_paths(path: &str) -> ExportPaths {
    let base = path.strip_suffix(".json").unwrap_or(path);
    ExportPaths {
        chrome: path.to_owned(),
        jsonl: format!("{base}.jsonl"),
        metrics: format!("{base}.metrics.json"),
    }
}

/// Drains the sink and writes the three trace artifacts, creating parent
/// directories as needed.
pub fn export(path: &str) -> io::Result<ExportPaths> {
    let paths = artifact_paths(path);
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let events = drain();
    std::fs::write(&paths.chrome, chrome_trace(&events))?;
    std::fs::write(&paths.jsonl, jsonl_log(&events))?;
    std::fs::write(&paths.metrics, metrics::snapshot_json())?;
    Ok(paths)
}

/// Renders events in Chrome trace format.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    out.push_str(
        "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"ets pipeline\"}}",
    );
    for e in events {
        out.push_str(",\n{\"name\": ");
        json::write_str(&mut out, &e.name);
        out.push_str(", \"cat\": ");
        json::write_str(&mut out, e.level.as_str());
        out.push_str(&format!(
            ", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}",
            e.start_us, e.dur_us, e.tid
        ));
        out.push_str(&format!(
            ", \"args\": {{\"id\": {}, \"parent\": {}",
            e.id, e.parent
        ));
        for (k, v) in &e.args {
            out.push_str(", ");
            json::write_str(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        out.push_str("}}");
    }
    out.push_str("\n], \"displayTimeUnit\": \"ms\"}\n");
    out
}

/// Renders the JSONL structured log: spans first (by start time), then
/// gauges, stage timings, counters, and histogram lines.
pub fn jsonl_log(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str("{\"type\": \"span\", \"id\": ");
        out.push_str(&e.id.to_string());
        out.push_str(&format!(", \"parent\": {}, \"name\": ", e.parent));
        json::write_str(&mut out, &e.name);
        out.push_str(", \"level\": ");
        json::write_str(&mut out, e.level.as_str());
        out.push_str(&format!(
            ", \"tid\": {}, \"ts_us\": {}, \"dur_us\": {}, \"args\": {{",
            e.tid, e.start_us, e.dur_us
        ));
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        out.push_str("}}\n");
    }
    for (name, value) in metrics::gauges() {
        out.push_str("{\"type\": \"gauge\", \"name\": ");
        json::write_str(&mut out, &name);
        out.push_str(", \"value\": ");
        json::write_f64(&mut out, value);
        out.push_str("}\n");
    }
    for (name, secs) in metrics::stage_timeline() {
        out.push_str("{\"type\": \"stage\", \"name\": ");
        json::write_str(&mut out, &name);
        out.push_str(", \"seconds\": ");
        json::write_f64(&mut out, secs);
        out.push_str("}\n");
    }
    for (name, value) in metrics::counters() {
        out.push_str("{\"type\": \"counter\", \"name\": ");
        json::write_str(&mut out, &name);
        out.push_str(&format!(", \"value\": {value}}}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_round_trips_through_serde_json() {
        let _guard = crate::test_lock();
        metrics::reset();
        disable();
        enable(Filter::all());
        {
            let mut outer = crate::span::enter("test.export.outer");
            outer.arg("items", 3);
            let _inner = crate::span::enter("test.export.inner");
            metrics::counter_add("test.export.count", 7);
            metrics::gauge_set("test.export.rate", 1.5);
            metrics::histogram_record("test.export.h", &[1, 2], 2);
            metrics::stage_record("test_export_stage", 0.25);
        }
        let dir = std::env::temp_dir().join(format!("ets-obs-test-{}", std::process::id()));
        let path = dir.join("trace.json");
        let paths = export(path.to_str().unwrap()).unwrap();
        disable();

        // Chrome trace: parses, and holds both spans as "X" events.
        let chrome = std::fs::read_to_string(&paths.chrome).unwrap();
        let chrome: serde_json::Value = serde_json::from_str(&chrome).unwrap();
        let te = chrome.get("traceEvents").unwrap().as_array().unwrap();
        let names: Vec<&str> = te
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .filter_map(|e| e.get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"test.export.outer"));
        assert!(names.contains(&"test.export.inner"));

        // JSONL: every line parses; span parents link up; metrics lines
        // are present.
        let jsonl = std::fs::read_to_string(&paths.jsonl).unwrap();
        let lines: Vec<serde_json::Value> = jsonl
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        let span_of = |name: &str| {
            lines
                .iter()
                .find(|l| {
                    l.get("type").and_then(|t| t.as_str()) == Some("span")
                        && l.get("name").and_then(|n| n.as_str()) == Some(name)
                })
                .unwrap()
        };
        let outer = span_of("test.export.outer");
        let inner = span_of("test.export.inner");
        assert_eq!(
            inner.get("parent").and_then(|v| v.as_u64()),
            outer.get("id").and_then(|v| v.as_u64())
        );
        assert_eq!(
            outer
                .get("args")
                .and_then(|a| a.get("items"))
                .and_then(|v| v.as_u64()),
            Some(3)
        );
        assert!(lines.iter().any(|l| {
            l.get("type").and_then(|t| t.as_str()) == Some("counter")
                && l.get("name").and_then(|n| n.as_str()) == Some("test.export.count")
                && l.get("value").and_then(|v| v.as_u64()) == Some(7)
        }));
        assert!(lines.iter().any(|l| {
            l.get("type").and_then(|t| t.as_str()) == Some("gauge")
                && l.get("value").and_then(|v| v.as_f64()) == Some(1.5)
        }));
        assert!(lines.iter().any(|l| {
            l.get("type").and_then(|t| t.as_str()) == Some("stage")
                && l.get("name").and_then(|n| n.as_str()) == Some("test_export_stage")
        }));

        // Metrics snapshot: parses, has the counter, and excludes gauges.
        let snap = std::fs::read_to_string(&paths.metrics).unwrap();
        let snap_v: serde_json::Value = serde_json::from_str(&snap).unwrap();
        assert_eq!(
            snap_v
                .get("counters")
                .and_then(|c| c.get("test.export.count"))
                .and_then(|v| v.as_u64()),
            Some(7)
        );
        assert!(!snap.contains("test.export.rate"));
        metrics::reset();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_paths_strip_a_json_suffix_only() {
        let p = artifact_paths("out/trace.json");
        assert_eq!(p.jsonl, "out/trace.jsonl");
        assert_eq!(p.metrics, "out/trace.metrics.json");
        let p = artifact_paths("out/mytrace");
        assert_eq!(p.chrome, "out/mytrace");
        assert_eq!(p.jsonl, "out/mytrace.jsonl");
        assert_eq!(p.metrics, "out/mytrace.metrics.json");
    }

    #[test]
    fn enable_refuses_an_off_filter() {
        let _guard = crate::test_lock();
        disable();
        assert!(!enable(Filter::off()));
        assert!(!is_enabled());
    }
}
