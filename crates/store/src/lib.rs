//! # ets-store
//!
//! A versioned, checksummed, **section-based** on-disk container for
//! pipeline snapshots — the persistence layer under the ecosystem's
//! world snapshot.
//!
//! The format follows the layered-state pattern of production state
//! stores: a fixed header (magic, container version, application
//! version), an opaque application meta blob, a table of contents of
//! named sections (length + FNV-1a checksum each), the section payloads
//! back to back, and a trailing whole-file checksum. Readers validate
//! structure and the file checksum on open, and each section's checksum
//! on first access, so truncation, bit flips, and stale formats all
//! surface as typed [`StoreError`]s — never a panic and never silently
//! wrong data.
//!
//! Reload is near-zero-copy: [`Snapshot::open`] reads the file into one
//! buffer, and [`SectionReader`] hands out borrowed slices (string
//! arenas, raw columns) directly from it; only fixed-width column
//! decodes copy, element by element, because this workspace forbids
//! `unsafe` transmutes.
//!
//! Everything is little-endian and independent of the host. The
//! container carries *no* domain knowledge: what the sections mean is
//! the application's business (see `ets_ecosystem::snapshot`).

#![forbid(unsafe_code)]

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const MAGIC: [u8; 8] = *b"ETSSTOR\x01";
/// Version of the *container layout* itself (header/TOC/checksum
/// framing). Bumped only when this module's framing changes;
/// applications carry their own format version on top.
pub const CONTAINER_VERSION: u32 = 1;

/// Why a snapshot could not be written or read back. Every variant is a
/// recoverable condition: callers fall back to a fresh build and log the
/// reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(String),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The container layout version is not one this reader understands.
    UnsupportedContainer {
        /// Version found in the header.
        found: u32,
    },
    /// The file ends before its own structure says it should.
    Truncated,
    /// A checksum did not match; `section` is empty for the whole-file
    /// checksum.
    ChecksumMismatch {
        /// Name of the failing section, or empty for the file trailer.
        section: String,
    },
    /// The named section is not present in the table of contents.
    MissingSection(String),
    /// Structurally invalid content (bad lengths, non-UTF-8 names, a
    /// cursor read past a section's end).
    Malformed(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            StoreError::UnsupportedContainer { found } => {
                write!(
                    f,
                    "unsupported container version {found} (reader supports {CONTAINER_VERSION})"
                )
            }
            StoreError::Truncated => write!(f, "truncated snapshot file"),
            StoreError::ChecksumMismatch { section } if section.is_empty() => {
                write!(f, "file checksum mismatch (corrupt snapshot)")
            }
            StoreError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?}")
            }
            StoreError::MissingSection(name) => write!(f, "missing section {name:?}"),
            StoreError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// FNV-1a 64 over `bytes`, continuing from `state`. The workspace's
/// standard cheap stable hash; plenty for integrity against truncation
/// and bit rot (this is not a cryptographic seal).
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf29ce484222325;

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// An in-memory section under construction: a byte buffer with typed
/// little-endian appenders.
#[derive(Debug, Default)]
pub struct SectionBuf {
    buf: Vec<u8>,
}

impl SectionBuf {
    /// An empty section buffer.
    pub fn new() -> SectionBuf {
        SectionBuf::default()
    }

    /// An empty section buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> SectionBuf {
        SectionBuf {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a UTF-8 string with a `u64` length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends a `u8` column with a `u64` count prefix.
    pub fn put_u8s(&mut self, v: &[u8]) {
        self.put_bytes(v);
    }

    /// Appends a `u16` column with a `u64` count prefix.
    pub fn put_u16s(&mut self, v: &[u16]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Appends a `u32` column with a `u64` count prefix.
    pub fn put_u32s(&mut self, v: &[u32]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Appends a `u64` column with a `u64` count prefix.
    pub fn put_u64s(&mut self, v: &[u64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Appends an `f64` column (bit patterns) with a `u64` count prefix.
    pub fn put_f64s(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
}

/// Builds a snapshot file: named sections plus an opaque application
/// meta blob, all framed with checksums by [`SnapshotWriter::finish`].
#[derive(Debug)]
pub struct SnapshotWriter {
    app_version: u32,
    meta: Vec<u8>,
    sections: Vec<(String, SectionBuf)>,
}

impl SnapshotWriter {
    /// A writer for an application snapshot format `app_version`, with
    /// `meta` as the opaque application header (typically JSON).
    pub fn new(app_version: u32, meta: &[u8]) -> SnapshotWriter {
        SnapshotWriter {
            app_version,
            meta: meta.to_vec(),
            sections: Vec::new(),
        }
    }

    /// Adds a named section. Names must be unique; a duplicate replaces
    /// the earlier section (last write wins).
    pub fn add_section(&mut self, name: &str, buf: SectionBuf) {
        if let Some(slot) = self.sections.iter_mut().find(|(n, _)| n == name) {
            slot.1 = buf;
        } else {
            self.sections.push((name.to_owned(), buf));
        }
    }

    /// Serializes the full container to bytes.
    pub fn finish(&self) -> Vec<u8> {
        let payload_len: usize = self.sections.iter().map(|(_, b)| b.buf.len()).sum();
        let mut out = Vec::with_capacity(payload_len + self.meta.len() + 256);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&CONTAINER_VERSION.to_le_bytes());
        out.extend_from_slice(&self.app_version.to_le_bytes());
        out.extend_from_slice(&(self.meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.meta);
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, buf) in &self.sections {
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(buf.buf.len() as u64).to_le_bytes());
            out.extend_from_slice(&fnv1a(FNV_OFFSET, &buf.buf).to_le_bytes());
        }
        for (_, buf) in &self.sections {
            out.extend_from_slice(&buf.buf);
        }
        let file_sum = fnv1a(FNV_OFFSET, &out);
        out.extend_from_slice(&file_sum.to_le_bytes());
        out
    }

    /// Serializes and writes the container to `path` atomically (temp
    /// file in the same directory, then rename), so a crashed writer
    /// never leaves a half-written snapshot behind.
    pub fn write_to(&self, path: &Path) -> Result<(), StoreError> {
        let bytes = self.finish();
        let io = |e: std::io::Error| StoreError::Io(e.to_string());
        let tmp = path.with_extension("tmp");
        let mut f = fs::File::create(&tmp).map_err(io)?;
        f.write_all(&bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
        drop(f);
        fs::rename(&tmp, path).map_err(io)
    }
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

#[derive(Debug)]
struct TocEntry {
    name: String,
    start: usize,
    len: usize,
    checksum: u64,
}

/// A loaded snapshot: one backing buffer plus the parsed table of
/// contents. Sections borrow straight from the buffer.
#[derive(Debug)]
pub struct Snapshot {
    data: Vec<u8>,
    app_version: u32,
    meta_start: usize,
    meta_len: usize,
    toc: Vec<TocEntry>,
}

/// Reads `data[pos..pos+N]` as a fixed-width little-endian integer.
fn take_fixed<const N: usize>(data: &[u8], pos: &mut usize) -> Result<[u8; N], StoreError> {
    let end = pos.checked_add(N).ok_or(StoreError::Truncated)?;
    let slice = data.get(*pos..end).ok_or(StoreError::Truncated)?;
    *pos = end;
    let mut out = [0u8; N];
    out.copy_from_slice(slice);
    Ok(out)
}

impl Snapshot {
    /// Opens and structurally validates a snapshot file: magic,
    /// container version, TOC bounds, and the whole-file checksum (which
    /// catches truncation and bit flips anywhere). Individual section
    /// checksums are re-verified on [`Snapshot::section`] access so a
    /// failure names the damaged section.
    pub fn open(path: &Path) -> Result<Snapshot, StoreError> {
        let data = fs::read(path).map_err(|e| StoreError::Io(e.to_string()))?;
        Snapshot::from_bytes(data)
    }

    /// Parses an already-read container (see [`Snapshot::open`]).
    pub fn from_bytes(data: Vec<u8>) -> Result<Snapshot, StoreError> {
        if data.len() < MAGIC.len() + 8 {
            return Err(StoreError::Truncated);
        }
        if data[..MAGIC.len()] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        // Trailing whole-file checksum first: it covers every other
        // field, so any truncation or flip below fails here already.
        let body_end = data.len() - 8;
        let mut trailer = [0u8; 8];
        trailer.copy_from_slice(&data[body_end..]);
        if fnv1a(FNV_OFFSET, &data[..body_end]) != u64::from_le_bytes(trailer) {
            return Err(StoreError::ChecksumMismatch {
                section: String::new(),
            });
        }
        let mut pos = MAGIC.len();
        let container = u32::from_le_bytes(take_fixed::<4>(&data, &mut pos)?);
        if container != CONTAINER_VERSION {
            return Err(StoreError::UnsupportedContainer { found: container });
        }
        let app_version = u32::from_le_bytes(take_fixed::<4>(&data, &mut pos)?);
        let meta_len = u32::from_le_bytes(take_fixed::<4>(&data, &mut pos)?) as usize;
        let meta_start = pos;
        pos = pos.checked_add(meta_len).ok_or(StoreError::Truncated)?;
        if pos > body_end {
            return Err(StoreError::Truncated);
        }
        let n_sections = u32::from_le_bytes(take_fixed::<4>(&data, &mut pos)?) as usize;
        let mut toc = Vec::with_capacity(n_sections);
        let mut lens = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let name_len = u16::from_le_bytes(take_fixed::<2>(&data, &mut pos)?) as usize;
            let name_end = pos.checked_add(name_len).ok_or(StoreError::Truncated)?;
            let name_bytes = data.get(pos..name_end).ok_or(StoreError::Truncated)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| StoreError::Malformed("non-UTF-8 section name".to_owned()))?
                .to_owned();
            pos = name_end;
            let len = u64::from_le_bytes(take_fixed::<8>(&data, &mut pos)?) as usize;
            let checksum = u64::from_le_bytes(take_fixed::<8>(&data, &mut pos)?);
            lens.push((name, len, checksum));
        }
        // Payload offsets are implicit: sections sit back to back after
        // the TOC, in TOC order.
        let mut start = pos;
        for (name, len, checksum) in lens {
            let end = start.checked_add(len).ok_or(StoreError::Truncated)?;
            if end > body_end {
                return Err(StoreError::Truncated);
            }
            toc.push(TocEntry {
                name,
                start,
                len,
                checksum,
            });
            start = end;
        }
        if start != body_end {
            return Err(StoreError::Malformed(
                "payload length disagrees with table of contents".to_owned(),
            ));
        }
        Ok(Snapshot {
            data,
            app_version,
            meta_start,
            meta_len,
            toc,
        })
    }

    /// The application format version recorded by the writer.
    pub fn app_version(&self) -> u32 {
        self.app_version
    }

    /// The opaque application meta blob.
    pub fn meta(&self) -> &[u8] {
        &self.data[self.meta_start..self.meta_start + self.meta_len]
    }

    /// Names of all sections, in file order.
    pub fn section_names(&self) -> Vec<&str> {
        self.toc.iter().map(|t| t.name.as_str()).collect()
    }

    /// A checksum-verified cursor over the named section's bytes
    /// (borrowed from the file buffer — no copy).
    pub fn section(&self, name: &str) -> Result<SectionReader<'_>, StoreError> {
        let entry = self
            .toc
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| StoreError::MissingSection(name.to_owned()))?;
        let buf = &self.data[entry.start..entry.start + entry.len];
        if fnv1a(FNV_OFFSET, buf) != entry.checksum {
            return Err(StoreError::ChecksumMismatch {
                section: entry.name.clone(),
            });
        }
        Ok(SectionReader {
            name: &entry.name,
            buf,
            pos: 0,
        })
    }
}

/// A bounds-checked little-endian cursor over one section's bytes.
/// Every read returns a typed error instead of panicking, so corrupt
/// content can never abort a run.
#[derive(Debug)]
pub struct SectionReader<'a> {
    name: &'a str,
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    fn short(&self) -> StoreError {
        StoreError::Malformed(format!("section {:?} shorter than its content", self.name))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.short())?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| self.short())?;
        self.pos = end;
        Ok(slice)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// A length prefix, validated against the bytes actually remaining
    /// so a corrupt count can never trigger a huge allocation.
    fn take_count(&mut self, elem_bytes: usize) -> Result<usize, StoreError> {
        let n = u64::from_le_bytes(self.take_array::<8>()?);
        let n = usize::try_from(n).map_err(|_| self.short())?;
        let total = n.checked_mul(elem_bytes).ok_or_else(|| self.short())?;
        if total > self.buf.len() - self.pos {
            return Err(self.short());
        }
        Ok(n)
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take_array::<1>()?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take_array::<2>()?))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take_array::<4>()?))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take_array::<8>()?))
    }

    /// Reads an `f64` by bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed byte slice, borrowed (zero-copy).
    pub fn take_bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let n = self.take_count(1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string slice, borrowed (zero-copy).
    pub fn take_str(&mut self) -> Result<&'a str, StoreError> {
        let bytes = self.take_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| {
            StoreError::Malformed(format!("section {:?}: non-UTF-8 string", self.name))
        })
    }

    /// Reads a count-prefixed `u8` column, borrowed (zero-copy).
    pub fn take_u8s(&mut self) -> Result<&'a [u8], StoreError> {
        self.take_bytes()
    }

    /// Reads a count-prefixed `u16` column (one decode copy).
    pub fn take_u16s(&mut self) -> Result<Vec<u16>, StoreError> {
        let n = self.take_count(2)?;
        let raw = self.take(n * 2)?;
        Ok(raw
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes([c[0], c[1]]))
            .collect())
    }

    /// Reads a count-prefixed `u32` column (one decode copy).
    pub fn take_u32s(&mut self) -> Result<Vec<u32>, StoreError> {
        let n = self.take_count(4)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    /// Reads a count-prefixed `u64` column (one decode copy).
    pub fn take_u64s(&mut self) -> Result<Vec<u64>, StoreError> {
        let n = self.take_count(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Reads a count-prefixed `f64` column (bit patterns, one decode
    /// copy — exact round-trip).
    pub fn take_f64s(&mut self) -> Result<Vec<f64>, StoreError> {
        Ok(self.take_u64s()?.into_iter().map(f64::from_bits).collect())
    }

    /// Asserts the section was fully consumed — catches writer/reader
    /// schema drift early.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(StoreError::Malformed(format!(
                "section {:?}: {} trailing bytes",
                self.name,
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new(7, br#"{"seed":42}"#);
        let mut a = SectionBuf::new();
        a.put_u32s(&[1, 2, 3, u32::MAX]);
        a.put_str("hello.example");
        w.add_section("alpha", a);
        let mut b = SectionBuf::new();
        b.put_f64s(&[0.5, -1.25, f64::MIN_POSITIVE]);
        b.put_u8(9);
        b.put_u16s(&[700, 0]);
        w.add_section("beta", b);
        w.finish()
    }

    #[test]
    fn round_trips_all_types() {
        let snap = Snapshot::from_bytes(sample()).unwrap();
        assert_eq!(snap.app_version(), 7);
        assert_eq!(snap.meta(), br#"{"seed":42}"#);
        assert_eq!(snap.section_names(), vec!["alpha", "beta"]);
        let mut a = snap.section("alpha").unwrap();
        assert_eq!(a.take_u32s().unwrap(), vec![1, 2, 3, u32::MAX]);
        assert_eq!(a.take_str().unwrap(), "hello.example");
        a.finish().unwrap();
        let mut b = snap.section("beta").unwrap();
        assert_eq!(b.take_f64s().unwrap(), vec![0.5, -1.25, f64::MIN_POSITIVE]);
        assert_eq!(b.take_u8().unwrap(), 9);
        assert_eq!(b.take_u16s().unwrap(), vec![700, 0]);
        b.finish().unwrap();
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(StoreError::BadMagic)
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let good = sample();
        for i in 0..good.len() {
            let mut bytes = good.clone();
            bytes[i] ^= 0x40;
            let result = Snapshot::from_bytes(bytes).map(|_| ());
            assert!(result.is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let good = sample();
        for keep in 0..good.len() {
            let result = Snapshot::from_bytes(good[..keep].to_vec()).map(|_| ());
            assert!(result.is_err(), "truncation to {keep} bytes undetected");
        }
    }

    #[test]
    fn missing_section_and_overread_are_errors() {
        let snap = Snapshot::from_bytes(sample()).unwrap();
        assert!(matches!(
            snap.section("gamma"),
            Err(StoreError::MissingSection(_))
        ));
        let mut a = snap.section("alpha").unwrap();
        let _ = a.take_u32s().unwrap();
        let _ = a.take_str().unwrap();
        assert!(a.take_u64().is_err()); // past the end
    }

    #[test]
    fn unsupported_container_version() {
        let mut bytes = sample();
        // Rewrite the container version field and re-seal the trailer.
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let body_end = bytes.len() - 8;
        let sum = fnv1a(FNV_OFFSET, &bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(StoreError::UnsupportedContainer { found: 99 })
        ));
    }

    #[test]
    fn corrupt_count_cannot_allocate() {
        // A section whose count prefix claims far more elements than the
        // section holds must error out, not try to allocate.
        let mut w = SnapshotWriter::new(1, b"");
        let mut s = SectionBuf::new();
        s.put_u64(u64::MAX); // bogus count with no payload behind it
        w.add_section("bogus", s);
        let snap = Snapshot::from_bytes(w.finish()).unwrap();
        let mut r = snap.section("bogus").unwrap();
        assert!(r.take_u32s().is_err());
    }

    #[test]
    fn atomic_write_and_open() {
        let dir = std::env::temp_dir().join("ets-store-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.ets");
        let mut w = SnapshotWriter::new(3, b"meta");
        let mut s = SectionBuf::new();
        s.put_u64s(&[10, 20]);
        w.add_section("only", s);
        w.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        assert_eq!(snap.app_version(), 3);
        let mut r = snap.section("only").unwrap();
        assert_eq!(r.take_u64s().unwrap(), vec![10, 20]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_section_last_write_wins() {
        let mut w = SnapshotWriter::new(1, b"");
        let mut first = SectionBuf::new();
        first.put_u8(1);
        let mut second = SectionBuf::new();
        second.put_u8(2);
        w.add_section("s", first);
        w.add_section("s", second);
        let snap = Snapshot::from_bytes(w.finish()).unwrap();
        assert_eq!(snap.section_names().len(), 1);
        assert_eq!(snap.section("s").unwrap().take_u8().unwrap(), 2);
    }
}
