//! ASCII case folding and fold-aware substring search.
//!
//! The folding here is exactly `u8::to_ascii_lowercase`: only `A`–`Z`
//! map (to `a`–`z`), every other byte — including non-ASCII UTF-8
//! continuation bytes — is left alone. That makes a fold-aware scan over
//! the raw haystack byte-identical to lowercasing the haystack first,
//! which is the equivalence the legacy `to_ascii_lowercase() + contains`
//! call sites rely on.

/// Folds one byte: `A`–`Z` to `a`–`z`, everything else unchanged.
#[inline]
pub const fn fold_byte(b: u8) -> u8 {
    if b.is_ascii_uppercase() {
        b + (b'a' - b'A')
    } else {
        b
    }
}

/// Whether `haystack` contains `needle` under ASCII case folding of the
/// haystack: equivalent to `haystack.to_ascii_lowercase().contains(needle)`
/// for a needle with no uppercase ASCII letters, without allocating.
///
/// Intended for short haystacks (context windows around a candidate
/// match); compile a [`crate::PatternSet`] for long texts or many
/// needles.
pub fn contains_fold(haystack: &str, needle: &str) -> bool {
    debug_assert!(
        !needle.bytes().any(|b| b.is_ascii_uppercase()),
        "needle must be pre-folded"
    );
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    if n.is_empty() {
        return true;
    }
    if h.len() < n.len() {
        return false;
    }
    'outer: for start in 0..=h.len() - n.len() {
        for (i, &nb) in n.iter().enumerate() {
            if fold_byte(h[start + i]) != nb {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_is_ascii_lowercase() {
        for b in 0..=255u8 {
            assert_eq!(fold_byte(b), b.to_ascii_lowercase());
        }
    }

    #[test]
    fn contains_fold_matches_lowercased_contains() {
        let cases = [
            ("Pittsburgh, PA 15213", "zip", false),
            ("the ZIP code", "zip", true),
            ("Zip", "zip", true),
            ("zi", "zip", false),
            ("", "zip", false),
            ("anything", "", true),
            ("ACCOUNT No. 12", "no.", true),
            ("naïve ÜBER", "über", false), // non-ASCII does not fold
        ];
        for (hay, needle, want) in cases {
            assert_eq!(contains_fold(hay, needle), want, "{hay:?} / {needle:?}");
            assert_eq!(
                hay.to_ascii_lowercase().contains(needle),
                want,
                "legacy disagrees on {hay:?} / {needle:?}"
            );
        }
    }
}
