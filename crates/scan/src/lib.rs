//! `ets-scan` — dependency-free single-pass multi-pattern text scanning
//! for the measurement pipeline: a case-folding Aho–Corasick automaton
//! with dense goto/fail tables, plus a zero-copy tokenizer.
//!
//! The collection hot path (the §4.3 funnel, the SpamAssassin stand-in,
//! the sensitive-info scrubber) used to rescan every email body once per
//! pattern — `to_ascii_lowercase()` followed by a `contains` per spam
//! token, per reflection phrase, per keyword cue — turning the text
//! layer into O(patterns × body) with an allocation per pass. This crate
//! compiles each pattern list once into a [`PatternSet`] and scans the
//! raw bytes exactly once, folding case on the fly:
//!
//! * [`PatternSet::compile`] builds the automaton from `(pattern, tag)`
//!   pairs over a *folded byte alphabet*: bytes are mapped to dense
//!   class ids after ASCII case folding, so the goto table is
//!   `states × classes` rather than `states × 256`, and matching a
//!   haystack is byte-identical to lowercasing it first (only `A`–`Z`
//!   fold, exactly like `str::to_ascii_lowercase`).
//! * [`PatternSet::find_all`] yields every occurrence as a [`Match`]
//!   (tag + byte offsets) in increasing end-position order;
//!   [`PatternSet::any_match`] early-exits on the first hit;
//!   [`PatternSet::weighted_score`] sums `f64` tags over *distinct*
//!   matched patterns in compile order (the spam-token rule shape).
//! * [`MatchMode::WordBounded`] restricts matches to alphanumeric word
//!   boundaries at both ends; [`MatchMode::Substring`] (the default)
//!   reproduces plain `contains` semantics.
//! * [`TokenStream`] iterates borrowed tokens (alphanumeric runs or
//!   whitespace-separated words) without allocating, replacing the
//!   allocate-lowercase-then-split pattern.
//!
//! Everything is a pure function of the pattern list and the haystack:
//! construction iterates fixed-order arrays (no hash maps), so compiled
//! tables and match order are deterministic — the crate inherits the
//! workspace invariant that `results/*.json` is a function of
//! `(seed, scale)` and is covered by `ets-lint`'s analytical-crate
//! rules.
//!
//! ```
//! use ets_scan::PatternSet;
//! let set = PatternSet::compile(&[("viagra", 3.0), ("act now", 1.3)]);
//! assert!(set.any_match("ACT NOW and buy ViAgRa"));
//! let (score, hits) = set.weighted_score(&["ACT NOW and buy ViAgRa"]);
//! assert_eq!((score, hits), (4.3, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fold;
pub mod pattern;
pub mod tokens;

pub use fold::{contains_fold, fold_byte};
pub use pattern::{Match, MatchMode, Matches, PatternSet};
pub use tokens::{Token, TokenStream};
