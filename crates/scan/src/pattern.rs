//! The case-folding Aho–Corasick automaton.
//!
//! [`PatternSet::compile`] lowers a `(pattern, tag)` list into a dense
//! deterministic automaton: a trie over the *folded byte alphabet*
//! (bytes mapped to compact class ids after ASCII case folding), failure
//! links computed breadth-first, and the goto table completed into a
//! full DFA so matching is one table lookup per haystack byte — no fail
//! chasing, no per-call allocation, no case-folding pass over the
//! haystack.
//!
//! Determinism: class ids are assigned in byte-value order, states in
//! pattern-insertion order, and outputs are flattened in BFS order, so
//! the compiled tables — and therefore match order — are a pure function
//! of the pattern list. No hash containers are involved.

use crate::fold::fold_byte;
use std::collections::VecDeque;

/// Sentinel for "no transition yet" during construction.
const NONE: u32 = u32::MAX;

/// How match candidates are accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchMode {
    /// Plain substring occurrences — `str::contains` semantics.
    Substring,
    /// Occurrences whose both ends sit on alphanumeric word boundaries
    /// (start of text, end of text, or a non-alphanumeric neighbour).
    WordBounded,
}

/// One occurrence of a pattern in a haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match<T> {
    /// The tag the pattern was compiled with.
    pub tag: T,
    /// Index of the pattern in the compile-time list.
    pub pattern: usize,
    /// Byte offset of the match start in the haystack.
    pub start: usize,
    /// Byte offset one past the match end.
    pub end: usize,
}

/// A compiled multi-pattern matcher. Compile once (the sets in this
/// workspace live in `OnceLock` statics), scan many haystacks.
#[derive(Debug, Clone)]
pub struct PatternSet<T> {
    /// Raw byte → class id, with ASCII uppercase pre-folded onto the
    /// class of its lowercase form. Class 0 is "appears in no pattern".
    classes: [u16; 256],
    /// Number of classes (width of one goto row).
    n_classes: usize,
    /// Dense DFA: `goto[state * n_classes + class] = next state`.
    goto_table: Vec<u32>,
    /// Per-state output ranges into `out_patterns` (`n_states + 1`
    /// entries); a state's outputs are every pattern ending there,
    /// longest first (own node, then the failure chain).
    out_start: Vec<u32>,
    /// Flattened output lists: pattern indices.
    out_patterns: Vec<u32>,
    /// Pattern byte lengths.
    pat_len: Vec<u32>,
    /// Pattern tags, in compile order.
    tags: Vec<T>,
    mode: MatchMode,
}

impl<T: Copy> PatternSet<T> {
    /// Compiles a substring-mode matcher. Patterns fold case at compile
    /// time, so matching a haystack is byte-identical to running
    /// `haystack.to_ascii_lowercase().contains(pattern)` per pattern.
    /// Duplicate patterns are allowed (each keeps its own tag and
    /// index). Panics on an empty pattern or an empty list.
    pub fn compile(patterns: &[(&str, T)]) -> Self {
        Self::with_mode(patterns, MatchMode::Substring)
    }

    /// Compiles with an explicit [`MatchMode`].
    pub fn with_mode(patterns: &[(&str, T)], mode: MatchMode) -> Self {
        assert!(
            !patterns.is_empty(),
            "PatternSet needs at least one pattern"
        );
        let folded: Vec<Vec<u8>> = patterns
            .iter()
            .map(|(p, _)| p.bytes().map(fold_byte).collect())
            .collect();

        // Folded byte alphabet: class ids in byte-value order.
        let mut used = [false; 256];
        for f in &folded {
            assert!(!f.is_empty(), "PatternSet patterns must be non-empty");
            for &b in f {
                used[b as usize] = true;
            }
        }
        let mut classes = [0u16; 256];
        let mut n_classes = 1usize; // class 0: byte in no pattern
        for b in 0..256usize {
            if used[b] {
                classes[b] = n_classes as u16;
                n_classes += 1;
            }
        }
        // Pre-fold the lookup so matching needs no per-byte fold: an
        // uppercase haystack byte lands on its lowercase class.
        for b in b'A'..=b'Z' {
            classes[b as usize] = classes[(b + (b'a' - b'A')) as usize];
        }

        // Trie over class ids.
        let nc = n_classes;
        let mut goto_table: Vec<u32> = vec![NONE; nc];
        let mut node_out: Vec<Vec<u32>> = vec![Vec::new()];
        for (pi, f) in folded.iter().enumerate() {
            let mut s = 0usize;
            for &b in f {
                let idx = s * nc + classes[b as usize] as usize;
                if goto_table[idx] == NONE {
                    let next = node_out.len() as u32;
                    goto_table[idx] = next;
                    goto_table.resize(goto_table.len() + nc, NONE);
                    node_out.push(Vec::new());
                    s = next as usize;
                } else {
                    s = goto_table[idx] as usize;
                }
            }
            node_out[s].push(pi as u32);
        }
        let n_states = node_out.len();

        // Failure links (breadth-first) + DFA completion: by the time a
        // state is popped, its failure state's row is already complete,
        // so missing transitions copy straight through.
        let mut fail = vec![0u32; n_states];
        let mut order: Vec<u32> = Vec::with_capacity(n_states);
        let mut queue: VecDeque<u32> = VecDeque::new();
        for slot in goto_table.iter_mut().take(nc) {
            match *slot {
                NONE => *slot = 0,
                t => {
                    fail[t as usize] = 0;
                    queue.push_back(t);
                }
            }
        }
        while let Some(s) = queue.pop_front() {
            order.push(s);
            let f = fail[s as usize] as usize;
            for c in 0..nc {
                let idx = s as usize * nc + c;
                let via_fail = goto_table[f * nc + c];
                match goto_table[idx] {
                    NONE => goto_table[idx] = via_fail,
                    t => {
                        fail[t as usize] = via_fail;
                        queue.push_back(t);
                    }
                }
            }
        }

        // Output inheritance along failure links, in BFS order (the
        // failure target is shallower, hence already final): own
        // patterns first, then the failure chain's — longest match
        // first at any given end position.
        for &s in &order {
            let f = fail[s as usize] as usize;
            if !node_out[f].is_empty() {
                let inherited = node_out[f].clone();
                node_out[s as usize].extend(inherited);
            }
        }
        let mut out_start: Vec<u32> = Vec::with_capacity(n_states + 1);
        let mut out_patterns: Vec<u32> = Vec::new();
        for outs in &node_out {
            out_start.push(out_patterns.len() as u32);
            out_patterns.extend_from_slice(outs);
        }
        out_start.push(out_patterns.len() as u32);

        PatternSet {
            classes,
            n_classes: nc,
            goto_table,
            out_start,
            out_patterns,
            pat_len: folded.iter().map(|f| f.len() as u32).collect(),
            tags: patterns.iter().map(|(_, t)| *t).collect(),
            mode,
        }
    }

    /// Number of compiled patterns.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the set has no patterns (never true: `compile` rejects an
    /// empty list, but the pair is conventional).
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// The tag of pattern `i`.
    pub fn tag(&self, i: usize) -> T {
        self.tags[i]
    }

    /// Iterates every match in `text`, in increasing end-position order;
    /// several patterns ending at the same byte come longest first.
    /// Zero allocation: one DFA lookup per haystack byte.
    pub fn find_all<'h, 'p>(&'p self, text: &'h str) -> Matches<'h, 'p, T> {
        Matches {
            set: self,
            bytes: text.as_bytes(),
            state: 0,
            pos: 0,
            out_i: 0,
            out_end: 0,
        }
    }

    /// Whether any pattern occurs in `text` (early exit on first hit).
    pub fn any_match(&self, text: &str) -> bool {
        self.find_all(text).next().is_some()
    }
}

impl PatternSet<f64> {
    /// The spam-token rule shape: each *distinct* pattern that occurs in
    /// any of `texts` contributes its tag exactly once; contributions
    /// are summed in compile order, so the `f64` result is bitwise
    /// reproducible. Returns `(score, distinct patterns hit)`.
    ///
    /// Allocation-free via a fixed-capacity bitset; sets are capped at
    /// 1024 patterns (far above any rule table here).
    pub fn weighted_score(&self, texts: &[&str]) -> (f64, usize) {
        const MAX_PATTERNS: usize = 1024;
        assert!(self.tags.len() <= MAX_PATTERNS);
        let mut seen = [0u64; MAX_PATTERNS / 64];
        for text in texts {
            for m in self.find_all(text) {
                seen[m.pattern / 64] |= 1 << (m.pattern % 64);
            }
        }
        let mut score = 0.0;
        let mut hits = 0usize;
        for (i, w) in self.tags.iter().enumerate() {
            if seen[i / 64] >> (i % 64) & 1 == 1 {
                score += w;
                hits += 1;
            }
        }
        (score, hits)
    }
}

/// Word boundary in the scrubber's sense: text edge or a
/// non-alphanumeric byte on either side of the position.
#[inline]
fn is_boundary(bytes: &[u8], idx: usize) -> bool {
    if idx == 0 || idx >= bytes.len() {
        return true;
    }
    !bytes[idx].is_ascii_alphanumeric() || !bytes[idx - 1].is_ascii_alphanumeric()
}

/// Iterator over the matches in one haystack. See
/// [`PatternSet::find_all`].
#[derive(Debug)]
pub struct Matches<'h, 'p, T> {
    set: &'p PatternSet<T>,
    bytes: &'h [u8],
    state: u32,
    /// Bytes consumed so far — the end position of any pending output.
    pos: usize,
    /// Pending output range of the current state.
    out_i: u32,
    out_end: u32,
}

impl<T: Copy> Iterator for Matches<'_, '_, T> {
    type Item = Match<T>;

    fn next(&mut self) -> Option<Match<T>> {
        loop {
            while self.out_i < self.out_end {
                let p = self.set.out_patterns[self.out_i as usize] as usize;
                self.out_i += 1;
                let end = self.pos;
                let start = end - self.set.pat_len[p] as usize;
                if self.set.mode == MatchMode::WordBounded
                    && !(is_boundary(self.bytes, start) && is_boundary(self.bytes, end))
                {
                    continue;
                }
                return Some(Match {
                    tag: self.set.tags[p],
                    pattern: p,
                    start,
                    end,
                });
            }
            if self.pos >= self.bytes.len() {
                return None;
            }
            let class = self.set.classes[self.bytes[self.pos] as usize] as usize;
            self.pos += 1;
            self.state = self.set.goto_table[self.state as usize * self.set.n_classes + class];
            let s = self.state as usize;
            self.out_i = self.set.out_start[s];
            self.out_end = self.set.out_start[s + 1];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference semantics: the legacy per-pattern scan.
    fn naive_positions(patterns: &[&str], text: &str) -> Vec<(usize, usize, usize)> {
        let lower = text.to_ascii_lowercase();
        let mut out = Vec::new();
        for (pi, p) in patterns.iter().enumerate() {
            let mut from = 0;
            while let Some(at) = lower[from..].find(p) {
                let start = from + at;
                out.push((pi, start, start + p.len()));
                from = start + 1; // all occurrences, overlaps included
            }
        }
        out.sort_by_key(|&(pi, s, _)| (s, pi));
        out
    }

    fn automaton_positions(patterns: &[&str], text: &str) -> Vec<(usize, usize, usize)> {
        let tagged: Vec<(&str, ())> = patterns.iter().map(|p| (*p, ())).collect();
        let set = PatternSet::compile(&tagged);
        let mut out: Vec<(usize, usize, usize)> = set
            .find_all(text)
            .map(|m| (m.pattern, m.start, m.end))
            .collect();
        out.sort_by_key(|&(pi, s, _)| (s, pi));
        out
    }

    #[test]
    fn classic_overlapping_patterns() {
        let pats = ["he", "she", "his", "hers"];
        let text = "ushers";
        assert_eq!(
            automaton_positions(&pats, text),
            vec![(1, 1, 4), (0, 2, 4), (3, 2, 6)]
        );
        assert_eq!(
            automaton_positions(&pats, text),
            naive_positions(&pats, text)
        );
    }

    #[test]
    fn agrees_with_naive_on_assorted_texts() {
        let pats = [
            "viagra",
            "act now",
            "a",
            "aa",
            "na",
            "unsubscribe",
            "$$$",
            "http://",
        ];
        let texts = [
            "",
            "a",
            "aaaa",
            "banana nap",
            "ACT NOW: viagra!! $$$$ http://x http://y",
            "Unsubscribe here. UNSUBSCRIBE NOW.",
            "préçisely übernatural — nön-ascii",
            "$$$$$$",
        ];
        for t in texts {
            assert_eq!(
                automaton_positions(&pats, t),
                naive_positions(&pats, t),
                "text {t:?}"
            );
        }
    }

    #[test]
    fn case_folding_is_ascii_only() {
        let set = PatternSet::compile(&[("straße", ())]);
        assert!(set.any_match("die STRAßE")); // ASCII letters fold
        assert!(!set.any_match("die STRASSE")); // ß does not expand
        let upper = PatternSet::compile(&[("WinNer", 0u8)]);
        assert!(upper.any_match("winner takes all"));
        assert!(upper.any_match("WINNER"));
    }

    #[test]
    fn duplicate_patterns_keep_their_indices() {
        let set = PatternSet::compile(&[("urgent", 1u8), ("urgent", 2u8)]);
        let hits: Vec<(usize, u8)> = set
            .find_all("most urgent")
            .map(|m| (m.pattern, m.tag))
            .collect();
        assert_eq!(hits, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn word_bounded_mode() {
        let tagged = [("cat", ())];
        let sub = PatternSet::with_mode(&tagged, MatchMode::Substring);
        let word = PatternSet::with_mode(&tagged, MatchMode::WordBounded);
        assert!(sub.any_match("concatenate"));
        assert!(!word.any_match("concatenate"));
        assert!(word.any_match("a cat sat"));
        assert!(word.any_match("cat"));
        assert!(word.any_match("CAT."));
        assert!(word.any_match("the cat"));
    }

    #[test]
    fn longest_match_first_at_same_end() {
        let set = PatternSet::compile(&[("a", 'a'), ("ba", 'b')]);
        let ms: Vec<(usize, usize, usize)> = set
            .find_all("ba")
            .map(|m| (m.pattern, m.start, m.end))
            .collect();
        // Both end at byte 2; "ba" (longer) is emitted first.
        assert_eq!(ms, vec![(1, 0, 2), (0, 1, 2)]);
    }

    #[test]
    fn weighted_score_counts_distinct_patterns_once() {
        let set = PatternSet::compile(&[("spam", 2.0), ("ham", 0.5), ("x", 1.0)]);
        let (score, hits) = set.weighted_score(&["spam spam SPAM", "ham"]);
        assert_eq!(hits, 2);
        assert_eq!(score, 2.5);
        let (none, zero) = set.weighted_score(&["nothing here"]);
        assert_eq!((none, zero), (0.0, 0));
    }

    #[test]
    fn weighted_score_sums_in_compile_order() {
        // f64 addition is order-sensitive; the sum must follow compile
        // order no matter which text hit which pattern.
        let weights = [0.1, 0.2, 0.3, 0.7, 1.9];
        let pats: Vec<(String, f64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (format!("tok{i}"), w))
            .collect();
        let tagged: Vec<(&str, f64)> = pats.iter().map(|(p, w)| (p.as_str(), *w)).collect();
        let set = PatternSet::compile(&tagged);
        let forward = set.weighted_score(&["tok0 tok1 tok2 tok3 tok4"]);
        let reverse = set.weighted_score(&["tok4 tok3 tok2 tok1 tok0"]);
        let mut expect = 0.0;
        for w in weights {
            expect += w;
        }
        assert_eq!(forward.0.to_bits(), expect.to_bits());
        assert_eq!(reverse.0.to_bits(), expect.to_bits());
    }

    #[test]
    fn all_256_byte_values_compile() {
        let all: Vec<u8> = (1..=255u8).collect(); // skip NUL for the str below
        let pat = String::from_utf8_lossy(&all).into_owned();
        let set = PatternSet::compile(&[(pat.as_str(), ())]);
        assert!(set.any_match(&pat.to_ascii_uppercase()));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_rejected() {
        let _ = PatternSet::compile(&[("", ())]);
    }
}
