//! Zero-copy tokenization.
//!
//! [`TokenStream`] replaces the allocate-lowercase-then-split pattern:
//! it yields borrowed slices of the original text with their byte
//! offsets, so callers that only need to hash, compare, or count tokens
//! never materialize a lowercased copy. Case-insensitive consumers fold
//! per byte via [`crate::fold::fold_byte`] at use time.

/// One token: a borrowed slice plus its start offset in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text, borrowed from the source.
    pub text: &'a str,
    /// Byte offset of the token start in the source text.
    pub start: usize,
}

/// What separates tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Split {
    /// Tokens are maximal runs of ASCII alphanumeric bytes — the
    /// bag-of-words view (`split(|c| !c.is_ascii_alphanumeric())` with
    /// empty segments dropped).
    Alnum,
    /// Tokens are separated by Unicode whitespace —
    /// `str::split_whitespace` semantics.
    Whitespace,
}

/// A zero-copy token iterator over a borrowed text.
#[derive(Debug, Clone)]
pub struct TokenStream<'a> {
    text: &'a str,
    pos: usize,
    split: Split,
}

impl<'a> TokenStream<'a> {
    /// Tokens are maximal ASCII-alphanumeric runs (the funnel's
    /// bag-of-words view). Multi-byte characters act as separators,
    /// exactly like the char-predicate split they replace.
    pub fn alnum(text: &'a str) -> Self {
        TokenStream {
            text,
            pos: 0,
            split: Split::Alnum,
        }
    }

    /// Whitespace-separated words, matching `str::split_whitespace`.
    pub fn words(text: &'a str) -> Self {
        TokenStream {
            text,
            pos: 0,
            split: Split::Whitespace,
        }
    }
}

impl<'a> Iterator for TokenStream<'a> {
    type Item = Token<'a>;

    fn next(&mut self) -> Option<Token<'a>> {
        match self.split {
            Split::Alnum => {
                let bytes = self.text.as_bytes();
                while self.pos < bytes.len() && !bytes[self.pos].is_ascii_alphanumeric() {
                    self.pos += 1;
                }
                if self.pos >= bytes.len() {
                    return None;
                }
                let start = self.pos;
                while self.pos < bytes.len() && bytes[self.pos].is_ascii_alphanumeric() {
                    self.pos += 1;
                }
                Some(Token {
                    text: &self.text[start..self.pos],
                    start,
                })
            }
            Split::Whitespace => {
                let rest = &self.text[self.pos..];
                let trimmed = rest.trim_start();
                if trimmed.is_empty() {
                    self.pos = self.text.len();
                    return None;
                }
                let start = self.pos + (rest.len() - trimmed.len());
                let end_rel = trimmed
                    .char_indices()
                    .find(|(_, c)| c.is_whitespace())
                    .map(|(i, _)| i)
                    .unwrap_or(trimmed.len());
                self.pos = start + end_rel;
                Some(Token {
                    text: &trimmed[..end_rel],
                    start,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alnum_matches_char_split() {
        let texts = [
            "",
            "   ",
            "one two three",
            "semi;colons, and.dots!",
            "unicode — déjà vu 42x",
            "trailing!",
            "42",
        ];
        for t in texts {
            let via_stream: Vec<&str> = TokenStream::alnum(t).map(|tok| tok.text).collect();
            let via_split: Vec<&str> = t
                .split(|c: char| !c.is_ascii_alphanumeric())
                .filter(|w| !w.is_empty())
                .collect();
            assert_eq!(via_stream, via_split, "text {t:?}");
        }
    }

    #[test]
    fn words_match_split_whitespace() {
        let texts = [
            "",
            " \t\n ",
            "one two\tthree\nfour",
            "  leading and trailing  ",
            "unicode\u{a0}nbsp stays", // NBSP is Unicode whitespace
        ];
        for t in texts {
            let via_stream: Vec<&str> = TokenStream::words(t).map(|tok| tok.text).collect();
            let via_split: Vec<&str> = t.split_whitespace().collect();
            assert_eq!(via_stream, via_split, "text {t:?}");
        }
    }

    #[test]
    fn offsets_point_into_source() {
        let t = "ab, cd";
        for tok in TokenStream::alnum(t) {
            assert_eq!(&t[tok.start..tok.start + tok.text.len()], tok.text);
        }
        for tok in TokenStream::words(t) {
            assert_eq!(&t[tok.start..tok.start + tok.text.len()], tok.text);
        }
    }
}
