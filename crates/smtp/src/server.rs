//! The TCP server driver.
//!
//! Runs [`ServerSession`] state machines over real `std::net` sockets.
//! Accepted connections feed a bounded queue drained by a fixed pool of
//! worker threads (the crossbeam channel is MPMC, so the pool needs no
//! extra dispatcher), and completed transactions flow to the owner over
//! a bounded delivery channel. Both bounds push back: a full connection
//! queue stalls `accept` into the kernel backlog, and a full owner
//! channel stalls the session that produced the message — so a slow
//! consumer degrades throughput instead of growing unbounded heap state.
//! This is the "Postfix on the main collection server" of Figure 1,
//! scaled down to a loopback fixture that `ets-loadgen` drives at paper
//! scale.

use crate::codec::{Frame, LineCodec};
use crate::reply::Reply;
use crate::session::{ReceivedEmail, ServerAction, ServerPolicy, ServerSession};
use crate::telemetry::{SessionObserver, SmtpTelemetry, TelemetryConfig};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How the server turns accepted sockets into running sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcurrencyModel {
    /// One OS thread per accepted connection. This is the pre-loadgen
    /// behaviour, kept selectable as the measured baseline: per-session
    /// spawn cost and unbounded thread churn are exactly what the worker
    /// pool removes (see `results/bench_serve.json`).
    ThreadPerConnection,
    /// A fixed pool of `workers` session threads fed by a bounded
    /// connection queue of depth `queue`. When every worker is busy and
    /// the queue is full, the accept loop itself blocks, so back-pressure
    /// reaches the kernel accept backlog instead of growing heap state.
    WorkerPool {
        /// Pool size (clamped to at least 1).
        workers: usize,
        /// Connection-queue depth (clamped to at least 1).
        queue: usize,
    },
}

impl ConcurrencyModel {
    /// The default pool geometry: twice the available cores (sessions
    /// are IO-bound on socket reads), bounded away from degenerate
    /// extremes.
    pub fn default_pool() -> Self {
        let cores = std::thread::available_parallelism().map_or(4, usize::from);
        ConcurrencyModel::WorkerPool {
            workers: (cores * 2).clamp(4, 64),
            queue: 256,
        }
    }
}

/// Tuning knobs for [`SmtpServer::bind_with`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Per-connection read timeout; a stalled client resolves to the
    /// Table 5 `Timeout` outcome when it expires.
    pub read_timeout: Duration,
    /// Telemetry sampling configuration.
    pub telemetry: TelemetryConfig,
    /// Session concurrency model (worker pool by default).
    pub model: ConcurrencyModel,
    /// Owner-channel capacity: completed transactions waiting for
    /// [`SmtpServer::drain`]/[`SmtpServer::received`]. A full channel
    /// blocks the session that produced the message, which holds its
    /// pool worker, which fills the connection queue, which finally
    /// stalls `accept` — the back-pressure chain the
    /// `smtp.accept_queue_depth` / `smtp.owner_queue_depth` gauges
    /// expose.
    pub owner_queue: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            read_timeout: Duration::from_secs(30),
            telemetry: TelemetryConfig::default(),
            model: ConcurrencyModel::default_pool(),
            owner_queue: 1024,
        }
    }
}

/// A running SMTP server bound to a local address.
pub struct SmtpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    rx: Receiver<ReceivedEmail>,
    telemetry: Arc<SmtpTelemetry>,
    /// Messages drained while `stop` was unwinding sessions (the owner
    /// channel must keep flowing during shutdown or a blocked session
    /// would deadlock the join).
    stash: Vec<ReceivedEmail>,
}

impl SmtpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections with the given policy.
    pub fn bind(addr: &str, policy: ServerPolicy) -> std::io::Result<SmtpServer> {
        SmtpServer::bind_with(addr, policy, ServerOptions::default())
    }

    /// Like [`SmtpServer::bind`], with explicit
    /// timeout/telemetry/concurrency options.
    pub fn bind_with(
        addr: &str,
        policy: ServerPolicy,
        options: ServerOptions,
    ) -> std::io::Result<SmtpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        // The owner channel is bounded: a slow drainer stalls producers
        // instead of growing an unbounded backlog, and the stall
        // propagates worker → connection queue → accept loop.
        let (tx, rx) = bounded(options.owner_queue.max(1));
        let telemetry = SmtpTelemetry::new(&options.telemetry);
        let flag = shutdown.clone();
        let tm = telemetry.clone();
        let read_timeout = options.read_timeout;
        let model = options.model;
        let accept_thread = std::thread::spawn(move || {
            accept_loop(listener, policy, tx, flag, tm, read_timeout, model)
        });
        Ok(SmtpServer {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
            rx,
            telemetry,
            stash: Vec::new(),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's telemetry plane (latency recorders, session ring).
    pub fn telemetry(&self) -> &Arc<SmtpTelemetry> {
        &self.telemetry
    }

    /// Receiver of accepted messages.
    pub fn received(&self) -> &Receiver<ReceivedEmail> {
        &self.rx
    }

    /// Collects messages already accepted, without blocking.
    pub fn drain(&self) -> Vec<ReceivedEmail> {
        self.rx.try_iter().collect()
    }

    /// Signals shutdown, drains queued connections to completion, joins
    /// the pool, and returns every accepted message still in flight.
    pub fn shutdown(mut self) -> Vec<ReceivedEmail> {
        self.stop();
        let mut out = std::mem::take(&mut self.stash);
        out.extend(self.rx.try_iter());
        out
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a dummy connection.
        // ets-lint: allow(swallowed-error): the connect exists only to
        // unblock `accept`; if it fails the listener is already gone.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            // Keep the owner channel flowing while sessions wind down: a
            // producer blocked on a full channel must not deadlock the
            // join. Everything drained here is returned by `shutdown`.
            while !h.is_finished() {
                self.stash.extend(self.rx.try_iter());
                std::thread::sleep(Duration::from_millis(1));
            }
            let _ = h.join();
        }
    }
}

impl Drop for SmtpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    policy: ServerPolicy,
    tx: Sender<ReceivedEmail>,
    shutdown: Arc<AtomicBool>,
    telemetry: Arc<SmtpTelemetry>,
    read_timeout: Duration,
    model: ConcurrencyModel,
) {
    match model {
        ConcurrencyModel::ThreadPerConnection => {
            thread_per_connection_loop(listener, policy, tx, shutdown, telemetry, read_timeout)
        }
        ConcurrencyModel::WorkerPool { workers, queue } => worker_pool_loop(
            listener,
            policy,
            tx,
            shutdown,
            telemetry,
            read_timeout,
            workers.max(1),
            queue.max(1),
        ),
    }
}

/// The baseline model: spawn-per-connection with opportunistic reaping.
fn thread_per_connection_loop(
    listener: TcpListener,
    policy: ServerPolicy,
    tx: Sender<ReceivedEmail>,
    shutdown: Arc<AtomicBool>,
    telemetry: Arc<SmtpTelemetry>,
    read_timeout: Duration,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        telemetry.accept_queue_depth(0);
        let tx = tx.clone();
        let policy = policy.clone();
        let tm = telemetry.clone();
        handlers.push(std::thread::spawn(move || {
            serve_connection(stream, &policy, &tx, read_timeout, &tm);
        }));
        // Opportunistically reap finished handlers.
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// The pooled model: a bounded connection queue fans accepted sockets
/// out to `workers` long-lived session threads.
#[allow(clippy::too_many_arguments)]
fn worker_pool_loop(
    listener: TcpListener,
    policy: ServerPolicy,
    tx: Sender<ReceivedEmail>,
    shutdown: Arc<AtomicBool>,
    telemetry: Arc<SmtpTelemetry>,
    read_timeout: Duration,
    workers: usize,
    queue: usize,
) {
    let (conn_tx, conn_rx) = bounded::<TcpStream>(queue);
    let mut pool = Vec::with_capacity(workers);
    for _ in 0..workers {
        let conn_rx = conn_rx.clone();
        let tx = tx.clone();
        let policy = policy.clone();
        let tm = telemetry.clone();
        pool.push(std::thread::spawn(move || {
            // `iter()` drains the queue to empty even after the accept
            // loop drops its sender: queued connections are served on
            // shutdown, never dropped.
            for stream in conn_rx.iter() {
                serve_connection(stream, &policy, &tx, read_timeout, &tm);
            }
        }));
    }
    drop(conn_rx);
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        telemetry.accept_queue_depth(conn_tx.len());
        // A blocking send is the back-pressure: with the queue full and
        // every worker busy, `accept` stalls right here and the kernel
        // backlog absorbs the burst. Err means the workers are gone,
        // which only happens on teardown.
        if conn_tx.send(stream).is_err() {
            break;
        }
    }
    drop(conn_tx);
    for h in pool {
        let _ = h.join();
    }
}

/// Runs one accepted socket through a full observed session.
fn serve_connection(
    stream: TcpStream,
    policy: &ServerPolicy,
    tx: &Sender<ReceivedEmail>,
    read_timeout: Duration,
    telemetry: &Arc<SmtpTelemetry>,
) {
    let mut observer = telemetry.session_start();
    // A broken client connection only ends that session: the error feeds
    // the Table 5 outcome taxonomy and the harness observes delivery via
    // the owner channel.
    let result = handle_connection(stream, policy, tx, read_timeout, &mut observer, telemetry);
    observer.finish(result.as_ref().err());
}

/// What one framing step resolved to. `Frame`s borrow the codec's
/// scratch buffer, so the session's owned `ServerAction` is extracted
/// first and acted on after the borrow ends.
enum Step {
    Act {
        action: ServerAction,
        /// `Some(bytes)` for a DATA payload, `None` for a command line
        /// (`is_rcpt` rides along for the policy-latency series).
        data_bytes: Option<usize>,
        is_rcpt: bool,
    },
    NeedBytes,
    FramingError,
}

fn handle_connection(
    mut stream: TcpStream,
    policy: &ServerPolicy,
    tx: &Sender<ReceivedEmail>,
    read_timeout: Duration,
    observer: &mut SessionObserver,
    telemetry: &Arc<SmtpTelemetry>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_nodelay(true)?;
    let mut session = ServerSession::new(policy.clone());
    let mut framer = LineCodec::new();
    // Replies are rendered into one reusable buffer and written with a
    // single syscall; the per-reply `to_string` + split writes of the
    // pre-loadgen driver were a measurable hot-path cost.
    let mut reply_buf = String::with_capacity(64);
    write_reply(&mut stream, &mut reply_buf, &session.greeting())?;
    observer.banner_sent();
    let mut buf = [0u8; 4096];
    loop {
        // Drain complete frames before reading more bytes.
        loop {
            let step = match framer.next_frame() {
                Ok(Some(Frame::Line(line))) => {
                    let is_rcpt = line
                        .get(..4)
                        .is_some_and(|p| p.eq_ignore_ascii_case("RCPT"));
                    Step::Act {
                        action: session.on_line(line),
                        data_bytes: None,
                        is_rcpt,
                    }
                }
                Ok(Some(Frame::Data(payload))) => Step::Act {
                    data_bytes: Some(payload.len()),
                    action: session.on_data(payload),
                    is_rcpt: false,
                },
                Ok(None) => Step::NeedBytes,
                Err(_) => Step::FramingError,
            };
            match step {
                Step::Act {
                    action,
                    data_bytes,
                    is_rcpt,
                } => {
                    write_reply(&mut stream, &mut reply_buf, &action.reply)?;
                    match data_bytes {
                        Some(bytes) => observer.data_done(bytes, action.event.is_some()),
                        None => observer.command(is_rcpt, action.reply.code),
                    }
                    if action.enter_data {
                        framer.enter_data_mode();
                    }
                    if let Some(e) = action.event {
                        telemetry.owner_queue_depth(tx.len());
                        // A full owner channel blocks here — back-pressure
                        // by design. Err means the owner is gone (server
                        // dropped mid-session); the session just ends.
                        if tx.send(e).is_err() {
                            return Ok(());
                        }
                    }
                    if action.close {
                        return Ok(());
                    }
                }
                Step::NeedBytes => break,
                Step::FramingError => {
                    observer.framing_error();
                    write_reply(&mut stream, &mut reply_buf, &Reply::line_too_long())?;
                    return Ok(());
                }
            }
        }
        let n = match stream.read(&mut buf) {
            Ok(n) => n,
            Err(e) => {
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) {
                    // ets-lint: allow(swallowed-error): courtesy 421 on an
                    // already-stalled connection (RFC 5321 §4.2.4.1); the
                    // Timeout outcome is decided whether or not the client
                    // hears it.
                    let _ = write_reply(&mut stream, &mut reply_buf, &Reply::idle_timeout());
                }
                return Err(e);
            }
        };
        if n == 0 {
            return Ok(()); // client hung up
        }
        framer.feed(&buf[..n]);
    }
}

/// Renders `code SP text CRLF` into `buf` (no `fmt` machinery, no
/// allocation) and writes it with one `write_all`.
fn write_reply(stream: &mut TcpStream, buf: &mut String, reply: &Reply) -> std::io::Result<()> {
    buf.clear();
    let code = reply.code.clamp(200, 599);
    buf.push((b'0' + (code / 100) as u8) as char);
    buf.push((b'0' + (code / 10 % 10) as u8) as char);
    buf.push((b'0' + (code % 10) as u8) as char);
    buf.push(' ');
    buf.push_str(&reply.text);
    buf.push_str("\r\n");
    stream.write_all(buf.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientOutcome, Email};
    use crate::net_client::{send_email, RawSession};

    fn policy() -> ServerPolicy {
        ServerPolicy::catch_all("mx.gmial.com", &["gmial.com".to_owned()])
    }

    fn email(to: &str, body: &str) -> Email {
        Email::new(
            Some("alice@gmail.com".parse().unwrap()),
            vec![to.parse().unwrap()],
            format!("Subject: loopback\r\n\r\n{body}"),
        )
    }

    fn pool_options(workers: usize, queue: usize, owner_queue: usize) -> ServerOptions {
        ServerOptions {
            model: ConcurrencyModel::WorkerPool { workers, queue },
            owner_queue,
            ..ServerOptions::default()
        }
    }

    #[test]
    fn loopback_delivery() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let outcome = send_email(
            &server.addr().to_string(),
            email("bob@gmial.com", "over real TCP"),
            "client.example",
            false,
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(outcome, ClientOutcome::Accepted);
        let received = server.shutdown();
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].rcpt_to[0].to_string(), "bob@gmial.com");
        assert!(received[0].data.contains("over real TCP"));
    }

    #[test]
    fn loopback_delivery_thread_per_connection() {
        let options = ServerOptions {
            model: ConcurrencyModel::ThreadPerConnection,
            ..ServerOptions::default()
        };
        let server = SmtpServer::bind_with("127.0.0.1:0", policy(), options).unwrap();
        let outcome = send_email(
            &server.addr().to_string(),
            email("bob@gmial.com", "legacy model"),
            "client.example",
            false,
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(outcome, ClientOutcome::Accepted);
        assert_eq!(server.shutdown().len(), 1);
    }

    #[test]
    fn loopback_starttls() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let outcome = send_email(
            &server.addr().to_string(),
            email("bob@gmial.com", "tls please"),
            "client.example",
            true,
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(outcome, ClientOutcome::Accepted);
        let received = server.shutdown();
        assert!(received[0].tls);
    }

    #[test]
    fn loopback_rejection() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let outcome = send_email(
            &server.addr().to_string(),
            email("someone@unrelated.com", "should bounce"),
            "client.example",
            false,
            Duration::from_secs(5),
        )
        .unwrap();
        assert!(matches!(outcome, ClientOutcome::Rejected { code: 550, .. }));
        assert!(server.shutdown().is_empty());
    }

    #[test]
    fn several_sequential_deliveries() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        for i in 0..5 {
            let o = send_email(
                &server.addr().to_string(),
                email(&format!("user{i}@gmial.com"), "msg"),
                "c.example",
                false,
                Duration::from_secs(5),
            )
            .unwrap();
            assert_eq!(o, ClientOutcome::Accepted);
        }
        assert_eq!(server.shutdown().len(), 5);
    }

    #[test]
    fn concurrent_deliveries() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let addr = server.addr().to_string();
        let mut handles = Vec::new();
        for i in 0..8 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                send_email(
                    &addr,
                    email(&format!("c{i}@gmial.com"), "concurrent"),
                    "c.example",
                    false,
                    Duration::from_secs(5),
                )
                .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), ClientOutcome::Accepted);
        }
        assert_eq!(server.shutdown().len(), 8);
    }

    #[test]
    fn pool_saturation_loses_no_connections() {
        // 2 workers, a 1-deep queue, 12 concurrent clients: the accept
        // loop must block (back-pressure into the kernel backlog) rather
        // than drop anything, and every delivery must land.
        let server =
            SmtpServer::bind_with("127.0.0.1:0", policy(), pool_options(2, 1, 1024)).unwrap();
        let addr = server.addr().to_string();
        let mut handles = Vec::new();
        for i in 0..12 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                send_email(
                    &addr,
                    email(&format!("sat{i}@gmial.com"), "saturated"),
                    "c.example",
                    false,
                    Duration::from_secs(20),
                )
                .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), ClientOutcome::Accepted);
        }
        assert_eq!(server.shutdown().len(), 12);
    }

    #[test]
    fn pool_drains_queued_connections_on_shutdown() {
        // A single worker held busy by a raw session while more clients
        // queue up; shutdown must serve every queued connection before
        // returning (graceful drain), not abandon them.
        let server =
            SmtpServer::bind_with("127.0.0.1:0", policy(), pool_options(1, 16, 1024)).unwrap();
        let addr = server.addr().to_string();
        let mut hold = RawSession::connect(&addr, Duration::from_secs(10)).unwrap();
        assert_eq!(hold.read_code().unwrap(), 220); // we own the worker now
        let mut handles = Vec::new();
        for i in 0..4 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                send_email(
                    &addr,
                    email(&format!("q{i}@gmial.com"), "queued"),
                    "c.example",
                    false,
                    Duration::from_secs(20),
                )
                .unwrap()
            }));
        }
        // Let the accept loop queue the four connections.
        std::thread::sleep(Duration::from_millis(300));
        // Release the worker, then immediately shut down.
        hold.write_raw(b"QUIT\r\n").unwrap();
        drop(hold);
        let received = server.shutdown();
        for h in handles {
            assert_eq!(h.join().unwrap(), ClientOutcome::Accepted);
        }
        assert_eq!(received.len(), 4, "queued connections were dropped");
    }

    #[test]
    fn bounded_owner_channel_backpressure_loses_nothing() {
        // Owner queue of 1: producers block until the owner drains, and
        // every message still arrives exactly once.
        let server = SmtpServer::bind_with("127.0.0.1:0", policy(), pool_options(4, 8, 1)).unwrap();
        let addr = server.addr().to_string();
        let mut handles = Vec::new();
        for i in 0..3 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                send_email(
                    &addr,
                    email(&format!("bp{i}@gmial.com"), "pressured"),
                    "c.example",
                    false,
                    Duration::from_secs(20),
                )
                .unwrap()
            }));
        }
        let mut drained = Vec::new();
        for _ in 0..2_000 {
            drained.extend(server.drain());
            if drained.len() == 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(drained.len(), 3);
        for h in handles {
            assert_eq!(h.join().unwrap(), ClientOutcome::Accepted);
        }
        assert!(server.shutdown().is_empty());
    }

    #[test]
    fn pipelined_commands_in_one_segment() {
        // A client may push several commands in one TCP write; the framer
        // must process them in order against the session.
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let mut raw =
            RawSession::connect(&server.addr().to_string(), Duration::from_secs(5)).unwrap();
        assert_eq!(raw.read_code().unwrap(), 220); // banner
        raw.write_raw(
            b"EHLO burst.example\r\nMAIL FROM:<a@b.com>\r\nRCPT TO:<u@gmial.com>\r\nDATA\r\n",
        )
        .unwrap();
        let mut codes = Vec::new();
        for _ in 0..4 {
            codes.push(raw.read_code().unwrap());
        }
        assert_eq!(codes, vec![250, 250, 250, 354]);
        raw.write_raw(b"pipelined body\r\n.\r\nQUIT\r\n").unwrap();
        assert_eq!(raw.read_code().unwrap(), 250);
        let received = server.shutdown();
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].data, "pipelined body");
    }

    #[test]
    fn client_hangup_mid_transaction_loses_nothing() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let mut raw =
            RawSession::connect(&server.addr().to_string(), Duration::from_secs(5)).unwrap();
        raw.write_raw(
            b"EHLO x\r\nMAIL FROM:<a@b.com>\r\nRCPT TO:<u@gmial.com>\r\nDATA\r\nhalf a mess",
        )
        .unwrap();
        drop(raw); // vanish before the terminator
        let received = server.shutdown();
        assert!(received.is_empty(), "partial DATA must not be accepted");
    }

    #[test]
    fn shutdown_is_idempotent_via_drop() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let addr = server.addr();
        drop(server);
        // After drop the port should refuse (eventually) — at minimum a
        // fresh bind to the same port must succeed.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }
}
