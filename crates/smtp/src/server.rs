//! The TCP server driver.
//!
//! Runs [`ServerSession`] state machines over real `std::net` sockets: an
//! accept loop plus a bounded pool of connection-handler threads
//! (crossbeam channels carry accepted messages back to the owner). This is
//! the "Postfix on the main collection server" of Figure 1, scaled down to
//! a loopback test fixture.

use crate::codec::{Frame, LineCodec};
use crate::session::{ReceivedEmail, ServerPolicy, ServerSession};
use crate::telemetry::{SessionObserver, SmtpTelemetry, TelemetryConfig};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`SmtpServer::bind_with`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Per-connection read timeout; a stalled client resolves to the
    /// Table 5 `Timeout` outcome when it expires.
    pub read_timeout: Duration,
    /// Telemetry sampling configuration.
    pub telemetry: TelemetryConfig,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            read_timeout: Duration::from_secs(30),
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// A running SMTP server bound to a local address.
pub struct SmtpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    rx: Receiver<ReceivedEmail>,
    telemetry: Arc<SmtpTelemetry>,
}

impl SmtpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections with the given policy.
    pub fn bind(addr: &str, policy: ServerPolicy) -> std::io::Result<SmtpServer> {
        SmtpServer::bind_with(addr, policy, ServerOptions::default())
    }

    /// Like [`SmtpServer::bind`], with explicit timeout/telemetry
    /// options.
    pub fn bind_with(
        addr: &str,
        policy: ServerPolicy,
        options: ServerOptions,
    ) -> std::io::Result<SmtpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        // The owner channel is unbounded: a slow `drain`er cannot stall
        // connection handlers, but nothing bounds the backlog either —
        // the `smtp.accept_queue_depth` gauge makes that gap observable,
        // and bounding it (with back-pressure into the accept loop) is
        // deferred to the loadgen closed-loop work.
        let (tx, rx) = unbounded();
        let telemetry = SmtpTelemetry::new(&options.telemetry);
        let flag = shutdown.clone();
        let tm = telemetry.clone();
        let read_timeout = options.read_timeout;
        let accept_thread =
            std::thread::spawn(move || accept_loop(listener, policy, tx, flag, tm, read_timeout));
        Ok(SmtpServer {
            addr: local,
            shutdown,
            accept_thread: Some(accept_thread),
            rx,
            telemetry,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's telemetry plane (latency recorders, session ring).
    pub fn telemetry(&self) -> &Arc<SmtpTelemetry> {
        &self.telemetry
    }

    /// Receiver of accepted messages.
    pub fn received(&self) -> &Receiver<ReceivedEmail> {
        &self.rx
    }

    /// Collects messages already accepted, without blocking.
    pub fn drain(&self) -> Vec<ReceivedEmail> {
        self.rx.try_iter().collect()
    }

    /// Signals shutdown and joins the accept loop.
    pub fn shutdown(mut self) -> Vec<ReceivedEmail> {
        self.stop();
        self.rx.try_iter().collect()
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the accept loop with a dummy connection.
        // ets-lint: allow(swallowed-error): the connect exists only to
        // unblock `accept`; if it fails the listener is already gone.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SmtpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    policy: ServerPolicy,
    tx: Sender<ReceivedEmail>,
    shutdown: Arc<AtomicBool>,
    telemetry: Arc<SmtpTelemetry>,
    read_timeout: Duration,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        telemetry.accept_queue_depth(tx.len());
        let tx = tx.clone();
        let policy = policy.clone();
        let tm = telemetry.clone();
        handlers.push(std::thread::spawn(move || {
            let mut observer = tm.session_start();
            // A broken client connection only ends that session: the
            // error feeds the Table 5 outcome taxonomy and the harness
            // observes delivery via rx.
            let result = handle_connection(stream, policy, tx, read_timeout, &mut observer);
            observer.finish(result.as_ref().err());
        }));
        // Opportunistically reap finished handlers.
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    policy: ServerPolicy,
    tx: Sender<ReceivedEmail>,
    read_timeout: Duration,
    observer: &mut SessionObserver,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_nodelay(true)?;
    let mut session = ServerSession::new(policy);
    let mut framer = LineCodec::new();
    write_reply(&mut stream, &session.greeting().to_string())?;
    observer.banner_sent();
    let mut buf = [0u8; 4096];
    loop {
        // Drain complete frames before reading more bytes.
        loop {
            match framer.next_frame() {
                Ok(Some(Frame::Line(line))) => {
                    let is_rcpt = line
                        .get(..4)
                        .is_some_and(|p| p.eq_ignore_ascii_case("RCPT"));
                    let action = session.on_line(&line);
                    write_reply(&mut stream, &action.reply.to_string())?;
                    observer.command(is_rcpt, action.reply.code);
                    if action.enter_data {
                        framer.enter_data_mode();
                    }
                    if let Some(e) = action.event {
                        let _ = tx.send(e);
                    }
                    if action.close {
                        return Ok(());
                    }
                }
                Ok(Some(Frame::Data(payload))) => {
                    let bytes = payload.len();
                    let action = session.on_data(&payload);
                    write_reply(&mut stream, &action.reply.to_string())?;
                    observer.data_done(bytes, action.event.is_some());
                    if let Some(e) = action.event {
                        let _ = tx.send(e);
                    }
                    if action.close {
                        return Ok(());
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    observer.framing_error();
                    write_reply(&mut stream, "500 Line too long")?;
                    return Ok(());
                }
            }
        }
        let n = match stream.read(&mut buf) {
            Ok(n) => n,
            Err(e) => {
                if matches!(
                    e.kind(),
                    io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                ) {
                    // ets-lint: allow(swallowed-error): courtesy 421 on an
                    // already-stalled connection (RFC 5321 §4.2.4.1); the
                    // Timeout outcome is decided whether or not the client
                    // hears it.
                    let _ = write_reply(&mut stream, "421 4.4.2 idle timeout, closing");
                }
                return Err(e);
            }
        };
        if n == 0 {
            return Ok(()); // client hung up
        }
        framer.feed(&buf[..n]);
    }
}

fn write_reply(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\r\n")?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientOutcome, Email};
    use crate::net_client::send_email;

    fn policy() -> ServerPolicy {
        ServerPolicy::catch_all("mx.gmial.com", &["gmial.com".to_owned()])
    }

    fn email(to: &str, body: &str) -> Email {
        Email::new(
            Some("alice@gmail.com".parse().unwrap()),
            vec![to.parse().unwrap()],
            format!("Subject: loopback\r\n\r\n{body}"),
        )
    }

    #[test]
    fn loopback_delivery() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let outcome = send_email(
            &server.addr().to_string(),
            email("bob@gmial.com", "over real TCP"),
            "client.example",
            false,
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(outcome, ClientOutcome::Accepted);
        let received = server.shutdown();
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].rcpt_to[0].to_string(), "bob@gmial.com");
        assert!(received[0].data.contains("over real TCP"));
    }

    #[test]
    fn loopback_starttls() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let outcome = send_email(
            &server.addr().to_string(),
            email("bob@gmial.com", "tls please"),
            "client.example",
            true,
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(outcome, ClientOutcome::Accepted);
        let received = server.shutdown();
        assert!(received[0].tls);
    }

    #[test]
    fn loopback_rejection() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let outcome = send_email(
            &server.addr().to_string(),
            email("someone@unrelated.com", "should bounce"),
            "client.example",
            false,
            Duration::from_secs(5),
        )
        .unwrap();
        assert!(matches!(outcome, ClientOutcome::Rejected { code: 550, .. }));
        assert!(server.shutdown().is_empty());
    }

    #[test]
    fn several_sequential_deliveries() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        for i in 0..5 {
            let o = send_email(
                &server.addr().to_string(),
                email(&format!("user{i}@gmial.com"), "msg"),
                "c.example",
                false,
                Duration::from_secs(5),
            )
            .unwrap();
            assert_eq!(o, ClientOutcome::Accepted);
        }
        assert_eq!(server.shutdown().len(), 5);
    }

    #[test]
    fn concurrent_deliveries() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let addr = server.addr().to_string();
        let mut handles = Vec::new();
        for i in 0..8 {
            let addr = addr.clone();
            handles.push(std::thread::spawn(move || {
                send_email(
                    &addr,
                    email(&format!("c{i}@gmial.com"), "concurrent"),
                    "c.example",
                    false,
                    Duration::from_secs(5),
                )
                .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), ClientOutcome::Accepted);
        }
        assert_eq!(server.shutdown().len(), 8);
    }

    #[test]
    fn pipelined_commands_in_one_segment() {
        // A client may push several commands in one TCP write; the framer
        // must process them in order against the session.
        use std::io::{BufRead, BufReader, Write};
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap(); // banner
        assert!(line.starts_with("220"));
        stream
            .write_all(
                b"EHLO burst.example\r\nMAIL FROM:<a@b.com>\r\nRCPT TO:<u@gmial.com>\r\nDATA\r\n",
            )
            .unwrap();
        let mut codes = Vec::new();
        for _ in 0..4 {
            line.clear();
            reader.read_line(&mut line).unwrap();
            codes.push(line[..3].to_owned());
        }
        assert_eq!(codes, vec!["250", "250", "250", "354"]);
        stream
            .write_all(b"pipelined body\r\n.\r\nQUIT\r\n")
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("250"));
        let received = server.shutdown();
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].data, "pipelined body");
    }

    #[test]
    fn client_hangup_mid_transaction_loses_nothing() {
        use std::io::Write;
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                b"EHLO x\r\nMAIL FROM:<a@b.com>\r\nRCPT TO:<u@gmial.com>\r\nDATA\r\nhalf a mess",
            )
            .unwrap();
        drop(stream); // vanish before the terminator
        let received = server.shutdown();
        assert!(received.is_empty(), "partial DATA must not be accepted");
    }

    #[test]
    fn shutdown_is_idempotent_via_drop() {
        let server = SmtpServer::bind("127.0.0.1:0", policy()).unwrap();
        let addr = server.addr();
        drop(server);
        // After drop the port should refuse (eventually) — at minimum a
        // fresh bind to the same port must succeed.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok());
    }
}
