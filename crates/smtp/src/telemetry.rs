//! Live serving telemetry for the TCP SMTP server.
//!
//! This is the only wall-clock module in `ets-smtp` — `ets-lint`'s
//! `nondeterministic-source` allowlist admits exactly
//! `crates/smtp/src/telemetry.rs`, mirroring `crates/obs/src/clock.rs`.
//! Everything recorded here is *serving-side* observability (latency
//! quantiles, in-flight gauges, per-session samples): it never feeds
//! `results/*.json`, so the determinism boundary of the analytical
//! pipeline is untouched.
//!
//! Per session the observer records:
//!
//! * phase latencies into [`ets_obs::latency`] log-linear histograms —
//!   accept→banner (`smtp.banner_us`), per-command parse+reply
//!   (`smtp.command_us`), catch-all policy decisions on `RCPT`
//!   (`smtp.policy_us`), `DATA` payload handling (`smtp.data_us`), and
//!   whole-session duration (`smtp.session_us`);
//! * workload counters — connections, commands, reply classes, accepted
//!   messages, rejected recipients, payload bytes — plus a taxonomy
//!   family `smtp.session_outcome.*` keyed to the five Table 5
//!   [`DeliveryOutcome`] rows (all five are pre-registered at zero so a
//!   scrape always sees the full family);
//! * in-flight gauges (`smtp.open_connections`, plus the two bounded
//!   back-pressure stages: `smtp.accept_queue_depth` for the worker
//!   pool's connection queue and `smtp.owner_queue_depth` for the
//!   bounded delivery channel);
//! * a 1-in-N sampled full-session trace into a bounded ring buffer,
//!   exposed as the `smtp_sessions` section of `/snapshot.json`.

use crate::fault::DeliveryOutcome;
use ets_obs::latency::{self, AtomicLatencyHistogram};
use ets_obs::metrics;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Telemetry tuning knobs, part of the server's
/// [`ServerOptions`](crate::server::ServerOptions).
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Sample every Nth session into the trace ring (`0` disables
    /// sampling entirely).
    pub sample_every: u64,
    /// Bounded capacity of the sampled-session ring buffer.
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_every: 16,
            ring_capacity: 256,
        }
    }
}

/// Upper bound on per-sample phase entries, so a chatty session cannot
/// grow a sample without limit.
const MAX_SAMPLE_PHASES: usize = 32;

/// One sampled session for the `/snapshot.json` trace ring.
#[derive(Debug, Clone)]
pub struct SessionSample {
    /// Session start, microseconds since the process clock epoch.
    pub start_us: u64,
    /// Whole-session wall time in microseconds.
    pub total_us: u64,
    /// Commands handled.
    pub commands: u32,
    /// Messages accepted.
    pub accepted: u32,
    /// The Table 5 taxonomy row this session resolved to.
    pub outcome: DeliveryOutcome,
    /// `(phase label, microseconds)` in session order, truncated at
    /// `MAX_SAMPLE_PHASES` entries.
    pub phases: Vec<(&'static str, u64)>,
}

/// The serving telemetry plane: shared latency recorders, in-flight
/// gauges, and the sampled-session ring. One instance per
/// [`SmtpServer`](crate::server::SmtpServer), shared with every
/// connection handler.
pub struct SmtpTelemetry {
    session_us: Arc<AtomicLatencyHistogram>,
    banner_us: Arc<AtomicLatencyHistogram>,
    command_us: Arc<AtomicLatencyHistogram>,
    data_us: Arc<AtomicLatencyHistogram>,
    policy_us: Arc<AtomicLatencyHistogram>,
    open: AtomicU64,
    sessions: AtomicU64,
    sample_every: u64,
    ring_capacity: usize,
    ring: Arc<Mutex<VecDeque<SessionSample>>>,
}

/// The Prometheus-friendly label of one taxonomy row.
pub fn outcome_label(outcome: DeliveryOutcome) -> &'static str {
    match outcome {
        DeliveryOutcome::NoError => "no_error",
        DeliveryOutcome::Bounce => "bounce",
        DeliveryOutcome::Timeout => "timeout",
        DeliveryOutcome::NetworkError => "network_error",
        DeliveryOutcome::OtherError => "other_error",
    }
}

impl SmtpTelemetry {
    /// Builds the plane, pre-registers the full Table 5 counter family,
    /// and publishes the sampled-session ring as the `smtp_sessions`
    /// section of `/snapshot.json`.
    pub fn new(config: &TelemetryConfig) -> Arc<SmtpTelemetry> {
        for outcome in DeliveryOutcome::ALL {
            metrics::counter_add(
                &format!("smtp.session_outcome.{}", outcome_label(outcome)),
                0,
            );
        }
        metrics::counter_add("smtp.connections", 0);
        metrics::counter_add("smtp.commands", 0);
        let ring = Arc::new(Mutex::new(VecDeque::new()));
        let section_ring = ring.clone();
        ets_obs::serve::register_section("smtp_sessions", move || {
            render_ring(&section_ring.lock())
        });
        Arc::new(SmtpTelemetry {
            session_us: latency::recorder("smtp.session_us"),
            banner_us: latency::recorder("smtp.banner_us"),
            command_us: latency::recorder("smtp.command_us"),
            data_us: latency::recorder("smtp.data_us"),
            policy_us: latency::recorder("smtp.policy_us"),
            open: AtomicU64::new(0),
            sessions: AtomicU64::new(0),
            sample_every: config.sample_every,
            ring_capacity: config.ring_capacity,
            ring,
        })
    }

    /// Called by the accept loop on every accepted connection; `depth`
    /// is the bounded connection queue's backlog at accept time (always
    /// `0` under the thread-per-connection model, which has no queue).
    /// When this gauge rides near the configured queue depth, the next
    /// back-pressure stage is the kernel accept backlog.
    pub fn accept_queue_depth(&self, depth: usize) {
        metrics::gauge_set("smtp.accept_queue_depth", depth as f64);
    }

    /// Called by a session handler as it queues a completed transaction;
    /// `depth` is the bounded owner channel's backlog at that instant. A
    /// reading near the configured capacity means a slow `drain`er is
    /// about to stall producers.
    pub fn owner_queue_depth(&self, depth: usize) {
        metrics::gauge_set("smtp.owner_queue_depth", depth as f64);
    }

    /// Opens a per-session observer. Counts the connection and bumps
    /// the in-flight gauge; the observer's `finish`/`Drop` closes it.
    pub fn session_start(self: &Arc<Self>) -> SessionObserver {
        metrics::counter_add("smtp.connections", 1);
        let open = self.open.fetch_add(1, Ordering::Relaxed) + 1;
        metrics::gauge_set("smtp.open_connections", open as f64);
        let now = Instant::now();
        SessionObserver {
            telemetry: self.clone(),
            start: now,
            last: now,
            start_us: ets_obs::clock::monotonic_micros(),
            phases: Vec::new(),
            commands: 0,
            accepted: 0,
            rejected_rcpts: 0,
            framing_errors: 0,
            finished: false,
        }
    }

    /// A copy of the sampled-session ring, oldest first.
    pub fn samples(&self) -> Vec<SessionSample> {
        self.ring.lock().iter().cloned().collect()
    }

    fn note_closed(&self) {
        let open = self.open.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
        metrics::gauge_set("smtp.open_connections", open as f64);
    }

    fn finish_session(&self, observer: &mut SessionObserver, err: Option<&io::Error>) {
        let total_us = elapsed_us(&observer.start);
        self.session_us.record(total_us);
        let outcome = observer.classify(err);
        metrics::counter_add(
            &format!("smtp.session_outcome.{}", outcome_label(outcome)),
            1,
        );
        self.note_closed();
        let idx = self.sessions.fetch_add(1, Ordering::Relaxed);
        if self.sample_every > 0 && idx.is_multiple_of(self.sample_every) {
            let sample = SessionSample {
                start_us: observer.start_us,
                total_us,
                commands: observer.commands,
                accepted: observer.accepted,
                outcome,
                phases: std::mem::take(&mut observer.phases),
            };
            let mut ring = self.ring.lock();
            ring.push_back(sample);
            while ring.len() > self.ring_capacity {
                ring.pop_front();
            }
        }
    }
}

/// Microseconds elapsed since `t`, saturated into `u64`.
fn elapsed_us(t: &Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Per-session phase timer and outcome classifier, created by
/// [`SmtpTelemetry::session_start`] and driven by the connection
/// handler.
pub struct SessionObserver {
    telemetry: Arc<SmtpTelemetry>,
    start: Instant,
    last: Instant,
    start_us: u64,
    phases: Vec<(&'static str, u64)>,
    commands: u32,
    accepted: u32,
    rejected_rcpts: u32,
    framing_errors: u32,
    finished: bool,
}

impl SessionObserver {
    /// Duration since the previous phase boundary; advances the
    /// boundary.
    fn phase_us(&mut self) -> u64 {
        let us = elapsed_us(&self.last);
        self.last = Instant::now();
        us
    }

    fn push_phase(&mut self, label: &'static str, us: u64) {
        if self.phases.len() < MAX_SAMPLE_PHASES {
            self.phases.push((label, us));
        }
    }

    /// The greeting banner went out: closes the accept→banner phase.
    pub fn banner_sent(&mut self) {
        let us = self.phase_us();
        self.telemetry.banner_us.record(us);
        self.push_phase("accept_to_banner", us);
    }

    /// One command line was parsed and replied to with `code`.
    /// `is_rcpt` marks catch-all policy decisions, which get their own
    /// latency series.
    pub fn command(&mut self, is_rcpt: bool, code: u16) {
        let us = self.phase_us();
        self.commands += 1;
        self.telemetry.command_us.record(us);
        metrics::counter_add("smtp.commands", 1);
        metrics::counter_add(&format!("smtp.replies.{}xx", (code / 100).clamp(2, 5)), 1);
        if is_rcpt {
            self.telemetry.policy_us.record(us);
            self.push_phase("policy", us);
            if code >= 400 {
                self.rejected_rcpts += 1;
                metrics::counter_add("smtp.rcpt_rejected", 1);
            }
        } else {
            self.push_phase("command", us);
        }
    }

    /// A `DATA` payload of `bytes` was processed; `accepted` means the
    /// message was queued for the owner.
    pub fn data_done(&mut self, bytes: usize, accepted: bool) {
        let us = self.phase_us();
        self.telemetry.data_us.record(us);
        self.push_phase("data", us);
        metrics::counter_add("smtp.bytes_in", bytes as u64);
        if accepted {
            self.accepted += 1;
            metrics::counter_add("smtp.messages_accepted", 1);
        }
    }

    /// The codec rejected a frame (oversized line, bad DATA framing).
    pub fn framing_error(&mut self) {
        self.framing_errors += 1;
        metrics::counter_add("smtp.framing_errors", 1);
    }

    /// Closes the session: records whole-session latency, resolves the
    /// Table 5 taxonomy row, and (1-in-N) samples the session into the
    /// trace ring.
    pub fn finish(mut self, err: Option<&io::Error>) {
        self.finished = true;
        let telemetry = self.telemetry.clone();
        telemetry.finish_session(&mut self, err);
    }

    /// Maps the session's fate onto the five Table 5 rows. A resolved
    /// transaction wins over later connection noise: an accepted
    /// message is `NoError` and a rejected recipient is `Bounce` even
    /// if the peer then slams the socket (a client that fires `QUIT`
    /// and closes without reading the `221` RSTs the final write).
    /// Otherwise IO timeouts are `Timeout` and other IO failures
    /// `NetworkError`; a connection that never spoke is `NetworkError`
    /// too (scanner connect-and-drop); anything else — framing garbage,
    /// command chatter without a transaction — is `OtherError`.
    fn classify(&self, err: Option<&io::Error>) -> DeliveryOutcome {
        if self.accepted > 0 {
            return DeliveryOutcome::NoError;
        }
        if self.rejected_rcpts > 0 {
            return DeliveryOutcome::Bounce;
        }
        if let Some(e) = err {
            return match e.kind() {
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => DeliveryOutcome::Timeout,
                _ => DeliveryOutcome::NetworkError,
            };
        }
        if self.framing_errors == 0 && self.commands == 0 {
            DeliveryOutcome::NetworkError
        } else {
            DeliveryOutcome::OtherError
        }
    }
}

impl Drop for SessionObserver {
    fn drop(&mut self) {
        // A handler that panicked (or dropped the observer without
        // `finish`) must still release the in-flight gauge.
        if !self.finished {
            self.finished = true;
            self.telemetry.note_closed();
        }
    }
}

/// Renders the sampled-session ring as a JSON array (oldest first).
fn render_ring(ring: &VecDeque<SessionSample>) -> String {
    let mut out = String::from("[");
    for (i, s) in ring.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"start_us\": {}, \"total_us\": {}, \"commands\": {}, \
             \"accepted\": {}, \"outcome\": \"{}\", \"phases\": [",
            s.start_us,
            s.total_us,
            s.commands,
            s.accepted,
            outcome_label(s.outcome)
        ));
        for (j, (label, us)) in s.phases.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[\"{label}\", {us}]"));
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Arc<SmtpTelemetry> {
        SmtpTelemetry::new(&TelemetryConfig {
            sample_every: 1,
            ring_capacity: 4,
        })
    }

    #[test]
    fn accepted_session_is_no_error() {
        let t = fresh();
        let mut obs = t.session_start();
        obs.banner_sent();
        obs.command(false, 250);
        obs.command(true, 250);
        obs.data_done(100, true);
        assert_eq!(obs.classify(None), DeliveryOutcome::NoError);
        obs.finish(None);
        let samples = t.samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].outcome, DeliveryOutcome::NoError);
        assert_eq!(samples[0].accepted, 1);
    }

    #[test]
    fn taxonomy_covers_all_five_rows() {
        let t = fresh();
        // Bounce: RCPT rejected, nothing accepted.
        let mut obs = t.session_start();
        obs.command(true, 550);
        assert_eq!(obs.classify(None), DeliveryOutcome::Bounce);
        drop(obs);
        // Timeout and NetworkError from the IO error kind.
        let obs = t.session_start();
        let timeout = io::Error::new(io::ErrorKind::TimedOut, "stalled");
        assert_eq!(obs.classify(Some(&timeout)), DeliveryOutcome::Timeout);
        let reset = io::Error::new(io::ErrorKind::ConnectionReset, "gone");
        assert_eq!(obs.classify(Some(&reset)), DeliveryOutcome::NetworkError);
        drop(obs);
        // A resolved transaction wins over late connection noise (the
        // peer RST-ing after QUIT must not demote the outcome).
        let mut obs = t.session_start();
        obs.data_done(10, true);
        assert_eq!(obs.classify(Some(&reset)), DeliveryOutcome::NoError);
        drop(obs);
        let mut obs = t.session_start();
        obs.command(true, 550);
        assert_eq!(obs.classify(Some(&reset)), DeliveryOutcome::Bounce);
        drop(obs);
        // Silent connect-and-drop: NetworkError.
        let obs = t.session_start();
        assert_eq!(obs.classify(None), DeliveryOutcome::NetworkError);
        drop(obs);
        // Garbage without a transaction: OtherError.
        let mut obs = t.session_start();
        obs.framing_error();
        assert_eq!(obs.classify(None), DeliveryOutcome::OtherError);
        drop(obs);
    }

    #[test]
    fn ring_is_bounded() {
        let t = fresh();
        for _ in 0..10 {
            let obs = t.session_start();
            obs.finish(None);
        }
        assert!(t.samples().len() <= 4);
    }

    #[test]
    fn open_gauge_recovers_on_drop_without_finish() {
        let t = fresh();
        let obs = t.session_start();
        assert_eq!(t.open.load(Ordering::Relaxed), 1);
        drop(obs);
        assert_eq!(t.open.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn ring_renders_as_json() {
        let t = fresh();
        let mut obs = t.session_start();
        obs.banner_sent();
        obs.finish(None);
        let body = render_ring(&t.ring.lock());
        assert!(body.starts_with('['), "{body}");
        assert!(body.contains("\"accept_to_banner\""), "{body}");
        assert!(body.contains("\"outcome\""), "{body}");
    }
}
