//! The in-memory driver: a client session wired straight to a server
//! session, with fault injection.
//!
//! This is how the large-scale campaigns run — delivering ~30,000 honey
//! emails to 7,269 simulated servers takes milliseconds because no sockets
//! are involved, yet every protocol line is exchanged exactly as it would
//! be on the wire.

use crate::client::{ClientAction, ClientOutcome, ClientSession, Email};
use crate::codec;
use crate::fault::{DeliveryOutcome, FaultPlan};
use crate::session::{ReceivedEmail, ServerAction, ServerPolicy, ServerSession};

/// The full result of one in-memory delivery.
#[derive(Debug)]
pub struct PipeResult {
    /// The client's view of the outcome.
    pub client: ClientOutcome,
    /// Messages the server accepted.
    pub received: Vec<ReceivedEmail>,
    /// Complete protocol transcript: (from_client, line).
    pub transcript: Vec<(bool, String)>,
}

impl PipeResult {
    /// Collapses the client outcome into a Table-5 category.
    pub fn delivery_outcome(&self) -> DeliveryOutcome {
        match &self.client {
            ClientOutcome::Accepted => DeliveryOutcome::NoError,
            ClientOutcome::Rejected { .. } => DeliveryOutcome::Bounce,
            ClientOutcome::TransientFailure { .. } => DeliveryOutcome::OtherError,
        }
    }
}

/// Errors the in-memory transport can surface (mirroring socket failures).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipeError {
    /// The (simulated) connection never opened.
    ConnectionRefused,
    /// The (simulated) peer went silent.
    Timeout,
    /// The server closed mid-transaction (e.g. broken STARTTLS).
    ConnectionClosed,
}

impl std::fmt::Display for PipeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipeError::ConnectionRefused => write!(f, "connection refused"),
            PipeError::Timeout => write!(f, "timed out"),
            PipeError::ConnectionClosed => write!(f, "connection closed by peer"),
        }
    }
}

impl std::error::Error for PipeError {}

/// Delivers one message from a fresh client session to a fresh server
/// session built from `policy`.
pub fn deliver(
    email: Email,
    helo_name: &str,
    use_starttls: bool,
    policy: ServerPolicy,
) -> Result<PipeResult, PipeError> {
    let mut server = ServerSession::new(policy);
    let mut client = ClientSession::new(email, helo_name, use_starttls);
    let mut transcript: Vec<(bool, String)> = Vec::new();
    let mut received = Vec::new();

    let mut reply = server.greeting();
    transcript.push((false, reply.to_string()));
    // Bound the exchange defensively; a correct exchange is ~10 steps.
    for _ in 0..64 {
        let action = client.on_reply(&reply);
        match action {
            ClientAction::SendLine(line) => {
                transcript.push((true, line.clone()));
                let sa: ServerAction = server.on_line(&line);
                transcript.push((false, sa.reply.to_string()));
                if let Some(e) = sa.event {
                    received.push(e);
                }
                let closing = sa.close;
                reply = sa.reply;
                if closing && !client.is_done() {
                    // Server hung up mid-session. Let the client interpret
                    // the final reply first if it is a failure; otherwise
                    // surface a closed connection.
                    if reply.is_permanent_failure() || reply.is_transient_failure() {
                        continue;
                    }
                    return Err(PipeError::ConnectionClosed);
                }
            }
            ClientAction::SendData(stuffed) => {
                transcript.push((true, format!("<{} bytes of DATA>", stuffed.len())));
                // Run the payload through the real codec so in-memory
                // delivery has byte-identical framing semantics to TCP.
                let mut framer = codec::LineCodec::new();
                framer.enter_data_mode();
                framer.feed(stuffed.as_bytes());
                let payload = match framer.next_frame() {
                    Ok(Some(codec::Frame::Data(p))) => p,
                    _ => return Err(PipeError::ConnectionClosed),
                };
                let sa = server.on_data(payload);
                transcript.push((false, sa.reply.to_string()));
                if let Some(e) = sa.event {
                    received.push(e);
                }
                reply = sa.reply;
            }
            ClientAction::Finished(outcome) => {
                // Polite QUIT.
                let sa = server.on_line("QUIT");
                transcript.push((true, "QUIT".to_owned()));
                transcript.push((false, sa.reply.to_string()));
                return Ok(PipeResult {
                    client: outcome,
                    received,
                    transcript,
                });
            }
        }
    }
    Err(PipeError::Timeout)
}

/// Delivers one message to a host whose behaviour is drawn from a
/// [`FaultPlan`] keyed by the first recipient's domain — the one-call
/// form the Table-5 campaigns use when only the outcome taxonomy (not a
/// hand-built [`ServerPolicy`]) is known.
///
/// `NoError` hosts run a catch-all transaction through the real state
/// machines; `Bounce` hosts reject every recipient; `OtherError` hosts
/// advertise broken STARTTLS; `Timeout` and `NetworkError` fail at the
/// (simulated) transport before any SMTP exchange.
pub fn deliver_with_faults(
    email: Email,
    helo_name: &str,
    plan: &FaultPlan,
) -> Result<PipeResult, PipeError> {
    let rcpt_domain = email
        .rcpt_to
        .first()
        .map(|a| a.domain().to_owned())
        .unwrap_or_default();
    match plan.outcome_for(&rcpt_domain) {
        DeliveryOutcome::Timeout => Err(PipeError::Timeout),
        DeliveryOutcome::NetworkError => Err(PipeError::ConnectionRefused),
        DeliveryOutcome::Bounce => deliver(
            email,
            helo_name,
            true,
            ServerPolicy::bouncing(&format!("mx.{rcpt_domain}")),
        ),
        DeliveryOutcome::OtherError => {
            let mut policy = ServerPolicy::catch_all(&format!("mx.{rcpt_domain}"), &[]);
            policy.broken_starttls = true;
            deliver(email, helo_name, true, policy)
        }
        DeliveryOutcome::NoError => deliver(
            email,
            helo_name,
            true,
            ServerPolicy::catch_all(&format!("mx.{rcpt_domain}"), &[]),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ets_mail::MessageBuilder;

    fn probe_email(to: &str) -> Email {
        let msg = MessageBuilder::new()
            .from("probe@research.example")
            .unwrap()
            .to(to)
            .unwrap()
            .subject("test")
            .body("connectivity test")
            .build();
        Email::new(
            Some("probe@research.example".parse().unwrap()),
            vec![to.parse().unwrap()],
            msg.to_wire(),
        )
    }

    #[test]
    fn accepted_delivery_end_to_end() {
        let policy = ServerPolicy::catch_all("mx.gmial.com", &["gmial.com".to_owned()]);
        let r = deliver(probe_email("alice@gmial.com"), "vps.example", false, policy).unwrap();
        assert_eq!(r.client, ClientOutcome::Accepted);
        assert_eq!(r.delivery_outcome(), DeliveryOutcome::NoError);
        assert_eq!(r.received.len(), 1);
        let e = &r.received[0];
        assert_eq!(e.rcpt_to[0].to_string(), "alice@gmial.com");
        let parsed = ets_mail::Message::parse(&e.data).unwrap();
        assert_eq!(parsed.subject(), "test");
    }

    #[test]
    fn starttls_delivery() {
        let policy = ServerPolicy::catch_all("mx.gmial.com", &["gmial.com".to_owned()]);
        let r = deliver(probe_email("a@gmial.com"), "vps", true, policy).unwrap();
        assert_eq!(r.client, ClientOutcome::Accepted);
        assert!(r.received[0].tls);
        let lines: Vec<&str> = r
            .transcript
            .iter()
            .filter(|(fc, _)| *fc)
            .map(|(_, l)| l.as_str())
            .collect();
        assert!(lines.contains(&"STARTTLS"));
        // two EHLOs: before and after TLS
        assert_eq!(lines.iter().filter(|l| l.starts_with("EHLO")).count(), 2);
    }

    #[test]
    fn bounce_is_reported() {
        let policy = ServerPolicy::bouncing("mx.dead.com");
        let r = deliver(probe_email("a@dead.com"), "vps", false, policy).unwrap();
        assert_eq!(r.delivery_outcome(), DeliveryOutcome::Bounce);
        assert!(r.received.is_empty());
    }

    #[test]
    fn broken_starttls_surfaces_closed_connection() {
        let mut policy = ServerPolicy::catch_all("mx.x.com", &[]);
        policy.broken_starttls = true;
        let r = deliver(probe_email("a@x.com"), "vps", true, policy).unwrap();
        // 454 is transient → OtherError in Table 5 terms.
        assert_eq!(r.delivery_outcome(), DeliveryOutcome::OtherError);
    }

    #[test]
    fn transcript_is_complete() {
        let policy = ServerPolicy::catch_all("mx.gmial.com", &["gmial.com".to_owned()]);
        let r = deliver(probe_email("a@gmial.com"), "vps", false, policy).unwrap();
        let server_lines = r.transcript.iter().filter(|(fc, _)| !fc).count();
        let client_lines = r.transcript.iter().filter(|(fc, _)| *fc).count();
        // banner + 5 replies + QUIT reply vs EHLO MAIL RCPT DATA payload QUIT
        assert!(server_lines >= 6, "{:?}", r.transcript);
        assert!(client_lines >= 5);
        assert!(r.transcript[0].1.starts_with("220"));
    }

    #[test]
    fn fault_plan_driver_covers_all_outcomes() {
        // A plan with uniform weights must surface every Table-5 category
        // across enough distinct target domains.
        let plan = FaultPlan::new([0.2; 5], 99);
        let mut seen = std::collections::HashSet::new();
        for i in 0..200 {
            let to = format!("user@target{i}.com");
            let outcome = match deliver_with_faults(probe_email(&to), "vps", &plan) {
                Ok(r) => r.delivery_outcome(),
                Err(PipeError::Timeout) => DeliveryOutcome::Timeout,
                Err(PipeError::ConnectionRefused) => DeliveryOutcome::NetworkError,
                Err(PipeError::ConnectionClosed) => DeliveryOutcome::OtherError,
            };
            seen.insert(outcome);
        }
        assert_eq!(seen.len(), 5, "missing outcomes: {seen:?}");
    }

    #[test]
    fn fault_plan_driver_is_deterministic_per_domain() {
        let plan = FaultPlan::table5_public(3);
        let a = deliver_with_faults(probe_email("u@fixed-domain.com"), "vps", &plan);
        let b = deliver_with_faults(probe_email("u@fixed-domain.com"), "vps", &plan);
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x.delivery_outcome(), y.delivery_outcome()),
            (Err(x), Err(y)) => assert_eq!(x, y),
            other => panic!("nondeterministic: {other:?}"),
        }
    }

    #[test]
    fn dotted_content_survives_transport() {
        let policy = ServerPolicy::catch_all("mx.t.com", &[]);
        let mut email = probe_email("a@t.com");
        email.data = "Subject: dots\r\n\r\n.leading dot line\r\n..two dots".to_owned();
        let r = deliver(email, "vps", false, policy).unwrap();
        assert!(r.received[0].data.contains(".leading dot line"));
        assert!(r.received[0].data.contains("..two dots"));
    }
}
