//! `ets-smtp` — run the loopback SMTP server as a standalone process
//! with the live telemetry plane attached.
//!
//! ```text
//! ets-smtp [--listen ADDR] [--telemetry ADDR] [--hostname H]
//!          [--domains a,b,...] [--read-timeout-ms N] [--sample-every N]
//!          [--server-model pool|thread] [--workers N] [--conn-queue N]
//!          [--owner-queue N] [--drive N] [--linger-secs S]
//! ```
//!
//! * `--listen ADDR` — SMTP bind address (default `127.0.0.1:0`).
//! * `--telemetry ADDR` — start the `ets-obs` introspection listener
//!   (`/metrics`, `/snapshot.json`, `/healthz`) on `ADDR`.
//! * `--hostname H` / `--domains a,b` — catch-all policy (defaults:
//!   `mx.gmial.com` accepting `gmial.com`).
//! * `--read-timeout-ms N` — per-connection read timeout (default
//!   30000); drive mode uses a short value so the `Timeout` taxonomy
//!   row exercises quickly.
//! * `--sample-every N` — session trace sampling rate (default 16).
//! * `--server-model pool|thread` — worker-pool (default) or the legacy
//!   thread-per-connection baseline; `--workers`/`--conn-queue` size the
//!   pool, `--owner-queue` bounds the delivery channel.
//! * `--drive N` — drive `N` deterministic loopback sessions cycling
//!   through all five Table 5 outcomes, then report the counters.
//! * `--linger-secs S` — keep serving for `S` seconds after the drive
//!   (so an external scraper can read `/metrics`), then exit.

#![forbid(unsafe_code)]

use ets_smtp::client::Email;
use ets_smtp::net_client::send_email;
use ets_smtp::server::{ConcurrencyModel, ServerOptions, SmtpServer};
use ets_smtp::session::ServerPolicy;
use ets_smtp::telemetry::TelemetryConfig;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut listen = "127.0.0.1:0".to_owned();
    let mut telemetry_addr: Option<String> = None;
    let mut hostname = "mx.gmial.com".to_owned();
    let mut domains = vec!["gmial.com".to_owned()];
    let mut read_timeout_ms: u64 = 30_000;
    let mut sample_every: u64 = 16;
    let mut drive: Option<usize> = None;
    let mut linger_secs: u64 = 0;
    let mut thread_model = false;
    let mut workers: Option<usize> = None;
    let mut conn_queue: Option<usize> = None;
    let mut owner_queue: usize = 1024;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--listen" => match it.next() {
                Some(v) => listen = v.clone(),
                None => return usage("--listen needs an address"),
            },
            "--telemetry" => match it.next() {
                Some(v) => telemetry_addr = Some(v.clone()),
                None => return usage("--telemetry needs an address"),
            },
            "--hostname" => match it.next() {
                Some(v) => hostname = v.clone(),
                None => return usage("--hostname needs a name"),
            },
            "--domains" => match it.next() {
                Some(v) => domains = v.split(',').map(str::to_owned).collect(),
                None => return usage("--domains needs a comma-separated list"),
            },
            "--read-timeout-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => read_timeout_ms = n,
                None => return usage("--read-timeout-ms needs an integer"),
            },
            "--sample-every" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => sample_every = n,
                None => return usage("--sample-every needs an integer"),
            },
            "--drive" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => drive = Some(n),
                None => return usage("--drive needs an integer"),
            },
            "--linger-secs" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => linger_secs = n,
                None => return usage("--linger-secs needs an integer"),
            },
            "--server-model" => match it.next().map(String::as_str) {
                Some("pool") => thread_model = false,
                Some("thread") => thread_model = true,
                _ => return usage("--server-model needs `pool` or `thread`"),
            },
            "--workers" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => workers = Some(n),
                None => return usage("--workers needs an integer"),
            },
            "--conn-queue" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => conn_queue = Some(n),
                None => return usage("--conn-queue needs an integer"),
            },
            "--owner-queue" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => owner_queue = n,
                None => return usage("--owner-queue needs an integer"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let model = if thread_model {
        ConcurrencyModel::ThreadPerConnection
    } else {
        match (workers, ConcurrencyModel::default_pool()) {
            (None, d) => d,
            (Some(w), ConcurrencyModel::WorkerPool { queue, .. }) => ConcurrencyModel::WorkerPool {
                workers: w,
                queue: conn_queue.unwrap_or(queue),
            },
            (Some(w), _) => ConcurrencyModel::WorkerPool {
                workers: w,
                queue: conn_queue.unwrap_or(256),
            },
        }
    };
    let options = ServerOptions {
        read_timeout: Duration::from_millis(read_timeout_ms),
        telemetry: TelemetryConfig {
            sample_every,
            ..TelemetryConfig::default()
        },
        model,
        owner_queue,
    };
    let policy = ServerPolicy::catch_all(&hostname, &domains);
    let server = match SmtpServer::bind_with(&listen, policy, options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("smtp listening on {}", server.addr());

    let _telemetry_server = match telemetry_addr {
        Some(addr) => match ets_obs::serve::serve(&addr) {
            Ok(srv) => {
                println!("telemetry on {}", srv.addr());
                Some(srv)
            }
            Err(e) => {
                eprintln!("cannot bind telemetry {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // Unbuffer the addresses for supervising scripts.
    let _ = std::io::stdout().flush();

    if let Some(n) = drive {
        drive_sessions(&server, n, read_timeout_ms, &domains[0]);
        let drained = server.drain();
        println!("drive complete: {n} sessions, {} delivered", drained.len());
        for (name, v) in ets_obs::metrics::counters_with_prefix("smtp.session_outcome") {
            println!("  outcome {name}: {v}");
        }
        let _ = std::io::stdout().flush();
    }

    if linger_secs > 0 {
        std::thread::sleep(Duration::from_secs(linger_secs));
    } else if drive.is_none() {
        // Serve until killed.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    ExitCode::SUCCESS
}

/// Drives `n` loopback sessions cycling deterministically through the
/// five Table 5 outcomes: accepted delivery, bounced recipient, read
/// timeout, silent connect-and-drop, and protocol garbage.
fn drive_sessions(server: &SmtpServer, n: usize, read_timeout_ms: u64, local_domain: &str) {
    let addr = server.addr().to_string();
    let client_timeout = Duration::from_millis(read_timeout_ms.max(1_000) * 4);
    for i in 0..n {
        match i % 5 {
            // NoError: a catch-all accepted delivery.
            0 => {
                let email = Email::new(
                    Some("alice@gmail.com".parse().expect("static address")),
                    vec![format!("user{i}@{local_domain}").parse().expect("address")],
                    format!("Subject: drive {i}\r\n\r\nhello"),
                );
                let _ = send_email(&addr, email, "drive.example", false, client_timeout);
            }
            // Bounce: a recipient outside the catch-all domains.
            1 => {
                let email = Email::new(
                    Some("alice@gmail.com".parse().expect("static address")),
                    vec![format!("user{i}@unrelated.example")
                        .parse()
                        .expect("address")],
                    "Subject: bounce\r\n\r\nhello".to_owned(),
                );
                let _ = send_email(&addr, email, "drive.example", false, client_timeout);
            }
            // Timeout: greet, then stall past the server's read timeout.
            2 => {
                if let Ok(mut s) = TcpStream::connect(&addr) {
                    let _ = s.set_read_timeout(Some(client_timeout));
                    let mut banner = [0u8; 256];
                    let _ = s.read(&mut banner);
                    std::thread::sleep(Duration::from_millis(read_timeout_ms + 200));
                }
            }
            // NetworkError: connect and vanish without a word.
            3 => {
                if let Ok(s) = TcpStream::connect(&addr) {
                    drop(s);
                    // Give the handler a beat to observe the EOF.
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
            // OtherError: protocol chatter that never forms a
            // transaction.
            _ => {
                if let Ok(mut s) = TcpStream::connect(&addr) {
                    let _ = s.set_read_timeout(Some(client_timeout));
                    let mut banner = [0u8; 256];
                    let _ = s.read(&mut banner);
                    let _ = s.write_all(b"XYZZY plugh\r\n");
                    let _ = s.read(&mut banner);
                }
            }
        }
    }
    // Let the last handler threads classify before reporting.
    std::thread::sleep(Duration::from_millis(300));
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: ets-smtp [--listen ADDR] [--telemetry ADDR] [--hostname H] [--domains a,b] \
         [--read-timeout-ms N] [--sample-every N] [--server-model pool|thread] [--workers N] \
         [--conn-queue N] [--owner-queue N] [--drive N] [--linger-secs S]"
    );
    ExitCode::FAILURE
}
