//! The TCP client driver: delivers one message over a real socket.

use crate::client::{ClientAction, ClientOutcome, ClientSession, Email};
use crate::codec::{Frame, LineCodec};
use crate::reply::Reply;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Errors from a TCP delivery attempt. Protocol-level rejections are *not*
/// errors — they come back as [`ClientOutcome`].
#[derive(Debug)]
pub enum SendError {
    /// TCP connect/read/write failure (Table 5 "Network Error" / "Timeout").
    Io(std::io::Error),
    /// The server sent something that is not an SMTP reply.
    ProtocolGarbage(String),
    /// The server closed the connection mid-session.
    ConnectionClosed,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Io(e) => write!(f, "io: {e}"),
            SendError::ProtocolGarbage(l) => write!(f, "not an SMTP reply: {l:?}"),
            SendError::ConnectionClosed => write!(f, "connection closed mid-session"),
        }
    }
}

impl std::error::Error for SendError {}

impl From<std::io::Error> for SendError {
    fn from(e: std::io::Error) -> Self {
        SendError::Io(e)
    }
}

/// Connects to `addr` and delivers `email`, driving a [`ClientSession`].
pub fn send_email(
    addr: &str,
    email: Email,
    helo_name: &str,
    use_starttls: bool,
    timeout: Duration,
) -> Result<ClientOutcome, SendError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let mut session = ClientSession::new(email, helo_name, use_starttls);
    let mut framer = LineCodec::new();
    let mut buf = [0u8; 4096];
    // One reply-line buffer reused across the whole exchange: the frame
    // borrows the codec's scratch, so it is copied out before the next
    // read can invalidate it.
    let mut line = String::new();
    loop {
        // Read one complete reply line.
        loop {
            match framer.next_frame() {
                Ok(Some(Frame::Line(l))) => {
                    line.clear();
                    line.push_str(l);
                    break;
                }
                // ets-lint: allow(panic-in-library): framer stays in line mode
                // on the client side; a DATA frame here is impossible.
                Ok(Some(Frame::Data(_))) => unreachable!("client never reads DATA frames"),
                Ok(None) => {
                    let n = stream.read(&mut buf)?;
                    if n == 0 {
                        return Err(SendError::ConnectionClosed);
                    }
                    framer.feed(&buf[..n]);
                }
                Err(e) => return Err(SendError::ProtocolGarbage(e.to_string())),
            }
        }
        // Multiline replies: consume continuation lines (code-dash).
        if line.len() >= 4 && &line[3..4] == "-" {
            continue;
        }
        let reply = Reply::parse(&line).ok_or_else(|| SendError::ProtocolGarbage(line.clone()))?;
        match session.on_reply(&reply) {
            ClientAction::SendLine(l) => {
                stream.write_all(l.as_bytes())?;
                stream.write_all(b"\r\n")?;
                stream.flush()?;
            }
            ClientAction::SendData(payload) => {
                stream.write_all(payload.as_bytes())?;
                stream.flush()?;
            }
            ClientAction::Finished(outcome) => {
                // ets-lint: allow(swallowed-error): QUIT is a courtesy;
                // the delivery outcome is already decided at this point.
                let _ = stream.write_all(b"QUIT\r\n");
                return Ok(outcome);
            }
        }
    }
}

/// A scripted raw-socket SMTP exchange: the shared low-level client for
/// the server's protocol-fault tests and `ets-loadgen`'s
/// malformed/slowloris scenarios.
///
/// Unlike [`send_email`] it makes no attempt to speak well-formed SMTP:
/// the caller writes whatever bytes it wants with
/// [`RawSession::write_raw`] and reads whatever reply lines arrive with
/// [`RawSession::read_line_into`] / [`RawSession::read_code`]. Every
/// transport failure surfaces as a [`SendError`] — no unwraps, so test
/// clients and fault injectors share one audited error path.
pub struct RawSession {
    stream: TcpStream,
    framer: LineCodec,
    buf: [u8; 1024],
}

impl RawSession {
    /// Connects to `addr` with symmetric read/write timeouts.
    pub fn connect(addr: &str, timeout: Duration) -> Result<RawSession, SendError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        Ok(RawSession {
            stream,
            framer: LineCodec::new(),
            buf: [0u8; 1024],
        })
    }

    /// Reads one complete reply line (CRLF stripped) into `line`,
    /// replacing its contents. Reusing one `String` across calls keeps
    /// the read loop allocation-free.
    pub fn read_line_into(&mut self, line: &mut String) -> Result<(), SendError> {
        loop {
            match self.framer.next_frame() {
                Ok(Some(Frame::Line(l))) => {
                    line.clear();
                    line.push_str(l);
                    return Ok(());
                }
                // The raw framer never enters DATA mode; a server pushing
                // a payload frame at us is protocol garbage, not a panic.
                Ok(Some(Frame::Data(d))) => return Err(SendError::ProtocolGarbage(d.to_owned())),
                Ok(None) => {
                    let n = self.stream.read(&mut self.buf)?;
                    if n == 0 {
                        return Err(SendError::ConnectionClosed);
                    }
                    self.framer.feed(&self.buf[..n]);
                }
                Err(e) => return Err(SendError::ProtocolGarbage(e.to_string())),
            }
        }
    }

    /// Reads one reply line, returning it owned.
    pub fn read_line(&mut self) -> Result<String, SendError> {
        let mut line = String::new();
        self.read_line_into(&mut line)?;
        Ok(line)
    }

    /// Reads one reply line and returns its parsed three-digit code.
    pub fn read_code(&mut self) -> Result<u16, SendError> {
        let line = self.read_line()?;
        match Reply::parse(&line) {
            Some(r) => Ok(r.code),
            None => Err(SendError::ProtocolGarbage(line)),
        }
    }

    /// Writes raw bytes verbatim and flushes.
    pub fn write_raw(&mut self, bytes: &[u8]) -> Result<(), SendError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_refused_is_io_error() {
        // Bind then immediately drop to get a (very likely) dead port.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let email = Email::new(None, vec!["a@b.com".parse().unwrap()], "x".to_owned());
        let r = send_email(
            &format!("127.0.0.1:{port}"),
            email,
            "c",
            false,
            Duration::from_millis(500),
        );
        assert!(matches!(r, Err(SendError::Io(_))));
    }

    #[test]
    fn garbage_server_is_protocol_error() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let _ = s.write_all(b"NOT SMTP AT ALL\r\n");
        });
        let email = Email::new(None, vec!["a@b.com".parse().unwrap()], "x".to_owned());
        let r = send_email(
            &addr.to_string(),
            email,
            "c",
            false,
            Duration::from_millis(1000),
        );
        assert!(matches!(r, Err(SendError::ProtocolGarbage(_))));
        t.join().unwrap();
    }

    #[test]
    fn server_hangup_is_connection_closed() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (s, _) = listener.accept().unwrap();
            drop(s);
        });
        let email = Email::new(None, vec!["a@b.com".parse().unwrap()], "x".to_owned());
        let r = send_email(
            &addr.to_string(),
            email,
            "c",
            false,
            Duration::from_millis(1000),
        );
        assert!(matches!(
            r,
            Err(SendError::ConnectionClosed) | Err(SendError::Io(_))
        ));
        t.join().unwrap();
    }
}
