//! The server-side SMTP state machine (sans-io).
//!
//! Mirrors the study's Postfix configuration: a catch-all server that
//! accepts any recipient at any subdomain of its domains — "the username
//! and the domain name can thus both be random strings" (§4.2.2) — never
//! relays, and hands every accepted message to the collection pipeline.

use crate::command::{Command, CommandParseError};
use crate::reply::Reply;
use ets_mail::EmailAddress;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerPolicy {
    /// Hostname announced in the greeting.
    pub hostname: String,
    /// Accept any recipient (Postfix catch-all). When `false`, recipients
    /// must match `local_domains`.
    pub catch_all: bool,
    /// Domains considered local; with `catch_all` any subdomain of these
    /// also matches. Empty + `catch_all` accepts absolutely anything.
    pub local_domains: Vec<String>,
    /// Whether EHLO advertises and STARTTLS is accepted.
    pub supports_starttls: bool,
    /// Table 4's "STARTTLS with errors": advertise but fail the upgrade.
    pub broken_starttls: bool,
    /// Reject every RCPT with 550 (the bounce population of Table 5).
    pub reject_all_rcpt: bool,
}

impl ServerPolicy {
    /// The study's collection-server policy for a set of typo domains.
    pub fn catch_all(hostname: &str, domains: &[String]) -> Self {
        ServerPolicy {
            hostname: hostname.to_owned(),
            catch_all: true,
            local_domains: domains.to_vec(),
            supports_starttls: true,
            broken_starttls: false,
            reject_all_rcpt: false,
        }
    }

    /// A bouncing server (every recipient rejected).
    pub fn bouncing(hostname: &str) -> Self {
        ServerPolicy {
            hostname: hostname.to_owned(),
            catch_all: true,
            local_domains: Vec::new(),
            supports_starttls: false,
            broken_starttls: false,
            reject_all_rcpt: true,
        }
    }

    fn accepts_rcpt(&self, addr: &EmailAddress) -> bool {
        if self.reject_all_rcpt {
            return false;
        }
        if self.local_domains.is_empty() {
            return self.catch_all;
        }
        let d = addr.domain();
        self.local_domains.iter().any(|ld| {
            d == ld
                || (self.catch_all && d.ends_with(ld.as_str()) && {
                    let prefix_len = d.len() - ld.len();
                    prefix_len > 0 && d.as_bytes()[prefix_len - 1] == b'.'
                })
        })
    }
}

/// A fully received message, as the envelope saw it.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedEmail {
    /// The HELO/EHLO name the client announced.
    pub client_helo: String,
    /// Envelope sender (`None` for bounce messages).
    pub mail_from: Option<EmailAddress>,
    /// Envelope recipients (at least one).
    pub rcpt_to: Vec<EmailAddress>,
    /// Raw message content (headers + body), dot-unstuffed.
    pub data: String,
    /// Whether STARTTLS was negotiated before the transaction.
    pub tls: bool,
}

/// What the driver should do after feeding the session one input.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerAction {
    /// Reply to transmit.
    pub reply: Reply,
    /// A completed message, if this input finished a transaction.
    pub event: Option<ReceivedEmail>,
    /// Switch the codec to DATA framing before reading further.
    pub enter_data: bool,
    /// Close the connection after transmitting the reply.
    pub close: bool,
    /// Reset the transport (TLS renegotiation point). The in-memory pipe
    /// treats this as a no-op flag.
    pub restart_tls: bool,
}

impl ServerAction {
    fn reply(reply: Reply) -> Self {
        ServerAction {
            reply,
            event: None,
            enter_data: false,
            close: false,
            restart_tls: false,
        }
    }
}

/// Returns `Some(true)` for EHLO lines, `Some(false)` for HELO, `None`
/// otherwise (used to decide whether to advertise extensions).
fn cmd_kind(line: &str) -> Option<bool> {
    let verb = line.split_whitespace().next()?;
    if verb.eq_ignore_ascii_case("EHLO") {
        Some(true)
    } else if verb.eq_ignore_ascii_case("HELO") {
        Some(false)
    } else {
        None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Start,
    Greeted,
    MailGiven,
    RcptGiven,
    InData,
}

/// The server session state machine. Feed it command lines with
/// [`ServerSession::on_line`] and the DATA payload with
/// [`ServerSession::on_data`].
#[derive(Debug)]
pub struct ServerSession {
    policy: ServerPolicy,
    state: State,
    helo: String,
    mail_from: Option<EmailAddress>,
    rcpt_to: Vec<EmailAddress>,
    tls: bool,
}

impl ServerSession {
    /// Creates a session; the driver should send [`ServerSession::greeting`]
    /// immediately.
    pub fn new(policy: ServerPolicy) -> Self {
        ServerSession {
            policy,
            state: State::Start,
            helo: String::new(),
            mail_from: None,
            rcpt_to: Vec::new(),
            tls: false,
        }
    }

    /// The 220 greeting.
    pub fn greeting(&self) -> Reply {
        Reply::service_ready(&self.policy.hostname)
    }

    /// Whether TLS has been negotiated.
    pub fn tls_active(&self) -> bool {
        self.tls
    }

    /// Feeds one command line.
    pub fn on_line(&mut self, line: &str) -> ServerAction {
        debug_assert_ne!(self.state, State::InData, "feed DATA via on_data");
        let cmd = match Command::parse(line) {
            Ok(c) => c,
            Err(CommandParseError::UnknownVerb(_)) => {
                return ServerAction::reply(Reply::not_implemented())
            }
            Err(CommandParseError::BadArgument(_)) => {
                return ServerAction::reply(Reply::syntax_error())
            }
        };
        match cmd {
            Command::Helo(name) | Command::Ehlo(name) => {
                // RFC 5321: only EHLO replies advertise extensions.
                let is_ehlo = matches!(cmd_kind(line), Some(true));
                self.helo = name;
                self.reset_transaction();
                self.state = State::Greeted;
                let text = if is_ehlo && self.policy.supports_starttls {
                    format!("{} greets you; STARTTLS", self.policy.hostname)
                } else {
                    format!("{} greets you", self.policy.hostname)
                };
                ServerAction::reply(Reply::new(250, &text))
            }
            Command::StartTls => {
                if !self.policy.supports_starttls {
                    ServerAction::reply(Reply::not_implemented())
                } else if self.policy.broken_starttls {
                    // Table 4's "Supp. STARTTLS with errors": the upgrade
                    // handshake fails and the connection dies.
                    let mut a = ServerAction::reply(Reply::fixed(454, "TLS not available"));
                    a.close = true;
                    a
                } else if self.tls {
                    ServerAction::reply(Reply::bad_sequence())
                } else {
                    self.tls = true;
                    self.state = State::Start; // RFC 3207: forget everything
                    self.reset_transaction();
                    let mut a = ServerAction::reply(Reply::fixed(220, "Ready to start TLS"));
                    a.restart_tls = true;
                    a
                }
            }
            Command::MailFrom(path) => {
                if self.state != State::Greeted {
                    return ServerAction::reply(Reply::bad_sequence());
                }
                self.mail_from = path;
                self.state = State::MailGiven;
                ServerAction::reply(Reply::ok())
            }
            Command::RcptTo(addr) => {
                if !matches!(self.state, State::MailGiven | State::RcptGiven) {
                    return ServerAction::reply(Reply::bad_sequence());
                }
                if !self.policy.accepts_rcpt(&addr) {
                    return ServerAction::reply(Reply::mailbox_unavailable());
                }
                self.rcpt_to.push(addr);
                self.state = State::RcptGiven;
                ServerAction::reply(Reply::ok())
            }
            Command::Data => {
                if self.state != State::RcptGiven {
                    return ServerAction::reply(Reply::bad_sequence());
                }
                self.state = State::InData;
                let mut a = ServerAction::reply(Reply::start_data());
                a.enter_data = true;
                a
            }
            Command::Rset => {
                self.reset_transaction();
                if self.state != State::Start {
                    self.state = State::Greeted;
                }
                ServerAction::reply(Reply::ok())
            }
            Command::Noop => ServerAction::reply(Reply::ok()),
            Command::Quit => {
                let mut a = ServerAction::reply(Reply::closing());
                a.close = true;
                a
            }
        }
    }

    /// Feeds the complete DATA payload (already unstuffed by the codec).
    pub fn on_data(&mut self, payload: &str) -> ServerAction {
        assert_eq!(self.state, State::InData, "on_data outside DATA");
        let event = ReceivedEmail {
            client_helo: self.helo.clone(),
            mail_from: self.mail_from.take(),
            rcpt_to: std::mem::take(&mut self.rcpt_to),
            data: payload.to_owned(),
            tls: self.tls,
        };
        self.state = State::Greeted;
        let mut a = ServerAction::reply(Reply::queued());
        a.event = Some(event);
        a
    }

    fn reset_transaction(&mut self) {
        self.mail_from = None;
        self.rcpt_to.clear();
        if matches!(self.state, State::MailGiven | State::RcptGiven) {
            self.state = State::Greeted;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catch_all() -> ServerSession {
        ServerSession::new(ServerPolicy::catch_all(
            "mx.gmial.com",
            &["gmial.com".to_owned()],
        ))
    }

    fn run_transaction(s: &mut ServerSession, rcpt: &str) -> (Vec<u16>, Option<ReceivedEmail>) {
        let mut codes = Vec::new();
        let mut event = None;
        for line in [
            "EHLO sender.example".to_owned(),
            "MAIL FROM:<alice@gmail.com>".to_owned(),
            format!("RCPT TO:<{rcpt}>"),
            "DATA".to_owned(),
        ] {
            let a = s.on_line(&line);
            codes.push(a.reply.code);
            if a.enter_data {
                let da = s.on_data("Subject: x\r\n\r\nhello");
                codes.push(da.reply.code);
                event = da.event;
            }
        }
        (codes, event)
    }

    #[test]
    fn happy_path_catch_all() {
        let mut s = catch_all();
        assert_eq!(s.greeting().code, 220);
        let (codes, event) = run_transaction(&mut s, "anything.random@gmial.com");
        assert_eq!(codes, vec![250, 250, 250, 354, 250]);
        let e = event.unwrap();
        assert_eq!(e.client_helo, "sender.example");
        assert_eq!(e.mail_from.unwrap().domain(), "gmail.com");
        assert_eq!(e.rcpt_to[0].local(), "anything.random");
        assert!(e.data.contains("hello"));
    }

    #[test]
    fn subdomain_recipients_accepted() {
        // Wildcard behavior: any subdomain of a local domain.
        let mut s = catch_all();
        let (codes, event) = run_transaction(&mut s, "user@smtp.gmial.com");
        assert_eq!(codes, vec![250, 250, 250, 354, 250]);
        assert!(event.is_some());
    }

    #[test]
    fn foreign_recipients_rejected_no_open_relay() {
        let mut s = catch_all();
        let (codes, event) = run_transaction(&mut s, "victim@gmail.com");
        assert_eq!(codes[2], 550, "must not relay for foreign domains");
        assert!(event.is_none());
    }

    #[test]
    fn lookalike_domain_without_dot_boundary_rejected() {
        let mut s = catch_all();
        let (codes, _) = run_transaction(&mut s, "user@notgmial.com");
        assert_eq!(codes[2], 550);
    }

    #[test]
    fn empty_local_domains_accepts_everything() {
        let mut s = ServerSession::new(ServerPolicy::catch_all("mx.x.com", &[]));
        let (codes, event) = run_transaction(&mut s, "any@where.at.all.com");
        assert_eq!(codes, vec![250, 250, 250, 354, 250]);
        assert!(event.is_some());
    }

    #[test]
    fn bouncing_server_rejects() {
        let mut s = ServerSession::new(ServerPolicy::bouncing("mx.bounce.com"));
        let (codes, event) = run_transaction(&mut s, "a@b.com");
        assert_eq!(codes[2], 550);
        assert!(event.is_none());
    }

    #[test]
    fn command_sequencing_enforced() {
        let mut s = catch_all();
        assert_eq!(s.on_line("MAIL FROM:<a@b.com>").reply.code, 503);
        assert_eq!(s.on_line("DATA").reply.code, 503);
        s.on_line("EHLO x.com");
        assert_eq!(s.on_line("RCPT TO:<a@gmial.com>").reply.code, 503);
        assert_eq!(s.on_line("DATA").reply.code, 503);
    }

    #[test]
    fn null_sender_accepted() {
        let mut s = catch_all();
        s.on_line("EHLO x.com");
        assert_eq!(s.on_line("MAIL FROM:<>").reply.code, 250);
        assert_eq!(s.on_line("RCPT TO:<u@gmial.com>").reply.code, 250);
        let a = s.on_line("DATA");
        assert!(a.enter_data);
        let da = s.on_data("bounce body");
        assert_eq!(da.event.unwrap().mail_from, None);
    }

    #[test]
    fn multiple_recipients() {
        let mut s = catch_all();
        s.on_line("EHLO x.com");
        s.on_line("MAIL FROM:<a@b.com>");
        assert_eq!(s.on_line("RCPT TO:<u1@gmial.com>").reply.code, 250);
        assert_eq!(s.on_line("RCPT TO:<u2@sub.gmial.com>").reply.code, 250);
        s.on_line("DATA");
        let e = s.on_data("x").event.unwrap();
        assert_eq!(e.rcpt_to.len(), 2);
    }

    #[test]
    fn rset_clears_transaction() {
        let mut s = catch_all();
        s.on_line("EHLO x.com");
        s.on_line("MAIL FROM:<a@b.com>");
        s.on_line("RCPT TO:<u@gmial.com>");
        assert_eq!(s.on_line("RSET").reply.code, 250);
        // Must start over with MAIL.
        assert_eq!(s.on_line("DATA").reply.code, 503);
        assert_eq!(s.on_line("MAIL FROM:<c@d.com>").reply.code, 250);
    }

    #[test]
    fn starttls_flow() {
        let mut s = catch_all();
        s.on_line("EHLO x.com");
        let a = s.on_line("STARTTLS");
        assert_eq!(a.reply.code, 220);
        assert!(a.restart_tls);
        assert!(s.tls_active());
        // State was reset: MAIL before EHLO is rejected.
        assert_eq!(s.on_line("MAIL FROM:<a@b.com>").reply.code, 503);
        s.on_line("EHLO x.com");
        s.on_line("MAIL FROM:<a@b.com>");
        s.on_line("RCPT TO:<u@gmial.com>");
        s.on_line("DATA");
        assert!(s.on_data("x").event.unwrap().tls);
        // Double STARTTLS rejected.
        assert_eq!(s.on_line("STARTTLS").reply.code, 503);
    }

    #[test]
    fn broken_starttls_closes() {
        let mut policy = ServerPolicy::catch_all("mx.x.com", &[]);
        policy.broken_starttls = true;
        let mut s = ServerSession::new(policy);
        s.on_line("EHLO x.com");
        let a = s.on_line("STARTTLS");
        assert_eq!(a.reply.code, 454);
        assert!(a.close);
    }

    #[test]
    fn starttls_unsupported() {
        let mut policy = ServerPolicy::catch_all("mx.x.com", &[]);
        policy.supports_starttls = false;
        let mut s = ServerSession::new(policy);
        s.on_line("EHLO x.com");
        assert_eq!(s.on_line("STARTTLS").reply.code, 502);
    }

    #[test]
    fn unknown_and_bad_commands() {
        let mut s = catch_all();
        assert_eq!(s.on_line("FROBNICATE").reply.code, 502);
        assert_eq!(s.on_line("MAIL FRM:<a@b.com>").reply.code, 500);
        assert_eq!(s.on_line("NOOP").reply.code, 250);
    }

    #[test]
    fn quit_closes() {
        let mut s = catch_all();
        let a = s.on_line("QUIT");
        assert_eq!(a.reply.code, 221);
        assert!(a.close);
    }
}
