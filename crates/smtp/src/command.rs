//! SMTP commands (RFC 5321 §4.1).

use ets_mail::EmailAddress;
use std::fmt;

/// The command subset the study's traffic exercises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `HELO <domain>`
    Helo(String),
    /// `EHLO <domain>`
    Ehlo(String),
    /// `MAIL FROM:<reverse-path>` (empty path allowed for bounces).
    MailFrom(Option<EmailAddress>),
    /// `RCPT TO:<forward-path>`
    RcptTo(EmailAddress),
    /// `DATA`
    Data,
    /// `STARTTLS`
    StartTls,
    /// `RSET`
    Rset,
    /// `NOOP`
    Noop,
    /// `QUIT`
    Quit,
}

/// Errors from [`Command::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandParseError {
    /// Not a recognized verb.
    UnknownVerb(String),
    /// Verb recognized, argument malformed.
    BadArgument(String),
}

impl fmt::Display for CommandParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandParseError::UnknownVerb(v) => write!(f, "unknown command {v:?}"),
            CommandParseError::BadArgument(a) => write!(f, "bad argument {a:?}"),
        }
    }
}

impl std::error::Error for CommandParseError {}

impl Command {
    /// Parses one command line (without CRLF). Verbs are case-insensitive.
    pub fn parse(line: &str) -> Result<Command, CommandParseError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(|c: char| c.is_ascii_whitespace()) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        let upper = verb.to_ascii_uppercase();
        match upper.as_str() {
            "HELO" => {
                if rest.is_empty() {
                    Err(CommandParseError::BadArgument(line.to_owned()))
                } else {
                    Ok(Command::Helo(rest.to_owned()))
                }
            }
            "EHLO" => {
                if rest.is_empty() {
                    Err(CommandParseError::BadArgument(line.to_owned()))
                } else {
                    Ok(Command::Ehlo(rest.to_owned()))
                }
            }
            "MAIL" => {
                let path = strip_path_keyword(rest, "FROM")
                    .ok_or_else(|| CommandParseError::BadArgument(line.to_owned()))?;
                if path.is_empty() {
                    Ok(Command::MailFrom(None))
                } else {
                    let addr = EmailAddress::parse(path)
                        .map_err(|_| CommandParseError::BadArgument(line.to_owned()))?;
                    Ok(Command::MailFrom(Some(addr)))
                }
            }
            "RCPT" => {
                let path = strip_path_keyword(rest, "TO")
                    .ok_or_else(|| CommandParseError::BadArgument(line.to_owned()))?;
                let addr = EmailAddress::parse(path)
                    .map_err(|_| CommandParseError::BadArgument(line.to_owned()))?;
                Ok(Command::RcptTo(addr))
            }
            "DATA" => Ok(Command::Data),
            "STARTTLS" => Ok(Command::StartTls),
            "RSET" => Ok(Command::Rset),
            "NOOP" => Ok(Command::Noop),
            "QUIT" => Ok(Command::Quit),
            _ => Err(CommandParseError::UnknownVerb(verb.to_owned())),
        }
    }
}

/// Extracts the path from `FROM:<a@b>` / `TO:<a@b>` syntax; empty `<>`
/// yields an empty string.
fn strip_path_keyword<'a>(rest: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = rest.trim();
    let lower = rest.to_ascii_lowercase();
    let kw = format!("{}:", keyword.to_ascii_lowercase());
    if !lower.starts_with(&kw) {
        return None;
    }
    let path = rest[kw.len()..].trim();
    let path = path.strip_prefix('<')?.strip_suffix('>')?;
    Some(path)
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Helo(d) => write!(f, "HELO {d}"),
            Command::Ehlo(d) => write!(f, "EHLO {d}"),
            Command::MailFrom(Some(a)) => write!(f, "MAIL FROM:<{a}>"),
            Command::MailFrom(None) => write!(f, "MAIL FROM:<>"),
            Command::RcptTo(a) => write!(f, "RCPT TO:<{a}>"),
            Command::Data => write!(f, "DATA"),
            Command::StartTls => write!(f, "STARTTLS"),
            Command::Rset => write!(f, "RSET"),
            Command::Noop => write!(f, "NOOP"),
            Command::Quit => write!(f, "QUIT"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_commands() {
        assert_eq!(
            Command::parse("EHLO client.example").unwrap(),
            Command::Ehlo("client.example".to_owned())
        );
        assert_eq!(Command::parse("data").unwrap(), Command::Data);
        assert_eq!(Command::parse("Quit").unwrap(), Command::Quit);
        assert_eq!(Command::parse("STARTTLS").unwrap(), Command::StartTls);
    }

    #[test]
    fn parse_paths() {
        match Command::parse("MAIL FROM:<alice@gmail.com>").unwrap() {
            Command::MailFrom(Some(a)) => assert_eq!(a.to_string(), "alice@gmail.com"),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            Command::parse("MAIL FROM:<>").unwrap(),
            Command::MailFrom(None)
        );
        match Command::parse("rcpt to:<bob@gmial.com>").unwrap() {
            Command::RcptTo(a) => assert_eq!(a.domain(), "gmial.com"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_tolerates_spacing_and_case() {
        assert!(Command::parse("MAIL   FROM:<a@b.com>").is_ok());
        assert!(Command::parse("mail from:<a@b.com>").is_ok());
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            Command::parse("FROB x"),
            Err(CommandParseError::UnknownVerb(_))
        ));
        assert!(matches!(
            Command::parse("MAIL TO:<a@b.com>"),
            Err(CommandParseError::BadArgument(_))
        ));
        assert!(matches!(
            Command::parse("RCPT TO:bob@x.com"),
            Err(CommandParseError::BadArgument(_))
        ));
        assert!(matches!(
            Command::parse("HELO"),
            Err(CommandParseError::BadArgument(_))
        ));
        // RCPT with empty path is invalid
        assert!(Command::parse("RCPT TO:<>").is_err());
    }

    #[test]
    fn display_round_trip() {
        for line in [
            "HELO vps1.example",
            "EHLO vps1.example",
            "MAIL FROM:<a@b.com>",
            "MAIL FROM:<>",
            "RCPT TO:<x@y.com>",
            "DATA",
            "STARTTLS",
            "RSET",
            "NOOP",
            "QUIT",
        ] {
            let cmd = Command::parse(line).unwrap();
            assert_eq!(Command::parse(&cmd.to_string()).unwrap(), cmd);
        }
    }
}
