//! # ets-smtp
//!
//! The SMTP substrate of the email-typosquatting reproduction.
//!
//! The protocol logic is *sans-io*, in the smoltcp style: the server and
//! client are pure state machines ([`session::ServerSession`],
//! [`client::ClientSession`]) that consume protocol lines and emit replies
//! and events, with no sockets anywhere in sight. Two drivers exist:
//!
//! * an **in-memory driver** ([`pipe`]) that runs a client session against
//!   a server session directly — this is what the large-scale simulations
//!   (50,995-domain honey-probe campaigns) use;
//! * a **TCP driver** ([`server`], [`net_client`]) over `std::net` with a
//!   crossbeam thread pool — this is what the loopback examples and
//!   integration tests use to prove the state machines speak real SMTP
//!   over real sockets.
//!
//! [`fault`] injects the failure modes of Table 5 (bounce, timeout,
//! network error, other error) into either driver.
//!
//! The TCP driver is instrumented by [`telemetry`]: per-phase latency
//! histograms (accept→banner, command, policy, DATA, whole-session),
//! in-flight gauges, a Table 5 outcome-taxonomy counter family, and a
//! 1-in-N sampled session ring — all scrapeable live through
//! `ets_obs::serve` (`ets-smtp --telemetry ADDR`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod command;
pub mod fault;
pub mod net_client;
pub mod pipe;
pub mod reply;
pub mod server;
pub mod session;
pub mod telemetry;

pub use client::{ClientSession, Email};
pub use codec::LineCodec;
pub use command::Command;
pub use fault::{DeliveryOutcome, FaultPlan};
pub use reply::Reply;
pub use session::{ReceivedEmail, ServerPolicy, ServerSession};
