//! SMTP replies (RFC 5321 §4.2).

use std::borrow::Cow;
use std::fmt;

/// A server reply: three-digit code plus text.
///
/// The fixed protocol replies (`250 OK`, `354 …`, `550 …`) carry
/// `Cow::Borrowed` static text, so the per-command serving hot path
/// allocates nothing; only dynamic texts (greeting banners, parsed
/// replies) own their string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The reply code (e.g. 250).
    pub code: u16,
    /// Human-readable text (single line in this subset).
    pub text: Cow<'static, str>,
}

impl Reply {
    /// Creates a reply with owned (dynamic) text.
    pub fn new(code: u16, text: &str) -> Self {
        Reply {
            code,
            text: Cow::Owned(text.to_owned()),
        }
    }

    /// Creates a reply with static text — zero-allocation, `const`.
    pub const fn fixed(code: u16, text: &'static str) -> Self {
        Reply {
            code,
            text: Cow::Borrowed(text),
        }
    }

    /// `220` service ready greeting.
    pub fn service_ready(host: &str) -> Self {
        Reply::new(220, &format!("{host} ESMTP ready"))
    }

    /// `250 OK`.
    pub const fn ok() -> Self {
        Reply::fixed(250, "OK")
    }

    /// `250` transaction queued.
    pub const fn queued() -> Self {
        Reply::fixed(250, "OK: queued")
    }

    /// `221` closing.
    pub const fn closing() -> Self {
        Reply::fixed(221, "Bye")
    }

    /// `354` start mail input.
    pub const fn start_data() -> Self {
        Reply::fixed(354, "End data with <CR><LF>.<CR><LF>")
    }

    /// `550` mailbox unavailable (the bounce of Table 5).
    pub const fn mailbox_unavailable() -> Self {
        Reply::fixed(550, "No such user here")
    }

    /// `503` bad sequence of commands.
    pub const fn bad_sequence() -> Self {
        Reply::fixed(503, "Bad sequence of commands")
    }

    /// `500` syntax error.
    pub const fn syntax_error() -> Self {
        Reply::fixed(500, "Syntax error")
    }

    /// `500` framing rejection (oversized line / bad DATA framing).
    pub const fn line_too_long() -> Self {
        Reply::fixed(500, "Line too long")
    }

    /// `502` command not implemented.
    pub const fn not_implemented() -> Self {
        Reply::fixed(502, "Command not implemented")
    }

    /// `421` service not available (used when shedding load / faulting).
    pub const fn unavailable() -> Self {
        Reply::fixed(421, "Service not available")
    }

    /// `421` idle-timeout courtesy close (RFC 5321 §4.2.4.1).
    pub const fn idle_timeout() -> Self {
        Reply::fixed(421, "4.4.2 idle timeout, closing")
    }

    /// Positive completion (2xx).
    pub fn is_positive(&self) -> bool {
        (200..300).contains(&self.code)
    }

    /// Positive intermediate (3xx — continue with data).
    pub fn is_intermediate(&self) -> bool {
        (300..400).contains(&self.code)
    }

    /// Transient negative (4xx).
    pub fn is_transient_failure(&self) -> bool {
        (400..500).contains(&self.code)
    }

    /// Permanent negative (5xx).
    pub fn is_permanent_failure(&self) -> bool {
        (500..600).contains(&self.code)
    }

    /// Parses a single-line reply (`250 OK`).
    pub fn parse(line: &str) -> Option<Reply> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.len() < 3 {
            return None;
        }
        let code: u16 = line[..3].parse().ok()?;
        if !(200..600).contains(&code) {
            return None;
        }
        let rest = line[3..].strip_prefix([' ', '-']).unwrap_or(&line[3..]);
        Some(Reply::new(code, rest))
    }
}

impl fmt::Display for Reply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories() {
        assert!(Reply::ok().is_positive());
        assert!(Reply::start_data().is_intermediate());
        assert!(Reply::unavailable().is_transient_failure());
        assert!(Reply::mailbox_unavailable().is_permanent_failure());
        assert!(!Reply::ok().is_permanent_failure());
    }

    #[test]
    fn display_and_parse_round_trip() {
        for r in [
            Reply::service_ready("mx.gmial.com"),
            Reply::ok(),
            Reply::start_data(),
            Reply::mailbox_unavailable(),
        ] {
            let line = r.to_string();
            assert_eq!(Reply::parse(&line).unwrap(), r);
        }
    }

    #[test]
    fn fixed_replies_borrow_static_text() {
        for r in [
            Reply::ok(),
            Reply::queued(),
            Reply::closing(),
            Reply::start_data(),
            Reply::mailbox_unavailable(),
            Reply::bad_sequence(),
            Reply::syntax_error(),
            Reply::line_too_long(),
            Reply::not_implemented(),
            Reply::unavailable(),
            Reply::idle_timeout(),
        ] {
            assert!(matches!(r.text, Cow::Borrowed(_)), "{r}");
        }
    }

    #[test]
    fn parse_tolerates_crlf_and_dash() {
        assert_eq!(Reply::parse("250 OK\r\n").unwrap(), Reply::ok());
        assert_eq!(Reply::parse("250-PIPELINING").unwrap().code, 250);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Reply::parse("").is_none());
        assert!(Reply::parse("ab").is_none());
        assert!(Reply::parse("999 nope").is_none());
        assert!(Reply::parse("abc hello").is_none());
        assert!(Reply::parse("100 too low").is_none());
    }
}
