//! The client-side SMTP state machine (sans-io).
//!
//! Drives one message through HELO/EHLO → (optional STARTTLS) →
//! MAIL FROM → RCPT TO → DATA → QUIT, reporting what to send next after
//! each server reply. The honey-email campaigns (§7) use it to send to
//! tens of thousands of typosquatting servers; the TCP driver uses it for
//! real loopback delivery.

use crate::codec;
use crate::reply::Reply;
use ets_mail::EmailAddress;

/// An outgoing message: envelope plus raw content.
#[derive(Debug, Clone, PartialEq)]
pub struct Email {
    /// Envelope sender (`None` sends `MAIL FROM:<>`).
    pub mail_from: Option<EmailAddress>,
    /// Envelope recipients.
    pub rcpt_to: Vec<EmailAddress>,
    /// Wire-format message content.
    pub data: String,
}

impl Email {
    /// Builds an envelope around a wire-format message.
    pub fn new(mail_from: Option<EmailAddress>, rcpt_to: Vec<EmailAddress>, data: String) -> Self {
        Email {
            mail_from,
            rcpt_to,
            data,
        }
    }
}

/// How the delivery attempt ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOutcome {
    /// Message accepted (250 after DATA).
    Accepted,
    /// A permanent 5xx rejection; the code and the phase it happened in.
    Rejected {
        /// The refusing reply code.
        code: u16,
        /// Which phase refused.
        phase: Phase,
    },
    /// A transient 4xx failure.
    TransientFailure {
        /// The reply code.
        code: u16,
        /// Which phase failed.
        phase: Phase,
    },
}

/// Protocol phases, for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting for the 220 banner.
    Banner,
    /// After EHLO.
    Hello,
    /// After STARTTLS.
    Tls,
    /// After MAIL FROM.
    MailFrom,
    /// After RCPT TO.
    RcptTo,
    /// After DATA (the 354 prompt).
    DataPrompt,
    /// After the payload.
    DataBody,
}

/// What the driver should transmit next.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Send this command line (CRLF appended by the driver).
    SendLine(String),
    /// Send this pre-stuffed DATA payload (terminator included).
    SendData(String),
    /// Transaction finished (outcome available); send QUIT and close.
    Finished(ClientOutcome),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    AwaitBanner,
    AwaitHello,
    AwaitTls,
    AwaitMail,
    AwaitRcpt(usize),
    AwaitDataPrompt,
    AwaitDataAck,
    Done,
}

/// The client state machine: feed every server reply to
/// [`ClientSession::on_reply`].
#[derive(Debug)]
pub struct ClientSession {
    email: Email,
    helo_name: String,
    use_starttls: bool,
    state: State,
}

impl ClientSession {
    /// Creates a session for one message. `helo_name` is the name announced
    /// in EHLO; `use_starttls` requests opportunistic TLS.
    pub fn new(email: Email, helo_name: &str, use_starttls: bool) -> Self {
        assert!(!email.rcpt_to.is_empty(), "need at least one recipient");
        ClientSession {
            email,
            helo_name: helo_name.to_owned(),
            use_starttls,
            state: State::AwaitBanner,
        }
    }

    /// Feeds one server reply, returning the next action.
    pub fn on_reply(&mut self, reply: &Reply) -> ClientAction {
        let phase = self.phase();
        if reply.is_permanent_failure() {
            self.state = State::Done;
            return ClientAction::Finished(ClientOutcome::Rejected {
                code: reply.code,
                phase,
            });
        }
        if reply.is_transient_failure() {
            self.state = State::Done;
            return ClientAction::Finished(ClientOutcome::TransientFailure {
                code: reply.code,
                phase,
            });
        }
        match self.state {
            State::AwaitBanner => {
                self.state = State::AwaitHello;
                ClientAction::SendLine(format!("EHLO {}", self.helo_name))
            }
            State::AwaitHello => {
                if self.use_starttls && reply.text.to_ascii_uppercase().contains("STARTTLS") {
                    self.use_starttls = false; // only once
                    self.state = State::AwaitTls;
                    ClientAction::SendLine("STARTTLS".to_owned())
                } else {
                    self.state = State::AwaitMail;
                    ClientAction::SendLine(match &self.email.mail_from {
                        Some(a) => format!("MAIL FROM:<{a}>"),
                        None => "MAIL FROM:<>".to_owned(),
                    })
                }
            }
            State::AwaitTls => {
                // 220: TLS negotiated (simulated); re-EHLO per RFC 3207.
                self.state = State::AwaitHello;
                ClientAction::SendLine(format!("EHLO {}", self.helo_name))
            }
            State::AwaitMail => {
                self.state = State::AwaitRcpt(0);
                ClientAction::SendLine(format!("RCPT TO:<{}>", self.email.rcpt_to[0]))
            }
            State::AwaitRcpt(i) => {
                let next = i + 1;
                if next < self.email.rcpt_to.len() {
                    self.state = State::AwaitRcpt(next);
                    ClientAction::SendLine(format!("RCPT TO:<{}>", self.email.rcpt_to[next]))
                } else {
                    self.state = State::AwaitDataPrompt;
                    ClientAction::SendLine("DATA".to_owned())
                }
            }
            State::AwaitDataPrompt => {
                if !reply.is_intermediate() {
                    self.state = State::Done;
                    return ClientAction::Finished(ClientOutcome::Rejected {
                        code: reply.code,
                        phase: Phase::DataPrompt,
                    });
                }
                self.state = State::AwaitDataAck;
                ClientAction::SendData(codec::stuff(&self.email.data))
            }
            State::AwaitDataAck => {
                self.state = State::Done;
                ClientAction::Finished(ClientOutcome::Accepted)
            }
            State::Done => ClientAction::Finished(ClientOutcome::Rejected {
                code: reply.code,
                phase: Phase::DataBody,
            }),
        }
    }

    fn phase(&self) -> Phase {
        match self.state {
            State::AwaitBanner => Phase::Banner,
            State::AwaitHello => Phase::Hello,
            State::AwaitTls => Phase::Tls,
            State::AwaitMail => Phase::MailFrom,
            State::AwaitRcpt(_) => Phase::RcptTo,
            State::AwaitDataPrompt => Phase::DataPrompt,
            State::AwaitDataAck | State::Done => Phase::DataBody,
        }
    }

    /// Whether the session has reached a terminal state.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn email(to: &str) -> Email {
        Email::new(
            Some("probe@research.example".parse().unwrap()),
            vec![to.parse().unwrap()],
            "Subject: test\r\n\r\nhello".to_owned(),
        )
    }

    #[test]
    fn happy_path_sequence() {
        let mut c = ClientSession::new(email("u@typo.com"), "vps.example", false);
        let a1 = c.on_reply(&Reply::service_ready("mx.typo.com"));
        assert_eq!(a1, ClientAction::SendLine("EHLO vps.example".into()));
        let a2 = c.on_reply(&Reply::new(250, "ok"));
        assert_eq!(
            a2,
            ClientAction::SendLine("MAIL FROM:<probe@research.example>".into())
        );
        let a3 = c.on_reply(&Reply::ok());
        assert_eq!(a3, ClientAction::SendLine("RCPT TO:<u@typo.com>".into()));
        let a4 = c.on_reply(&Reply::ok());
        assert_eq!(a4, ClientAction::SendLine("DATA".into()));
        let a5 = c.on_reply(&Reply::start_data());
        match a5 {
            ClientAction::SendData(d) => assert!(d.ends_with(".\r\n")),
            other => panic!("{other:?}"),
        }
        let a6 = c.on_reply(&Reply::new(250, "queued"));
        assert_eq!(a6, ClientAction::Finished(ClientOutcome::Accepted));
        assert!(c.is_done());
    }

    #[test]
    fn starttls_negotiation() {
        let mut c = ClientSession::new(email("u@typo.com"), "vps.example", true);
        c.on_reply(&Reply::service_ready("mx"));
        let a = c.on_reply(&Reply::new(250, "mx greets you; STARTTLS"));
        assert_eq!(a, ClientAction::SendLine("STARTTLS".into()));
        let a = c.on_reply(&Reply::new(220, "go ahead"));
        assert_eq!(a, ClientAction::SendLine("EHLO vps.example".into()));
        // Second EHLO reply leads to MAIL, not STARTTLS again.
        let a = c.on_reply(&Reply::new(250, "mx greets you; STARTTLS"));
        assert!(matches!(a, ClientAction::SendLine(l) if l.starts_with("MAIL")));
    }

    #[test]
    fn server_without_tls_skips_negotiation() {
        let mut c = ClientSession::new(email("u@typo.com"), "vps", true);
        c.on_reply(&Reply::service_ready("mx"));
        let a = c.on_reply(&Reply::new(250, "mx greets you"));
        assert!(matches!(a, ClientAction::SendLine(l) if l.starts_with("MAIL")));
    }

    #[test]
    fn rejection_at_rcpt_is_reported() {
        let mut c = ClientSession::new(email("u@typo.com"), "vps", false);
        c.on_reply(&Reply::service_ready("mx"));
        c.on_reply(&Reply::ok());
        c.on_reply(&Reply::ok());
        let a = c.on_reply(&Reply::mailbox_unavailable());
        assert_eq!(
            a,
            ClientAction::Finished(ClientOutcome::Rejected {
                code: 550,
                phase: Phase::RcptTo
            })
        );
    }

    #[test]
    fn banner_rejection() {
        let mut c = ClientSession::new(email("u@typo.com"), "vps", false);
        let a = c.on_reply(&Reply::new(554, "go away"));
        assert_eq!(
            a,
            ClientAction::Finished(ClientOutcome::Rejected {
                code: 554,
                phase: Phase::Banner
            })
        );
    }

    #[test]
    fn transient_failure() {
        let mut c = ClientSession::new(email("u@typo.com"), "vps", false);
        let a = c.on_reply(&Reply::unavailable());
        assert_eq!(
            a,
            ClientAction::Finished(ClientOutcome::TransientFailure {
                code: 421,
                phase: Phase::Banner
            })
        );
    }

    #[test]
    fn multiple_recipients_sequenced() {
        let e = Email::new(
            None,
            vec!["a@t.com".parse().unwrap(), "b@t.com".parse().unwrap()],
            "x".to_owned(),
        );
        let mut c = ClientSession::new(e, "vps", false);
        c.on_reply(&Reply::service_ready("mx"));
        let a = c.on_reply(&Reply::ok());
        assert_eq!(a, ClientAction::SendLine("MAIL FROM:<>".into()));
        let a = c.on_reply(&Reply::ok());
        assert_eq!(a, ClientAction::SendLine("RCPT TO:<a@t.com>".into()));
        let a = c.on_reply(&Reply::ok());
        assert_eq!(a, ClientAction::SendLine("RCPT TO:<b@t.com>".into()));
        let a = c.on_reply(&Reply::ok());
        assert_eq!(a, ClientAction::SendLine("DATA".into()));
    }

    #[test]
    #[should_panic(expected = "at least one recipient")]
    fn empty_recipients_panics() {
        let e = Email::new(None, vec![], "x".to_owned());
        ClientSession::new(e, "vps", false);
    }
}
