//! Line framing for the TCP driver.
//!
//! SMTP is line-oriented: commands and replies end with CRLF, and the DATA
//! payload ends with the lone-dot line `CRLF . CRLF` with leading-dot
//! transparency ("dot stuffing", RFC 5321 §4.5.2). [`LineCodec`]
//! accumulates raw socket bytes and yields complete frames.
//!
//! Frames borrow from a scratch buffer owned by the codec: decoding a
//! command line or unstuffing a DATA payload writes into the same
//! reusable `String`, so a session that handles a million lines performs
//! zero per-frame heap allocations after warm-up (the serving hot path
//! measured by `ets-loadgen`). A caller that needs the text beyond the
//! next `feed`/`next_frame` call copies it out explicitly.

use bytes::{Buf, BytesMut};

/// Maximum accepted command-line length (RFC 5321 allows 512 for commands;
/// we are generous to tolerate long paths).
pub const MAX_LINE_LEN: usize = 2048;

/// Maximum accepted DATA payload (defensive cap; the study's emails are
/// far smaller).
pub const MAX_DATA_LEN: usize = 16 * 1024 * 1024;

/// Framing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A line exceeded [`MAX_LINE_LEN`].
    LineTooLong,
    /// A DATA payload exceeded [`MAX_DATA_LEN`].
    DataTooLong,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::LineTooLong => write!(f, "line exceeds {MAX_LINE_LEN} bytes"),
            CodecError::DataTooLong => write!(f, "data exceeds {MAX_DATA_LEN} bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// What the codec is currently framing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Command/reply lines.
    Line,
    /// DATA payload until `CRLF . CRLF`.
    Data,
}

/// An incremental framer over a byte stream.
#[derive(Debug)]
pub struct LineCodec {
    buf: BytesMut,
    mode: Mode,
    /// Reusable decode target; the most recent frame borrows from it.
    scratch: String,
}

/// A decoded frame, borrowing the codec's scratch buffer. Valid until the
/// next `next_frame`/`feed` call on the codec that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame<'a> {
    /// One command or reply line, CRLF stripped.
    Line(&'a str),
    /// A complete DATA payload, dot-unstuffed, terminator stripped.
    Data(&'a str),
}

impl LineCodec {
    /// Creates an empty codec in line mode.
    pub fn new() -> Self {
        LineCodec {
            buf: BytesMut::with_capacity(1024),
            mode: Mode::Line,
            scratch: String::new(),
        }
    }

    /// Feeds raw bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Switches to DATA framing (after the server answers 354).
    pub fn enter_data_mode(&mut self) {
        self.mode = Mode::Data;
    }

    /// Whether the codec is framing a DATA payload.
    pub fn in_data_mode(&self) -> bool {
        self.mode == Mode::Data
    }

    /// Attempts to extract the next complete frame.
    pub fn next_frame(&mut self) -> Result<Option<Frame<'_>>, CodecError> {
        match self.mode {
            Mode::Line => self.next_line(),
            Mode::Data => self.next_data(),
        }
    }

    fn next_line(&mut self) -> Result<Option<Frame<'_>>, CodecError> {
        if let Some(pos) = find_crlf(&self.buf) {
            if pos > MAX_LINE_LEN {
                return Err(CodecError::LineTooLong);
            }
            self.scratch.clear();
            push_lossy(&mut self.scratch, &self.buf[..pos]);
            self.buf.advance(pos + 2); // line + CRLF
            return Ok(Some(Frame::Line(&self.scratch)));
        }
        if self.buf.len() > MAX_LINE_LEN {
            return Err(CodecError::LineTooLong);
        }
        Ok(None)
    }

    fn next_data(&mut self) -> Result<Option<Frame<'_>>, CodecError> {
        // Terminator: CRLF.CRLF — or the degenerate ".CRLF" as the very
        // first bytes of the payload (empty message).
        if self.buf.starts_with(b".\r\n") {
            self.buf.advance(3);
            self.mode = Mode::Line;
            self.scratch.clear();
            return Ok(Some(Frame::Data(&self.scratch)));
        }
        let term = b"\r\n.\r\n";
        if let Some(pos) = find_subslice(&self.buf, term) {
            // Keep the final CRLF of the body; `unstuff_into` strips it.
            unstuff_into(&self.buf[..pos + 2], &mut self.scratch);
            self.buf.advance(pos + term.len());
            self.mode = Mode::Line;
            return Ok(Some(Frame::Data(&self.scratch)));
        }
        if self.buf.len() > MAX_DATA_LEN {
            return Err(CodecError::DataTooLong);
        }
        Ok(None)
    }

    /// Bytes buffered but not yet framed.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }
}

impl Default for LineCodec {
    fn default() -> Self {
        Self::new()
    }
}

fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

fn find_subslice(buf: &[u8], needle: &[u8]) -> Option<usize> {
    buf.windows(needle.len()).position(|w| w == needle)
}

/// Appends raw bytes as UTF-8; invalid sequences take the (allocating)
/// lossy decoder, which real SMTP traffic essentially never hits.
fn push_lossy(out: &mut String, raw: &[u8]) {
    match std::str::from_utf8(raw) {
        Ok(s) => out.push_str(s),
        Err(_) => out.push_str(&String::from_utf8_lossy(raw)),
    }
}

/// Removes dot-stuffing from raw payload bytes into `out` (cleared
/// first): a leading `..` on a CRLF-delimited line becomes `.`, and the
/// trailing CRLF that belonged to the terminator framing is dropped.
fn unstuff_into(raw: &[u8], out: &mut String) {
    out.clear();
    out.reserve(raw.len());
    let mut rest = raw;
    while !rest.is_empty() {
        let (line, remainder) = match find_subslice(rest, b"\r\n") {
            Some(p) => rest.split_at(p + 2),
            None => (rest, &[][..]),
        };
        if let Some(stripped) = line.strip_prefix(b"..") {
            out.push('.');
            push_lossy(out, stripped);
        } else {
            push_lossy(out, line);
        }
        rest = remainder;
    }
    if out.ends_with("\r\n") {
        out.truncate(out.len() - 2);
    }
}

/// Removes dot-stuffing: a leading `..` on a line becomes `.`.
pub fn unstuff(data: &str) -> String {
    let mut out = String::new();
    unstuff_into(data.as_bytes(), &mut out);
    out
}

/// Adds dot-stuffing and the terminator to a payload for transmission.
pub fn stuff(data: &str) -> String {
    let mut out = String::with_capacity(data.len() + 8);
    for line in data.split('\n') {
        let line = line.strip_suffix('\r').unwrap_or(line);
        if line.starts_with('.') {
            out.push('.');
        }
        out.push_str(line);
        out.push_str("\r\n");
    }
    out.push_str(".\r\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Detaches a frame from the codec's scratch buffer for tests that
    /// interleave frame extraction with further feeds.
    fn owned(f: Option<Frame<'_>>) -> Option<(bool, String)> {
        f.map(|f| match f {
            Frame::Line(s) => (false, s.to_owned()),
            Frame::Data(s) => (true, s.to_owned()),
        })
    }

    #[test]
    fn splits_lines() {
        let mut c = LineCodec::new();
        c.feed(b"EHLO a.com\r\nMAIL FROM:<x@y.com>\r\npartial");
        assert_eq!(c.next_frame().unwrap(), Some(Frame::Line("EHLO a.com")));
        assert_eq!(
            c.next_frame().unwrap(),
            Some(Frame::Line("MAIL FROM:<x@y.com>"))
        );
        assert_eq!(c.next_frame().unwrap(), None);
        c.feed(b" done\r\n");
        assert_eq!(c.next_frame().unwrap(), Some(Frame::Line("partial done")));
    }

    #[test]
    fn data_mode_frames_payload() {
        let mut c = LineCodec::new();
        c.enter_data_mode();
        c.feed(b"Subject: hi\r\n\r\nbody line\r\n.\r\nQUIT\r\n");
        assert_eq!(
            c.next_frame().unwrap(),
            Some(Frame::Data("Subject: hi\r\n\r\nbody line"))
        );
        assert!(!c.in_data_mode());
        assert_eq!(c.next_frame().unwrap(), Some(Frame::Line("QUIT")));
    }

    #[test]
    fn empty_data_payload() {
        let mut c = LineCodec::new();
        c.enter_data_mode();
        c.feed(b".\r\n");
        assert_eq!(c.next_frame().unwrap(), Some(Frame::Data("")));
    }

    #[test]
    fn dot_unstuffing() {
        let mut c = LineCodec::new();
        c.enter_data_mode();
        c.feed(b"..leading dot\r\nnormal\r\n.\r\n");
        assert_eq!(
            c.next_frame().unwrap(),
            Some(Frame::Data(".leading dot\r\nnormal"))
        );
    }

    #[test]
    fn line_length_limit() {
        let mut c = LineCodec::new();
        c.feed(&vec![b'a'; MAX_LINE_LEN + 1]);
        assert_eq!(c.next_frame(), Err(CodecError::LineTooLong));
        // The cap also applies when the oversized line arrives complete
        // with its CRLF in one segment.
        let mut c2 = LineCodec::new();
        let mut big = vec![b'a'; MAX_LINE_LEN + 1];
        big.extend_from_slice(b"\r\n");
        c2.feed(&big);
        assert_eq!(c2.next_frame(), Err(CodecError::LineTooLong));
    }

    #[test]
    fn incremental_data_terminator() {
        // Terminator split across feeds.
        let mut c = LineCodec::new();
        c.enter_data_mode();
        c.feed(b"body\r\n.");
        assert_eq!(c.next_frame().unwrap(), None);
        c.feed(b"\r\n");
        assert_eq!(c.next_frame().unwrap(), Some(Frame::Data("body")));
    }

    #[test]
    fn stuff_round_trips_dotted_lines() {
        let payload = ".starts with dot\nplain\n..double";
        let stuffed = stuff(payload);
        let mut c = LineCodec::new();
        c.enter_data_mode();
        c.feed(stuffed.as_bytes());
        match c.next_frame().unwrap() {
            Some(Frame::Data(d)) => {
                assert_eq!(d, ".starts with dot\r\nplain\r\n..double");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn scratch_is_reused_across_frames() {
        // Two frames through one codec must not grow new allocations for
        // same-or-smaller lines: the scratch capacity is retained.
        let mut c = LineCodec::new();
        c.feed(b"MAIL FROM:<someone-long@example.com>\r\n");
        let _ = c.next_frame().unwrap();
        let cap = c.scratch.capacity();
        c.feed(b"RCPT TO:<u@example.com>\r\n");
        assert_eq!(
            c.next_frame().unwrap(),
            Some(Frame::Line("RCPT TO:<u@example.com>"))
        );
        assert_eq!(c.scratch.capacity(), cap);
    }

    #[test]
    fn unstuff_helper_matches_codec() {
        assert_eq!(unstuff("..x\r\ny\r\n"), ".x\r\ny");
        assert_eq!(unstuff(""), "");
        assert_eq!(unstuff("plain"), "plain");
    }

    proptest! {
        #[test]
        fn stuffed_payload_round_trips(body in "[ -~]{0,300}") {
            // Normalize: transmission canonicalizes line endings to CRLF.
            let stuffed = stuff(&body);
            let mut c = LineCodec::new();
            c.enter_data_mode();
            c.feed(stuffed.as_bytes());
            let frame = c.next_frame().unwrap().expect("complete payload");
            let expected = body.split('\n')
                .map(|l| l.strip_suffix('\r').unwrap_or(l))
                .collect::<Vec<_>>()
                .join("\r\n");
            prop_assert_eq!(frame, Frame::Data(expected.as_str()));
            prop_assert_eq!(c.pending(), 0);
        }

        #[test]
        fn feed_in_chunks_equals_feed_at_once(body in "[a-z\r\n.]{0,200}", split in 0usize..200) {
            let stuffed = stuff(&body);
            let bytes = stuffed.as_bytes();
            let cut = split.min(bytes.len());
            let mut c1 = LineCodec::new();
            c1.enter_data_mode();
            c1.feed(bytes);
            let mut c2 = LineCodec::new();
            c2.enter_data_mode();
            c2.feed(&bytes[..cut]);
            let early = owned(c2.next_frame().unwrap());
            c2.feed(&bytes[cut..]);
            let f1 = owned(c1.next_frame().unwrap());
            let f2 = match early {
                Some(f) => Some(f),
                None => owned(c2.next_frame().unwrap()),
            };
            prop_assert_eq!(f1, f2);
        }
    }
}
