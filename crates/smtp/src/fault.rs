//! Fault injection: the failure taxonomy of Table 5.
//!
//! When the study probed 50,995 typosquatting domains it observed five
//! outcomes: acceptance without error, bounce, timeout, network error, and
//! "other error". [`FaultPlan`] assigns one of these behaviours to a
//! delivery attempt — deterministically per target domain, so campaigns
//! are reproducible — and the drivers enact it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome categories of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeliveryOutcome {
    /// Accepted without any error message.
    NoError,
    /// 5xx rejection during the transaction.
    Bounce,
    /// Connection or reply timed out.
    Timeout,
    /// TCP-level failure (refused, reset, unreachable).
    NetworkError,
    /// Anything else (protocol garbage, broken TLS, 4xx weirdness).
    OtherError,
}

impl DeliveryOutcome {
    /// All five categories, in Table 5 row order.
    pub const ALL: [DeliveryOutcome; 5] = [
        DeliveryOutcome::NoError,
        DeliveryOutcome::Bounce,
        DeliveryOutcome::Timeout,
        DeliveryOutcome::NetworkError,
        DeliveryOutcome::OtherError,
    ];
}

impl fmt::Display for DeliveryOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeliveryOutcome::NoError => "No error",
            DeliveryOutcome::Bounce => "Bounce",
            DeliveryOutcome::Timeout => "Timeout",
            DeliveryOutcome::NetworkError => "Network Error",
            DeliveryOutcome::OtherError => "Other error",
        };
        f.write_str(s)
    }
}

/// A probability mix over outcomes, sampled deterministically per key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability of each outcome, Table 5 row order
    /// (no-error, bounce, timeout, network-error, other). Must sum to ~1.
    pub weights: [f64; 5],
    /// Seed mixed into the per-key hash.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that always delivers.
    pub fn always_ok() -> Self {
        FaultPlan {
            weights: [1.0, 0.0, 0.0, 0.0, 0.0],
            seed: 0,
        }
    }

    /// A plan with explicit weights. Panics unless the weights are
    /// non-negative and sum to 1 (±1e-6).
    pub fn new(weights: [f64; 5], seed: u64) -> Self {
        let sum: f64 = weights.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-6 && weights.iter().all(|&w| w >= 0.0),
            "weights must be a distribution, got {weights:?}"
        );
        FaultPlan { weights, seed }
    }

    /// The outcome mix of Table 5's *publicly registered* population
    /// (1,170 no-error / 1,567 bounce / 17,923 timeout / 7,901 network /
    /// 93 other, of 28,654).
    pub fn table5_public(seed: u64) -> Self {
        FaultPlan::from_counts([1_170.0, 1_567.0, 17_923.0, 7_901.0, 93.0], seed)
    }

    /// The outcome mix of Table 5's *privately registered* population
    /// (6,099 / 1,160 / 6,976 / 6,584 / 1,522 of 22,341).
    pub fn table5_private(seed: u64) -> Self {
        FaultPlan::from_counts([6_099.0, 1_160.0, 6_976.0, 6_584.0, 1_522.0], seed)
    }

    /// Builds a plan from raw counts.
    pub fn from_counts(counts: [f64; 5], seed: u64) -> Self {
        let total: f64 = counts.iter().sum();
        assert!(total > 0.0);
        let mut weights = [0.0; 5];
        for (w, c) in weights.iter_mut().zip(counts) {
            *w = c / total;
        }
        FaultPlan { weights, seed }
    }

    /// The outcome assigned to `key` (typically the target domain name).
    /// Deterministic: the same key always fails the same way, as a real
    /// misconfigured server would.
    pub fn outcome_for(&self, key: &str) -> DeliveryOutcome {
        let h = splitmix(fnv(key) ^ self.seed);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform [0,1)
        let mut acc = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            acc += w;
            if u < acc {
                return DeliveryOutcome::ALL[i];
            }
        }
        DeliveryOutcome::OtherError
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let plan = FaultPlan::table5_public(42);
        for key in ["outfook.com", "uutlook.com", "gmial.com"] {
            assert_eq!(plan.outcome_for(key), plan.outcome_for(key));
        }
    }

    #[test]
    fn seed_changes_assignment() {
        let a = FaultPlan::table5_public(1);
        let b = FaultPlan::table5_public(2);
        let keys: Vec<String> = (0..200).map(|i| format!("domain{i}.com")).collect();
        let differs = keys
            .iter()
            .filter(|k| a.outcome_for(k) != b.outcome_for(k))
            .count();
        assert!(differs > 20, "only {differs} differ");
    }

    #[test]
    fn always_ok_is_always_ok() {
        let plan = FaultPlan::always_ok();
        for i in 0..100 {
            assert_eq!(
                plan.outcome_for(&format!("d{i}.com")),
                DeliveryOutcome::NoError
            );
        }
    }

    #[test]
    fn empirical_mix_matches_weights() {
        let plan = FaultPlan::table5_public(7);
        let n = 50_000;
        let mut counts = [0usize; 5];
        for i in 0..n {
            let o = plan.outcome_for(&format!("domain{i}.com"));
            let idx = DeliveryOutcome::ALL.iter().position(|&x| x == o).unwrap();
            counts[idx] += 1;
        }
        for (i, &w) in plan.weights.iter().enumerate() {
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - w).abs() < 0.01,
                "category {i}: got {got:.4}, want {w:.4}"
            );
        }
        // Timeout should dominate, as in Table 5.
        assert_eq!(
            counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0,
            2
        );
    }

    #[test]
    #[should_panic(expected = "distribution")]
    fn bad_weights_panic() {
        FaultPlan::new([0.5, 0.5, 0.5, 0.0, 0.0], 0);
    }

    #[test]
    fn display_matches_table5_rows() {
        assert_eq!(DeliveryOutcome::NoError.to_string(), "No error");
        assert_eq!(DeliveryOutcome::NetworkError.to_string(), "Network Error");
    }
}
