//! `ets-bench` — the pipeline performance ratchet.
//!
//! Compares a fresh `results/bench_pipeline.json` (written by
//! `repro all`) against the committed baseline `BENCH_pipeline.json` and
//! fails when a stage regresses. CI runs `--check` on every push; the
//! baseline is refreshed deliberately with `--update-baseline` when a
//! change is *supposed* to shift the profile.
//!
//! ```text
//! ets-bench --check                 [--bench FILE] [--baseline FILE]
//! ets-bench --update-baseline       [--bench FILE] [--baseline FILE] [--commit HEX]
//! ets-bench --report-md             [--baseline FILE] [--readme FILE]
//! ets-bench --check-serve           [--bench FILE] [--baseline FILE]
//! ets-bench --update-serve-baseline [--bench FILE] [--baseline FILE] [--commit HEX]
//! ```
//!
//! Baseline entries are keyed by `(threads, fast, streaming, scale)` so
//! a single file can hold the configurations CI exercises (reports from
//! before the `--scale` knob carry no scale field and key as their
//! `fast`/`default` mode). Wall-clock noise policy: a stage only fails
//! the check when it exceeds the baseline by **both** 10% relative and
//! 0.35 s absolute — tiny stages jitter far more than 10% between runs,
//! and large stages hide real regressions behind a pure-absolute bound.
//! A missing baseline (or a configuration the baseline has never seen)
//! warns and exits 0, so new CI matrix cells don't fail before anyone
//! has ratcheted them.
//!
//! Stages a run *skipped* (e.g. `world_build` satisfied from a world
//! snapshot) appear in the report with a `skipped` reason instead of
//! `seconds`; the ratchet never mistakes one for a 0-second run of the
//! real stage.
//!
//! `--update-baseline` also **appends** the run to an ever-growing
//! `history` array (`{commit, threads, fast, streaming, scale, stages}`),
//! so the baseline file doubles as the performance trajectory of the
//! repo; `--report-md` renders that trajectory as a Markdown table and
//! can splice it into the README between the
//! `<!-- ets-bench:trajectory -->` / `<!-- /ets-bench:trajectory -->`
//! markers.
//!
//! The `--check-serve` / `--update-serve-baseline` pair is the same
//! ratchet for the serving benchmark: `results/bench_serve.json`
//! (written by `ets-loadgen`) against `BENCH_serve.json`, with entries
//! keyed by `(mix, phase, connections, requests_per_conn, target_rps)`.
//! Correctness fields gate hard — the report must carry all five Table 5
//! taxonomy rows, zero lost workers, and a passing stop-rule verdict —
//! while the performance fields get socket-scale noise headroom:
//! achieved RPS may fall up to 35% below baseline, and a latency
//! quantile only fails when it exceeds the baseline by both 2× relative
//! and 5 ms absolute. Serve updates append to the same-style `history`
//! array in `BENCH_serve.json`.

#![forbid(unsafe_code)]

use serde_json::{json, Value};
use std::process::ExitCode;

/// Relative headroom before a stage counts as regressed.
const REL_TOLERANCE: f64 = 0.10;
/// Absolute headroom (seconds); guards tiny stages against jitter.
const ABS_TOLERANCE: f64 = 0.35;

/// Serving ratchet: tolerated fractional RPS shortfall vs baseline.
const SERVE_RPS_SHORTFALL: f64 = 0.35;
/// Serving ratchet: relative latency headroom (1.0 = may double).
const SERVE_LAT_REL: f64 = 1.0;
/// Serving ratchet: absolute latency headroom in milliseconds.
const SERVE_LAT_ABS_MS: f64 = 5.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut bench_arg: Option<String> = None;
    let mut baseline_arg: Option<String> = None;
    let mut commit = "unknown".to_owned();
    let mut readme_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => mode = Some("check"),
            "--update-baseline" => mode = Some("update"),
            "--report-md" => mode = Some("report"),
            "--check-serve" => mode = Some("check-serve"),
            "--update-serve-baseline" => mode = Some("update-serve"),
            "--bench" => match it.next() {
                Some(p) => bench_arg = Some(p.clone()),
                None => return usage("--bench needs a file path"),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_arg = Some(p.clone()),
                None => return usage("--baseline needs a file path"),
            },
            "--commit" => match it.next() {
                Some(c) => commit = c.clone(),
                None => return usage("--commit needs a revision id"),
            },
            "--readme" => match it.next() {
                Some(p) => readme_path = Some(p.clone()),
                None => return usage("--readme needs a file path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let serve = matches!(mode, Some("check-serve") | Some("update-serve"));
    let bench_path = bench_arg.unwrap_or_else(|| {
        if serve {
            "results/bench_serve.json".to_owned()
        } else {
            "results/bench_pipeline.json".to_owned()
        }
    });
    let baseline_path = baseline_arg.unwrap_or_else(|| {
        if serve {
            "BENCH_serve.json".to_owned()
        } else {
            "BENCH_pipeline.json".to_owned()
        }
    });
    if mode == Some("report") {
        return report_md(&baseline_path, readme_path.as_deref());
    }
    let bench = match read_json(&bench_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("[ets-bench] cannot read {bench_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mode {
        Some("check") => check(&bench, &baseline_path),
        Some("update") => update(&bench, &baseline_path, &commit),
        Some("check-serve") => check_serve(&bench, &baseline_path),
        Some("update-serve") => update_serve(&bench, &baseline_path, &commit),
        _ => usage("pass --check, --update-baseline, --check-serve, --update-serve-baseline, or --report-md"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!("usage: ets-bench --check|--update-baseline|--check-serve|--update-serve-baseline|--report-md [--bench FILE] [--baseline FILE] [--commit HEX] [--readme FILE]");
    eprintln!("  --bench FILE     fresh report to evaluate (default results/bench_pipeline.json; serve modes: results/bench_serve.json)");
    eprintln!("  --baseline FILE  committed ratchet file (default BENCH_pipeline.json; serve modes: BENCH_serve.json)");
    eprintln!("  --commit HEX     revision recorded with --update-baseline");
    eprintln!("  --readme FILE    with --report-md: splice the trajectory table between the ets-bench:trajectory markers in FILE");
    ExitCode::FAILURE
}

fn read_json(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    serde_json::from_str(&text).map_err(|e| e.to_string())
}

/// The `(threads, fast, streaming, scale)` key of a report or baseline
/// entry.
fn config_key(v: &Value) -> (u64, bool, bool, String) {
    let fast = v.get("fast").and_then(Value::as_bool).unwrap_or(false);
    (
        v.get("threads").and_then(Value::as_u64).unwrap_or(0),
        fast,
        // Reports before the streaming pipeline carry no flag; they were
        // all batch.
        v.get("streaming").and_then(Value::as_bool).unwrap_or(false),
        // Reports before the --scale knob carry no scale field; their
        // world size was implied by the fast flag.
        v.get("scale")
            .and_then(Value::as_str)
            .unwrap_or(if fast { "fast" } else { "default" })
            .to_owned(),
    )
}

/// Stage timings of a report or baseline entry as `(name, seconds)`.
/// Skipped stages (a `skipped` reason instead of `seconds`) are excluded
/// here — see [`skipped_stages`].
fn stage_seconds(v: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(stages) = v.get("stages").and_then(Value::as_array) {
        for s in stages {
            let name = s.get("stage").and_then(Value::as_str);
            let secs = s.get("seconds").and_then(Value::as_f64);
            if s.get("skipped").is_some() {
                continue;
            }
            if let (Some(name), Some(secs)) = (name, secs) {
                out.push((name.to_owned(), secs));
            }
        }
    }
    out
}

/// Stages a report explicitly skipped, as `(name, reason)`.
fn skipped_stages(v: &Value) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if let Some(stages) = v.get("stages").and_then(Value::as_array) {
        for s in stages {
            let name = s.get("stage").and_then(Value::as_str);
            let why = s.get("skipped").and_then(Value::as_str);
            if let (Some(name), Some(why)) = (name, why) {
                out.push((name.to_owned(), why.to_owned()));
            }
        }
    }
    out
}

fn check(bench: &Value, baseline_path: &str) -> ExitCode {
    let baseline = match read_json(baseline_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "[ets-bench] no baseline at {baseline_path} ({e}); nothing to ratchet against"
            );
            return ExitCode::SUCCESS;
        }
    };
    let key = config_key(bench);
    let entries = baseline
        .get("entries")
        .and_then(Value::as_array)
        .cloned()
        .unwrap_or_default();
    let Some(base) = entries.iter().find(|e| config_key(e) == key) else {
        eprintln!(
            "[ets-bench] baseline has no entry for threads={} fast={} streaming={} scale={}; run --update-baseline to ratchet this configuration",
            key.0, key.1, key.2, key.3
        );
        return ExitCode::SUCCESS;
    };
    let base_stages = stage_seconds(base);
    let mut failed = false;
    let mut checked = 0;
    for (name, why) in skipped_stages(bench) {
        eprintln!("[ets-bench] stage {name}: skipped ({why}); not ratcheted");
    }
    for (name, secs) in stage_seconds(bench) {
        let Some((_, base_secs)) = base_stages.iter().find(|(n, _)| *n == name) else {
            eprintln!("[ets-bench] stage {name}: {secs:.3}s (new stage, no baseline)");
            continue;
        };
        checked += 1;
        let allowed = f64::max(base_secs * (1.0 + REL_TOLERANCE), base_secs + ABS_TOLERANCE);
        if secs > allowed {
            eprintln!(
                "[ets-bench] REGRESSION stage {name}: {secs:.3}s vs baseline {base_secs:.3}s (allowed {allowed:.3}s)"
            );
            failed = true;
        } else {
            eprintln!("[ets-bench] ok stage {name}: {secs:.3}s vs baseline {base_secs:.3}s");
        }
    }
    if checked == 0 {
        eprintln!("[ets-bench] no overlapping stages between report and baseline");
    }
    if failed {
        eprintln!(
            "[ets-bench] FAIL: stage(s) regressed beyond {:.0}% + {ABS_TOLERANCE}s against {}",
            REL_TOLERANCE * 100.0,
            baseline
                .get("commit")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
        );
        ExitCode::FAILURE
    } else {
        eprintln!("[ets-bench] ratchet holds ({checked} stages checked)");
        ExitCode::SUCCESS
    }
}

fn update(bench: &Value, baseline_path: &str, commit: &str) -> ExitCode {
    let prior = read_json(baseline_path).ok();
    let mut entries = prior
        .as_ref()
        .and_then(|b| b.get("entries").and_then(Value::as_array).cloned())
        .unwrap_or_default();
    let mut history = prior
        .as_ref()
        .and_then(|b| b.get("history").and_then(Value::as_array).cloned())
        .unwrap_or_default();
    let key = config_key(bench);
    let total = bench.get("total_seconds").cloned().unwrap_or(Value::Null);
    let stages = bench.get("stages").cloned().unwrap_or(Value::Null);
    let entry = json!({
        "threads": key.0,
        "fast": key.1,
        "streaming": key.2,
        "scale": key.3,
        "total_seconds": total.clone(),
        "stages": stages.clone(),
    });
    // The ratchet entry for this configuration is replaced; the history
    // records every update ever made, so the file doubles as the repo's
    // performance trajectory.
    history.push(json!({
        "commit": commit,
        "threads": key.0,
        "fast": key.1,
        "streaming": key.2,
        "scale": key.3,
        "total_seconds": total,
        "stages": stages,
    }));
    match entries.iter_mut().find(|e| config_key(e) == key) {
        Some(slot) => *slot = entry,
        None => entries.push(entry),
    }
    let value = json!({ "commit": commit, "entries": entries, "history": history });
    let text = serde_json::to_string_pretty(&value).expect("serializable") + "\n";
    match std::fs::write(baseline_path, text) {
        Ok(()) => {
            eprintln!(
                "[ets-bench] ratcheted {} for threads={} fast={} streaming={} scale={} at {commit}",
                baseline_path, key.0, key.1, key.2, key.3
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[ets-bench] cannot write {baseline_path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `(mix, phase, connections, requests_per_conn, target_rps)` key of
/// one serving-benchmark phase. `mix` lives at the report top level, so
/// it is passed alongside the phase object; baseline entries carry it
/// inline.
fn serve_key(mix: &str, phase: &Value) -> (String, String, u64, u64, String) {
    let num = |k: &str| phase.get(k).and_then(Value::as_u64).unwrap_or(0);
    let rps = phase
        .get("target_rps")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);
    (
        phase
            .get("mix")
            .and_then(Value::as_str)
            .unwrap_or(mix)
            .to_owned(),
        phase
            .get("phase")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_owned(),
        num("connections"),
        num("requests_per_conn"),
        format!("{rps:.1}"),
    )
}

/// The five Table 5 taxonomy keys a serve report must carry.
const TABLE5_KEYS: [&str; 5] = [
    "no_error",
    "bounce",
    "timeout",
    "network_error",
    "other_error",
];

/// Structural and correctness validation of a `bench_serve.json` report:
/// these gate hard with no noise headroom.
fn validate_serve(bench: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    if bench.get("schema").and_then(Value::as_str) != Some("ets.bench_serve.v1") {
        errs.push("schema is not ets.bench_serve.v1".to_owned());
    }
    let phases = bench
        .get("phases")
        .and_then(Value::as_array)
        .cloned()
        .unwrap_or_default();
    if phases.is_empty() {
        errs.push("report has no phases".to_owned());
    }
    for p in &phases {
        let name = p.get("phase").and_then(Value::as_str).unwrap_or("?");
        let observed = p.get("taxonomy").and_then(|t| t.get("observed"));
        match observed.and_then(Value::as_object) {
            Some(map) => {
                for k in TABLE5_KEYS {
                    if !map.contains_key(k) {
                        errs.push(format!("phase {name}: taxonomy row {k} missing"));
                    }
                }
            }
            None => errs.push(format!("phase {name}: no taxonomy.observed object")),
        }
        if p.get("lost_workers").and_then(Value::as_u64).unwrap_or(0) > 0 {
            errs.push(format!("phase {name}: lost worker threads"));
        }
        if p.get("stop_rules")
            .and_then(|s| s.get("pass"))
            .and_then(Value::as_bool)
            != Some(true)
        {
            errs.push(format!("phase {name}: stop rules did not pass"));
        }
    }
    errs
}

/// Latency quantile of a serve phase in milliseconds.
fn serve_quantile(phase: &Value, key: &str) -> Option<f64> {
    phase
        .get("latency")
        .and_then(|l| l.get(key))
        .and_then(Value::as_f64)
}

fn check_serve(bench: &Value, baseline_path: &str) -> ExitCode {
    let structural = validate_serve(bench);
    for e in &structural {
        eprintln!("[ets-bench] serve report invalid: {e}");
    }
    if !structural.is_empty() {
        return ExitCode::FAILURE;
    }
    let mix = bench.get("mix").and_then(Value::as_str).unwrap_or("?");
    let phases = bench
        .get("phases")
        .and_then(Value::as_array)
        .cloned()
        .unwrap_or_default();
    let baseline = match read_json(baseline_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "[ets-bench] no serve baseline at {baseline_path} ({e}); nothing to ratchet against"
            );
            return ExitCode::SUCCESS;
        }
    };
    let entries = baseline
        .get("entries")
        .and_then(Value::as_array)
        .cloned()
        .unwrap_or_default();
    let mut failed = false;
    let mut checked = 0;
    for p in &phases {
        let key = serve_key(mix, p);
        let Some(base) = entries.iter().find(|e| serve_key(mix, e) == key) else {
            eprintln!(
                "[ets-bench] serve baseline has no entry for mix={} phase={} connections={} requests={} rps={}; run --update-serve-baseline to ratchet it",
                key.0, key.1, key.2, key.3, key.4
            );
            continue;
        };
        checked += 1;
        let rps = p.get("achieved_rps").and_then(Value::as_f64).unwrap_or(0.0);
        let base_rps = base
            .get("achieved_rps")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let rps_floor = base_rps * (1.0 - SERVE_RPS_SHORTFALL);
        if rps < rps_floor {
            eprintln!(
                "[ets-bench] REGRESSION serve {}: achieved {rps:.0} rps vs baseline {base_rps:.0} (floor {rps_floor:.0})",
                key.1
            );
            failed = true;
        } else {
            eprintln!(
                "[ets-bench] ok serve {}: {rps:.0} rps vs baseline {base_rps:.0}",
                key.1
            );
        }
        for q in ["p50_ms", "p99_ms", "p999_ms"] {
            let (Some(fresh), Some(base_q)) = (serve_quantile(p, q), serve_quantile(base, q))
            else {
                continue;
            };
            let allowed = f64::max(base_q * (1.0 + SERVE_LAT_REL), base_q + SERVE_LAT_ABS_MS);
            if fresh > allowed {
                eprintln!(
                    "[ets-bench] REGRESSION serve {} {q}: {fresh:.2} ms vs baseline {base_q:.2} ms (allowed {allowed:.2})",
                    key.1
                );
                failed = true;
            } else {
                eprintln!(
                    "[ets-bench] ok serve {} {q}: {fresh:.2} ms vs baseline {base_q:.2} ms",
                    key.1
                );
            }
        }
    }
    if checked == 0 {
        eprintln!("[ets-bench] no serve phase overlaps the baseline");
    }
    if failed {
        eprintln!("[ets-bench] FAIL: serving path regressed against {baseline_path}");
        ExitCode::FAILURE
    } else {
        eprintln!("[ets-bench] serve ratchet holds ({checked} phases checked)");
        ExitCode::SUCCESS
    }
}

fn update_serve(bench: &Value, baseline_path: &str, commit: &str) -> ExitCode {
    let structural = validate_serve(bench);
    for e in &structural {
        eprintln!("[ets-bench] serve report invalid: {e}");
    }
    if !structural.is_empty() {
        return ExitCode::FAILURE;
    }
    let mix = bench.get("mix").and_then(Value::as_str).unwrap_or("?");
    let phases = bench
        .get("phases")
        .and_then(Value::as_array)
        .cloned()
        .unwrap_or_default();
    let prior = read_json(baseline_path).ok();
    let mut entries = prior
        .as_ref()
        .and_then(|b| b.get("entries").and_then(Value::as_array).cloned())
        .unwrap_or_default();
    let mut history = prior
        .as_ref()
        .and_then(|b| b.get("history").and_then(Value::as_array).cloned())
        .unwrap_or_default();
    for p in &phases {
        let key = serve_key(mix, p);
        let mut entry = p.clone();
        if let Value::Object(map) = &mut entry {
            map.insert("mix".to_owned(), json!(key.0));
        }
        match entries.iter_mut().find(|e| serve_key(mix, e) == key) {
            Some(slot) => *slot = entry,
            None => entries.push(entry),
        }
    }
    history.push(json!({
        "commit": commit,
        "mix": mix,
        "seed": bench.get("seed").cloned().unwrap_or(Value::Null),
        "phases": phases,
        "comparison": bench.get("comparison").cloned().unwrap_or(Value::Null),
    }));
    let value = json!({ "commit": commit, "entries": entries, "history": history });
    let text = serde_json::to_string_pretty(&value).expect("serializable") + "\n";
    match std::fs::write(baseline_path, text) {
        Ok(()) => {
            eprintln!(
                "[ets-bench] ratcheted {baseline_path}: {} phase entr{} at {commit}",
                phases.len(),
                if phases.len() == 1 { "y" } else { "ies" }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[ets-bench] cannot write {baseline_path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Markers between which [`report_md`] splices the trajectory table.
const TRAJ_BEGIN: &str = "<!-- ets-bench:trajectory -->";
const TRAJ_END: &str = "<!-- /ets-bench:trajectory -->";

/// Renders the baseline's `history` as a Markdown speedup-trajectory
/// table; prints it, and splices it into `readme` when given. Rows with
/// a `snapshot_load` stage derive a speedup against the most recent
/// fresh `world_build` at the same scale.
fn report_md(baseline_path: &str, readme: Option<&str>) -> ExitCode {
    let baseline = match read_json(baseline_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("[ets-bench] cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let history = baseline
        .get("history")
        .and_then(Value::as_array)
        .cloned()
        .unwrap_or_default();
    let mut table = String::from(
        "| commit | scale | threads | world_build (s) | snapshot_load (s) | load speedup | total (s) |\n\
         |---|---|---|---|---|---|---|\n",
    );
    let fmt = |v: Option<f64>| match v {
        Some(s) => format!("{s:.3}"),
        None => "—".to_owned(),
    };
    let mut last_build: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut rows = 0;
    for h in &history {
        let key = config_key(h);
        let stages = stage_seconds(h);
        let get = |name: &str| stages.iter().find(|(n, _)| n == name).map(|(_, s)| *s);
        let build = get("world_build");
        let load = get("snapshot_load");
        if let Some(b) = build {
            last_build.insert(key.3.clone(), b);
        }
        let speedup = match (load, last_build.get(&key.3)) {
            (Some(l), Some(b)) if l > 0.0 => format!("{:.1}x", b / l),
            _ => "—".to_owned(),
        };
        let commit = h.get("commit").and_then(Value::as_str).unwrap_or("unknown");
        let short: String = commit.chars().take(9).collect();
        let total = h.get("total_seconds").and_then(Value::as_f64);
        table.push_str(&format!(
            "| {short} | {} | {} | {} | {} | {speedup} | {} |\n",
            key.3,
            key.0,
            fmt(build),
            fmt(load),
            fmt(total)
        ));
        rows += 1;
    }
    if rows == 0 {
        table.push_str("| *(no history yet)* | | | | | | |\n");
    }
    print!("{table}");
    let Some(readme_path) = readme else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(readme_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[ets-bench] cannot read {readme_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (Some(begin), Some(end)) = (text.find(TRAJ_BEGIN), text.find(TRAJ_END)) else {
        eprintln!("[ets-bench] {readme_path} has no {TRAJ_BEGIN} / {TRAJ_END} markers");
        return ExitCode::FAILURE;
    };
    if end < begin {
        eprintln!("[ets-bench] {readme_path}: trajectory markers are out of order");
        return ExitCode::FAILURE;
    }
    let spliced = format!(
        "{}{}\n{}{}",
        &text[..begin],
        TRAJ_BEGIN,
        table,
        &text[end..]
    );
    match std::fs::write(readme_path, spliced) {
        Ok(()) => {
            eprintln!("[ets-bench] spliced trajectory table into {readme_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[ets-bench] cannot write {readme_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
