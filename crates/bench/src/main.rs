//! `ets-bench` — the pipeline performance ratchet.
//!
//! Compares a fresh `results/bench_pipeline.json` (written by
//! `repro all`) against the committed baseline `BENCH_pipeline.json` and
//! fails when a stage regresses. CI runs `--check` on every push; the
//! baseline is refreshed deliberately with `--update-baseline` when a
//! change is *supposed* to shift the profile.
//!
//! ```text
//! ets-bench --check            [--bench FILE] [--baseline FILE]
//! ets-bench --update-baseline  [--bench FILE] [--baseline FILE] [--commit HEX]
//! ```
//!
//! Baseline entries are keyed by `(threads, fast, streaming)` so a
//! single file can hold the configurations CI exercises. Wall-clock
//! noise policy: a stage only fails the check when it exceeds the
//! baseline by **both** 10% relative and 0.35 s absolute — tiny stages
//! jitter far more than 10% between runs, and large stages hide real
//! regressions behind a pure-absolute bound. A missing baseline (or a
//! configuration the baseline has never seen) warns and exits 0, so new
//! CI matrix cells don't fail before anyone has ratcheted them.

#![forbid(unsafe_code)]

use serde_json::{json, Value};
use std::process::ExitCode;

/// Relative headroom before a stage counts as regressed.
const REL_TOLERANCE: f64 = 0.10;
/// Absolute headroom (seconds); guards tiny stages against jitter.
const ABS_TOLERANCE: f64 = 0.35;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut bench_path = "results/bench_pipeline.json".to_owned();
    let mut baseline_path = "BENCH_pipeline.json".to_owned();
    let mut commit = "unknown".to_owned();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => mode = Some("check"),
            "--update-baseline" => mode = Some("update"),
            "--bench" => match it.next() {
                Some(p) => bench_path = p.clone(),
                None => return usage("--bench needs a file path"),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = p.clone(),
                None => return usage("--baseline needs a file path"),
            },
            "--commit" => match it.next() {
                Some(c) => commit = c.clone(),
                None => return usage("--commit needs a revision id"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let bench = match read_json(&bench_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("[ets-bench] cannot read {bench_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mode {
        Some("check") => check(&bench, &baseline_path),
        Some("update") => update(&bench, &baseline_path, &commit),
        _ => usage("pass --check or --update-baseline"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!("usage: ets-bench --check|--update-baseline [--bench FILE] [--baseline FILE] [--commit HEX]");
    eprintln!("  --bench FILE     fresh report to evaluate (default results/bench_pipeline.json)");
    eprintln!("  --baseline FILE  committed ratchet file (default BENCH_pipeline.json)");
    eprintln!("  --commit HEX     revision recorded with --update-baseline");
    ExitCode::FAILURE
}

fn read_json(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    serde_json::from_str(&text).map_err(|e| e.to_string())
}

/// The `(threads, fast, streaming)` key of a report or baseline entry.
fn config_key(v: &Value) -> (u64, bool, bool) {
    (
        v.get("threads").and_then(Value::as_u64).unwrap_or(0),
        v.get("fast").and_then(Value::as_bool).unwrap_or(false),
        // Reports before the streaming pipeline carry no flag; they were
        // all batch.
        v.get("streaming").and_then(Value::as_bool).unwrap_or(false),
    )
}

/// Stage timings of a report or baseline entry as `(name, seconds)`.
fn stage_seconds(v: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(stages) = v.get("stages").and_then(Value::as_array) {
        for s in stages {
            let name = s.get("stage").and_then(Value::as_str);
            let secs = s.get("seconds").and_then(Value::as_f64);
            if let (Some(name), Some(secs)) = (name, secs) {
                out.push((name.to_owned(), secs));
            }
        }
    }
    out
}

fn check(bench: &Value, baseline_path: &str) -> ExitCode {
    let baseline = match read_json(baseline_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "[ets-bench] no baseline at {baseline_path} ({e}); nothing to ratchet against"
            );
            return ExitCode::SUCCESS;
        }
    };
    let key = config_key(bench);
    let entries = baseline
        .get("entries")
        .and_then(Value::as_array)
        .cloned()
        .unwrap_or_default();
    let Some(base) = entries.iter().find(|e| config_key(e) == key) else {
        eprintln!(
            "[ets-bench] baseline has no entry for threads={} fast={} streaming={}; run --update-baseline to ratchet this configuration",
            key.0, key.1, key.2
        );
        return ExitCode::SUCCESS;
    };
    let base_stages = stage_seconds(base);
    let mut failed = false;
    let mut checked = 0;
    for (name, secs) in stage_seconds(bench) {
        let Some((_, base_secs)) = base_stages.iter().find(|(n, _)| *n == name) else {
            eprintln!("[ets-bench] stage {name}: {secs:.3}s (new stage, no baseline)");
            continue;
        };
        checked += 1;
        let allowed = f64::max(base_secs * (1.0 + REL_TOLERANCE), base_secs + ABS_TOLERANCE);
        if secs > allowed {
            eprintln!(
                "[ets-bench] REGRESSION stage {name}: {secs:.3}s vs baseline {base_secs:.3}s (allowed {allowed:.3}s)"
            );
            failed = true;
        } else {
            eprintln!("[ets-bench] ok stage {name}: {secs:.3}s vs baseline {base_secs:.3}s");
        }
    }
    if checked == 0 {
        eprintln!("[ets-bench] no overlapping stages between report and baseline");
    }
    if failed {
        eprintln!(
            "[ets-bench] FAIL: stage(s) regressed beyond {:.0}% + {ABS_TOLERANCE}s against {}",
            REL_TOLERANCE * 100.0,
            baseline
                .get("commit")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
        );
        ExitCode::FAILURE
    } else {
        eprintln!("[ets-bench] ratchet holds ({checked} stages checked)");
        ExitCode::SUCCESS
    }
}

fn update(bench: &Value, baseline_path: &str, commit: &str) -> ExitCode {
    let mut entries = read_json(baseline_path)
        .ok()
        .and_then(|b| b.get("entries").and_then(Value::as_array).cloned())
        .unwrap_or_default();
    let key = config_key(bench);
    let total = bench.get("total_seconds").cloned().unwrap_or(Value::Null);
    let stages = bench.get("stages").cloned().unwrap_or(Value::Null);
    let entry = json!({
        "threads": key.0,
        "fast": key.1,
        "streaming": key.2,
        "total_seconds": total,
        "stages": stages,
    });
    match entries.iter_mut().find(|e| config_key(e) == key) {
        Some(slot) => *slot = entry,
        None => entries.push(entry),
    }
    let value = json!({ "commit": commit, "entries": entries });
    let text = serde_json::to_string_pretty(&value).expect("serializable") + "\n";
    match std::fs::write(baseline_path, text) {
        Ok(()) => {
            eprintln!(
                "[ets-bench] ratcheted {} for threads={} fast={} streaming={} at {commit}",
                baseline_path, key.0, key.1, key.2
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[ets-bench] cannot write {baseline_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
