//! `ets-bench` — the pipeline performance ratchet.
//!
//! Compares a fresh `results/bench_pipeline.json` (written by
//! `repro all`) against the committed baseline `BENCH_pipeline.json` and
//! fails when a stage regresses. CI runs `--check` on every push; the
//! baseline is refreshed deliberately with `--update-baseline` when a
//! change is *supposed* to shift the profile.
//!
//! ```text
//! ets-bench --check            [--bench FILE] [--baseline FILE]
//! ets-bench --update-baseline  [--bench FILE] [--baseline FILE] [--commit HEX]
//! ets-bench --report-md        [--baseline FILE] [--readme FILE]
//! ```
//!
//! Baseline entries are keyed by `(threads, fast, streaming, scale)` so
//! a single file can hold the configurations CI exercises (reports from
//! before the `--scale` knob carry no scale field and key as their
//! `fast`/`default` mode). Wall-clock noise policy: a stage only fails
//! the check when it exceeds the baseline by **both** 10% relative and
//! 0.35 s absolute — tiny stages jitter far more than 10% between runs,
//! and large stages hide real regressions behind a pure-absolute bound.
//! A missing baseline (or a configuration the baseline has never seen)
//! warns and exits 0, so new CI matrix cells don't fail before anyone
//! has ratcheted them.
//!
//! Stages a run *skipped* (e.g. `world_build` satisfied from a world
//! snapshot) appear in the report with a `skipped` reason instead of
//! `seconds`; the ratchet never mistakes one for a 0-second run of the
//! real stage.
//!
//! `--update-baseline` also **appends** the run to an ever-growing
//! `history` array (`{commit, threads, fast, streaming, scale, stages}`),
//! so the baseline file doubles as the performance trajectory of the
//! repo; `--report-md` renders that trajectory as a Markdown table and
//! can splice it into the README between the
//! `<!-- ets-bench:trajectory -->` / `<!-- /ets-bench:trajectory -->`
//! markers.

#![forbid(unsafe_code)]

use serde_json::{json, Value};
use std::process::ExitCode;

/// Relative headroom before a stage counts as regressed.
const REL_TOLERANCE: f64 = 0.10;
/// Absolute headroom (seconds); guards tiny stages against jitter.
const ABS_TOLERANCE: f64 = 0.35;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut bench_path = "results/bench_pipeline.json".to_owned();
    let mut baseline_path = "BENCH_pipeline.json".to_owned();
    let mut commit = "unknown".to_owned();
    let mut readme_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => mode = Some("check"),
            "--update-baseline" => mode = Some("update"),
            "--report-md" => mode = Some("report"),
            "--bench" => match it.next() {
                Some(p) => bench_path = p.clone(),
                None => return usage("--bench needs a file path"),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = p.clone(),
                None => return usage("--baseline needs a file path"),
            },
            "--commit" => match it.next() {
                Some(c) => commit = c.clone(),
                None => return usage("--commit needs a revision id"),
            },
            "--readme" => match it.next() {
                Some(p) => readme_path = Some(p.clone()),
                None => return usage("--readme needs a file path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    if mode == Some("report") {
        return report_md(&baseline_path, readme_path.as_deref());
    }
    let bench = match read_json(&bench_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("[ets-bench] cannot read {bench_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mode {
        Some("check") => check(&bench, &baseline_path),
        Some("update") => update(&bench, &baseline_path, &commit),
        _ => usage("pass --check, --update-baseline, or --report-md"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!("usage: ets-bench --check|--update-baseline|--report-md [--bench FILE] [--baseline FILE] [--commit HEX] [--readme FILE]");
    eprintln!("  --bench FILE     fresh report to evaluate (default results/bench_pipeline.json)");
    eprintln!("  --baseline FILE  committed ratchet file (default BENCH_pipeline.json)");
    eprintln!("  --commit HEX     revision recorded with --update-baseline");
    eprintln!("  --readme FILE    with --report-md: splice the trajectory table between the ets-bench:trajectory markers in FILE");
    ExitCode::FAILURE
}

fn read_json(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    serde_json::from_str(&text).map_err(|e| e.to_string())
}

/// The `(threads, fast, streaming, scale)` key of a report or baseline
/// entry.
fn config_key(v: &Value) -> (u64, bool, bool, String) {
    let fast = v.get("fast").and_then(Value::as_bool).unwrap_or(false);
    (
        v.get("threads").and_then(Value::as_u64).unwrap_or(0),
        fast,
        // Reports before the streaming pipeline carry no flag; they were
        // all batch.
        v.get("streaming").and_then(Value::as_bool).unwrap_or(false),
        // Reports before the --scale knob carry no scale field; their
        // world size was implied by the fast flag.
        v.get("scale")
            .and_then(Value::as_str)
            .unwrap_or(if fast { "fast" } else { "default" })
            .to_owned(),
    )
}

/// Stage timings of a report or baseline entry as `(name, seconds)`.
/// Skipped stages (a `skipped` reason instead of `seconds`) are excluded
/// here — see [`skipped_stages`].
fn stage_seconds(v: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(stages) = v.get("stages").and_then(Value::as_array) {
        for s in stages {
            let name = s.get("stage").and_then(Value::as_str);
            let secs = s.get("seconds").and_then(Value::as_f64);
            if s.get("skipped").is_some() {
                continue;
            }
            if let (Some(name), Some(secs)) = (name, secs) {
                out.push((name.to_owned(), secs));
            }
        }
    }
    out
}

/// Stages a report explicitly skipped, as `(name, reason)`.
fn skipped_stages(v: &Value) -> Vec<(String, String)> {
    let mut out = Vec::new();
    if let Some(stages) = v.get("stages").and_then(Value::as_array) {
        for s in stages {
            let name = s.get("stage").and_then(Value::as_str);
            let why = s.get("skipped").and_then(Value::as_str);
            if let (Some(name), Some(why)) = (name, why) {
                out.push((name.to_owned(), why.to_owned()));
            }
        }
    }
    out
}

fn check(bench: &Value, baseline_path: &str) -> ExitCode {
    let baseline = match read_json(baseline_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!(
                "[ets-bench] no baseline at {baseline_path} ({e}); nothing to ratchet against"
            );
            return ExitCode::SUCCESS;
        }
    };
    let key = config_key(bench);
    let entries = baseline
        .get("entries")
        .and_then(Value::as_array)
        .cloned()
        .unwrap_or_default();
    let Some(base) = entries.iter().find(|e| config_key(e) == key) else {
        eprintln!(
            "[ets-bench] baseline has no entry for threads={} fast={} streaming={} scale={}; run --update-baseline to ratchet this configuration",
            key.0, key.1, key.2, key.3
        );
        return ExitCode::SUCCESS;
    };
    let base_stages = stage_seconds(base);
    let mut failed = false;
    let mut checked = 0;
    for (name, why) in skipped_stages(bench) {
        eprintln!("[ets-bench] stage {name}: skipped ({why}); not ratcheted");
    }
    for (name, secs) in stage_seconds(bench) {
        let Some((_, base_secs)) = base_stages.iter().find(|(n, _)| *n == name) else {
            eprintln!("[ets-bench] stage {name}: {secs:.3}s (new stage, no baseline)");
            continue;
        };
        checked += 1;
        let allowed = f64::max(base_secs * (1.0 + REL_TOLERANCE), base_secs + ABS_TOLERANCE);
        if secs > allowed {
            eprintln!(
                "[ets-bench] REGRESSION stage {name}: {secs:.3}s vs baseline {base_secs:.3}s (allowed {allowed:.3}s)"
            );
            failed = true;
        } else {
            eprintln!("[ets-bench] ok stage {name}: {secs:.3}s vs baseline {base_secs:.3}s");
        }
    }
    if checked == 0 {
        eprintln!("[ets-bench] no overlapping stages between report and baseline");
    }
    if failed {
        eprintln!(
            "[ets-bench] FAIL: stage(s) regressed beyond {:.0}% + {ABS_TOLERANCE}s against {}",
            REL_TOLERANCE * 100.0,
            baseline
                .get("commit")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
        );
        ExitCode::FAILURE
    } else {
        eprintln!("[ets-bench] ratchet holds ({checked} stages checked)");
        ExitCode::SUCCESS
    }
}

fn update(bench: &Value, baseline_path: &str, commit: &str) -> ExitCode {
    let prior = read_json(baseline_path).ok();
    let mut entries = prior
        .as_ref()
        .and_then(|b| b.get("entries").and_then(Value::as_array).cloned())
        .unwrap_or_default();
    let mut history = prior
        .as_ref()
        .and_then(|b| b.get("history").and_then(Value::as_array).cloned())
        .unwrap_or_default();
    let key = config_key(bench);
    let total = bench.get("total_seconds").cloned().unwrap_or(Value::Null);
    let stages = bench.get("stages").cloned().unwrap_or(Value::Null);
    let entry = json!({
        "threads": key.0,
        "fast": key.1,
        "streaming": key.2,
        "scale": key.3,
        "total_seconds": total.clone(),
        "stages": stages.clone(),
    });
    // The ratchet entry for this configuration is replaced; the history
    // records every update ever made, so the file doubles as the repo's
    // performance trajectory.
    history.push(json!({
        "commit": commit,
        "threads": key.0,
        "fast": key.1,
        "streaming": key.2,
        "scale": key.3,
        "total_seconds": total,
        "stages": stages,
    }));
    match entries.iter_mut().find(|e| config_key(e) == key) {
        Some(slot) => *slot = entry,
        None => entries.push(entry),
    }
    let value = json!({ "commit": commit, "entries": entries, "history": history });
    let text = serde_json::to_string_pretty(&value).expect("serializable") + "\n";
    match std::fs::write(baseline_path, text) {
        Ok(()) => {
            eprintln!(
                "[ets-bench] ratcheted {} for threads={} fast={} streaming={} scale={} at {commit}",
                baseline_path, key.0, key.1, key.2, key.3
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[ets-bench] cannot write {baseline_path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Markers between which [`report_md`] splices the trajectory table.
const TRAJ_BEGIN: &str = "<!-- ets-bench:trajectory -->";
const TRAJ_END: &str = "<!-- /ets-bench:trajectory -->";

/// Renders the baseline's `history` as a Markdown speedup-trajectory
/// table; prints it, and splices it into `readme` when given. Rows with
/// a `snapshot_load` stage derive a speedup against the most recent
/// fresh `world_build` at the same scale.
fn report_md(baseline_path: &str, readme: Option<&str>) -> ExitCode {
    let baseline = match read_json(baseline_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("[ets-bench] cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let history = baseline
        .get("history")
        .and_then(Value::as_array)
        .cloned()
        .unwrap_or_default();
    let mut table = String::from(
        "| commit | scale | threads | world_build (s) | snapshot_load (s) | load speedup | total (s) |\n\
         |---|---|---|---|---|---|---|\n",
    );
    let fmt = |v: Option<f64>| match v {
        Some(s) => format!("{s:.3}"),
        None => "—".to_owned(),
    };
    let mut last_build: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut rows = 0;
    for h in &history {
        let key = config_key(h);
        let stages = stage_seconds(h);
        let get = |name: &str| stages.iter().find(|(n, _)| n == name).map(|(_, s)| *s);
        let build = get("world_build");
        let load = get("snapshot_load");
        if let Some(b) = build {
            last_build.insert(key.3.clone(), b);
        }
        let speedup = match (load, last_build.get(&key.3)) {
            (Some(l), Some(b)) if l > 0.0 => format!("{:.1}x", b / l),
            _ => "—".to_owned(),
        };
        let commit = h.get("commit").and_then(Value::as_str).unwrap_or("unknown");
        let short: String = commit.chars().take(9).collect();
        let total = h.get("total_seconds").and_then(Value::as_f64);
        table.push_str(&format!(
            "| {short} | {} | {} | {} | {} | {speedup} | {} |\n",
            key.3,
            key.0,
            fmt(build),
            fmt(load),
            fmt(total)
        ));
        rows += 1;
    }
    if rows == 0 {
        table.push_str("| *(no history yet)* | | | | | | |\n");
    }
    print!("{table}");
    let Some(readme_path) = readme else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(readme_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[ets-bench] cannot read {readme_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (Some(begin), Some(end)) = (text.find(TRAJ_BEGIN), text.find(TRAJ_END)) else {
        eprintln!("[ets-bench] {readme_path} has no {TRAJ_BEGIN} / {TRAJ_END} markers");
        return ExitCode::FAILURE;
    };
    if end < begin {
        eprintln!("[ets-bench] {readme_path}: trajectory markers are out of order");
        return ExitCode::FAILURE;
    }
    let spliced = format!(
        "{}{}\n{}{}",
        &text[..begin],
        TRAJ_BEGIN,
        table,
        &text[end..]
    );
    match std::fs::write(readme_path, spliced) {
        Ok(()) => {
            eprintln!("[ets-bench] spliced trajectory table into {readme_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("[ets-bench] cannot write {readme_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
