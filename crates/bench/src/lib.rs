//! # ets-bench
//!
//! Criterion benchmarks for the email-typosquatting reproduction: the
//! string metrics and typo generation that §5.1 runs over millions of
//! candidates, the DNS/SMTP codecs, the classification funnel, the
//! DESIGN.md ablations, and end-to-end experiment regeneration.
//!
//! Run with `cargo bench --workspace`. Shared fixtures live here so the
//! individual bench targets stay small.

#![forbid(unsafe_code)]

use ets_collector::infra::{CollectedEmail, CollectionInfra};
use ets_collector::traffic::{TrafficConfig, TrafficGenerator};

/// A small fixed traffic capture shared by the funnel benches.
pub fn bench_collection(seed: u64) -> (CollectionInfra, Vec<CollectedEmail>) {
    let infra = CollectionInfra::build();
    let config = TrafficConfig {
        seed,
        spam_scale: 1.0 / 40_000.0,
        ..TrafficConfig::default()
    };
    let emails = TrafficGenerator::new(&infra, config)
        .generate()
        .into_iter()
        .map(|e| e.collected)
        .collect();
    (infra, emails)
}

/// Representative domain pairs for the distance benches.
pub const DISTANCE_PAIRS: [(&str, &str); 6] = [
    ("gmail", "gmial"),
    ("outlook", "outlo0k"),
    ("hotmail", "hovmail"),
    ("verizon", "evrizon"),
    ("comcast", "comcawst"),
    ("tenminutemail", "tenminutemial"),
];
