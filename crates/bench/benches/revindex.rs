//! Reverse DL-1 index benchmarks: build cost over a target list, and
//! query cost against the linear "DL to every target" scan it replaces —
//! the §5.1 workload in reverse ("which targets is this zone-file domain
//! a typo of?").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ets_core::{distance, typogen, DomainName, ReverseDl1Index};

fn targets(n: usize) -> Vec<DomainName> {
    ets_core::alexa::synthetic_top(n)
        .iter()
        .map(|e| e.domain.clone())
        .collect()
}

/// Query mix: every DL-1 variant of a slice of targets (hits) plus the
/// targets themselves (mostly misses).
fn queries(targets: &[DomainName]) -> Vec<DomainName> {
    let mut out: Vec<DomainName> = Vec::new();
    for t in targets.iter().take(10) {
        for c in typogen::generate_dl1(t) {
            out.push(c.domain);
        }
    }
    out.extend(targets.iter().cloned());
    out
}

fn bench_build(c: &mut Criterion) {
    let ts = targets(200);
    c.bench_function("revindex_build/top-200", |b| {
        b.iter(|| black_box(ReverseDl1Index::build(black_box(&ts))))
    });
}

fn bench_matches_vs_scan(c: &mut Criterion) {
    let ts = targets(200);
    let index = ReverseDl1Index::build(&ts);
    let qs = queries(&ts);
    c.bench_function("revindex_matches/top-200", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &qs {
                hits += index.matches(black_box(q)).len();
            }
            black_box(hits)
        })
    });
    c.bench_function("linear_scan_matches/top-200", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &qs {
                hits += ts
                    .iter()
                    .filter(|t| {
                        t.tld() == q.tld() && distance::damerau_levenshtein(t.sld(), q.sld()) == 1
                    })
                    .count();
            }
            black_box(hits)
        })
    });
}

fn bench_is_typo(c: &mut Criterion) {
    let ts = targets(200);
    let index = ReverseDl1Index::build(&ts);
    let qs = queries(&ts);
    c.bench_function("revindex_is_typo/top-200", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &qs {
                hits += usize::from(index.is_typo(black_box(q)));
            }
            black_box(hits)
        })
    });
}

criterion_group!(benches, bench_build, bench_matches_vs_scan, bench_is_typo);
criterion_main!(benches);
