//! Distance-metric micro-benchmarks: DL, fat-finger, and visual distance
//! over representative domain pairs. §5.1 evaluates lexical closeness for
//! millions of candidates, so per-pair cost matters.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ets_bench::DISTANCE_PAIRS;
use ets_core::distance;

fn bench_damerau(c: &mut Criterion) {
    c.bench_function("damerau_levenshtein/6-pairs", |b| {
        b.iter(|| {
            for (x, y) in DISTANCE_PAIRS {
                black_box(distance::damerau_levenshtein(black_box(x), black_box(y)));
            }
        })
    });
}

fn bench_fat_finger(c: &mut Criterion) {
    c.bench_function("fat_finger/6-pairs", |b| {
        b.iter(|| {
            for (x, y) in DISTANCE_PAIRS {
                black_box(distance::fat_finger(black_box(x), black_box(y)));
            }
        })
    });
}

fn bench_visual(c: &mut Criterion) {
    c.bench_function("visual/6-pairs", |b| {
        b.iter(|| {
            for (x, y) in DISTANCE_PAIRS {
                black_box(distance::visual(black_box(x), black_box(y)));
            }
        })
    });
}

fn bench_long_strings(c: &mut Criterion) {
    let a = "a-very-long-second-level-domain-label-for-stress";
    let b_s = "a-very-long-second-level-domain-lable-for-stress";
    c.bench_function("damerau_levenshtein/long-48", |b| {
        b.iter(|| black_box(distance::damerau_levenshtein(black_box(a), black_box(b_s))))
    });
}

criterion_group!(
    benches,
    bench_damerau,
    bench_fat_finger,
    bench_visual,
    bench_long_strings
);
criterion_main!(benches);
