//! Distance-metric micro-benchmarks: DL, fat-finger, and visual distance
//! over representative domain pairs. §5.1 evaluates lexical closeness for
//! millions of candidates, so per-pair cost matters.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ets_bench::DISTANCE_PAIRS;
use ets_core::distance;

fn bench_damerau(c: &mut Criterion) {
    c.bench_function("damerau_levenshtein/6-pairs", |b| {
        b.iter(|| {
            for (x, y) in DISTANCE_PAIRS {
                black_box(distance::damerau_levenshtein(black_box(x), black_box(y)));
            }
        })
    });
}

fn bench_fat_finger(c: &mut Criterion) {
    c.bench_function("fat_finger/6-pairs", |b| {
        b.iter(|| {
            for (x, y) in DISTANCE_PAIRS {
                black_box(distance::fat_finger(black_box(x), black_box(y)));
            }
        })
    });
}

fn bench_visual(c: &mut Criterion) {
    c.bench_function("visual/6-pairs", |b| {
        b.iter(|| {
            for (x, y) in DISTANCE_PAIRS {
                black_box(distance::visual(black_box(x), black_box(y)));
            }
        })
    });
}

fn bench_long_strings(c: &mut Criterion) {
    let a = "a-very-long-second-level-domain-label-for-stress";
    let b_s = "a-very-long-second-level-domain-lable-for-stress";
    c.bench_function("damerau_levenshtein/long-48", |b| {
        b.iter(|| black_box(distance::damerau_levenshtein(black_box(a), black_box(b_s))))
    });
}

fn bench_legacy_kernels(c: &mut Criterion) {
    // Pre-optimization char-matrix reference kernels over the same pairs,
    // so the two-row byte kernels' speedup is measured side by side.
    c.bench_function("damerau_levenshtein_legacy/6-pairs", |b| {
        b.iter(|| {
            for (x, y) in DISTANCE_PAIRS {
                black_box(distance::damerau_levenshtein_legacy(
                    black_box(x),
                    black_box(y),
                ));
            }
        })
    });
    c.bench_function("fat_finger_legacy/6-pairs", |b| {
        b.iter(|| {
            for (x, y) in DISTANCE_PAIRS {
                black_box(distance::fat_finger_legacy(black_box(x), black_box(y)));
            }
        })
    });
    c.bench_function("visual_legacy/6-pairs", |b| {
        b.iter(|| {
            for (x, y) in DISTANCE_PAIRS {
                black_box(distance::visual_legacy(black_box(x), black_box(y)));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_damerau,
    bench_fat_finger,
    bench_visual,
    bench_long_strings,
    bench_legacy_kernels
);
criterion_main!(benches);
