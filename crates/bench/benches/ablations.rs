//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * funnel layer order — running the (cheap) header checks before the
//!   (expensive) scorer vs scoring everything;
//! * bag-of-words threshold — Layer 3 at 10/20/40 minimum words;
//! * frequency thresholds — Layer 5 at the paper's 20/10/10 vs looser;
//! * candidate enumeration vs pairwise DL when scanning a domain list;
//! * DNS name compression on vs (simulated) off — encoding cost and size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ets_bench::bench_collection;
use ets_collector::funnel::{bag_of_words, Funnel, FunnelConfig};
use ets_collector::spamscore::SpamScorer;
use ets_core::distance;
use ets_core::typogen;
use ets_core::DomainName;
use ets_dns::record::{RecordType, ResourceRecord};
use ets_dns::wire::{encode, DnsMessage, Rcode};

/// Layer ordering: L1-then-L2 (funnel order) vs scoring every email
/// unconditionally. The funnel order wins when L1 discards cheaply.
fn bench_layer_order(c: &mut Criterion) {
    let (infra, emails) = bench_collection(0xAB1A);
    let funnel = Funnel::new(&infra);
    let scorer = SpamScorer::new();
    let mut group = c.benchmark_group("ablation/layer-order");
    group.sample_size(10);
    group.bench_function("headers-first (funnel)", |b| {
        b.iter(|| black_box(funnel.classify_all(black_box(&emails))))
    });
    group.bench_function("score-everything", |b| {
        b.iter(|| {
            let mut spam = 0usize;
            for e in &emails {
                if scorer.is_spam(&e.message) {
                    spam += 1;
                }
            }
            black_box(spam)
        })
    });
    group.finish();
}

fn bench_bow_threshold(c: &mut Criterion) {
    let (_, emails) = bench_collection(0xB0B0);
    let mut group = c.benchmark_group("ablation/bow-threshold");
    for min_words in [10usize, 20, 40] {
        group.bench_with_input(
            BenchmarkId::from_parameter(min_words),
            &min_words,
            |b, &mw| {
                b.iter(|| {
                    let mut bags = 0usize;
                    for e in &emails {
                        if bag_of_words(&e.message.body, mw).is_some() {
                            bags += 1;
                        }
                    }
                    black_box(bags)
                })
            },
        );
    }
    group.finish();
}

fn bench_freq_thresholds(c: &mut Criterion) {
    let (infra, emails) = bench_collection(0xF4E0);
    let mut group = c.benchmark_group("ablation/freq-thresholds");
    group.sample_size(10);
    for (name, rcpt, sender, content) in [
        ("paper-20-10-10", 20, 10, 10),
        ("loose-100-50-50", 100, 50, 50),
    ] {
        let funnel = Funnel::with_config(
            &infra,
            FunnelConfig {
                recipient_freq: rcpt,
                sender_freq: sender,
                content_freq: content,
                ..FunnelConfig::default()
            },
        );
        group.bench_function(name, |b| {
            b.iter(|| black_box(funnel.classify_all(black_box(&emails))))
        });
    }
    group.finish();
}

/// Scanning a list of N domains for typos of one target: enumerate the
/// target's DL-1 set once and hash-probe, vs DL distance per pair.
fn bench_enumeration_vs_pairwise(c: &mut Criterion) {
    let target: DomainName = "gmail.com".parse().unwrap();
    let scan_list: Vec<String> = (0..2_000)
        .map(|i| format!("site{i}"))
        .chain(["gmial", "gmaill", "gamil"].map(str::to_owned))
        .collect();
    let mut group = c.benchmark_group("ablation/dl1-scan-2k");
    group.sample_size(20);
    group.bench_function("pairwise-dl", |b| {
        b.iter(|| {
            let hits = scan_list
                .iter()
                .filter(|s| distance::damerau_levenshtein(target.sld(), s) == 1)
                .count();
            black_box(hits)
        })
    });
    group.bench_function("enumerate-then-probe", |b| {
        b.iter(|| {
            let set: std::collections::HashSet<String> = typogen::generate_dl1(&target)
                .into_iter()
                .map(|c| c.domain.sld().to_owned())
                .collect();
            let hits = scan_list.iter().filter(|s| set.contains(*s)).count();
            black_box(hits)
        })
    });
    group.finish();
}

/// DNS encoding with shared suffixes (compression effective) vs unique
/// names (compression useless): cost and output size.
fn bench_dns_compression(c: &mut Criterion) {
    let mk = |shared: bool| {
        let q = DnsMessage::query(1, "a.exampel.com".parse().unwrap(), RecordType::Mx);
        let mut resp = DnsMessage::response_to(&q, Rcode::NoError);
        for i in 0..10 {
            let owner = if shared {
                format!("host{i}.exampel.com")
            } else {
                format!("host{i}.zone{i}-very-different.com")
            };
            resp.answers
                .push(ResourceRecord::mx(&owner, 300, 1, "mx.exampel.com"));
        }
        resp
    };
    let shared = mk(true);
    let unique = mk(false);
    println!(
        "encoded sizes: shared-suffix {}B vs unique-names {}B",
        encode(&shared).len(),
        encode(&unique).len()
    );
    let mut group = c.benchmark_group("ablation/dns-compression");
    group.bench_function("shared-suffixes", |b| {
        b.iter(|| black_box(encode(black_box(&shared))))
    });
    group.bench_function("unique-names", |b| {
        b.iter(|| black_box(encode(black_box(&unique))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_layer_order,
    bench_bow_threshold,
    bench_freq_thresholds,
    bench_enumeration_vs_pairwise,
    bench_dns_compression
);
criterion_main!(benches);
