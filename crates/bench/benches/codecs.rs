//! Wire-codec benchmarks: the RFC 1035 DNS message codec (with name
//! compression) and the SMTP line/DATA framing — the per-packet work the
//! scans and deliveries pay millions of times.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ets_dns::record::{RecordType, ResourceRecord};
use ets_dns::wire::{decode, encode, DnsMessage, Rcode};
use ets_mail::MessageBuilder;
use ets_smtp::codec::{stuff, Frame, LineCodec};
use std::net::Ipv4Addr;

fn sample_response() -> DnsMessage {
    let q = DnsMessage::query(7, "smtp.exampel.com".parse().unwrap(), RecordType::Mx);
    let mut resp = DnsMessage::response_to(&q, Rcode::NoError);
    resp.answers.push(ResourceRecord::mx(
        "smtp.exampel.com",
        300,
        1,
        "exampel.com",
    ));
    resp.answers.push(ResourceRecord::a(
        "exampel.com",
        300,
        Ipv4Addr::new(1, 1, 1, 1),
    ));
    resp.authority
        .push(ResourceRecord::ns("exampel.com", 300, "ns1.exampel.com"));
    resp
}

fn bench_dns_encode(c: &mut Criterion) {
    let resp = sample_response();
    c.bench_function("dns/encode", |b| {
        b.iter(|| black_box(encode(black_box(&resp))))
    });
}

fn bench_dns_decode(c: &mut Criterion) {
    let wire = encode(&sample_response());
    c.bench_function("dns/decode", |b| {
        b.iter(|| black_box(decode(black_box(&wire)).unwrap()))
    });
}

fn bench_smtp_framing(c: &mut Criterion) {
    let msg = MessageBuilder::new()
        .raw_from("a@x.com")
        .raw_to("b@y.com")
        .subject("bench")
        .body(&"line of body text\n".repeat(50))
        .build();
    let stuffed = stuff(&msg.to_wire());
    c.bench_function("smtp/data-framing-1kb", |b| {
        b.iter(|| {
            let mut codec = LineCodec::new();
            codec.enter_data_mode();
            codec.feed(black_box(stuffed.as_bytes()));
            match codec.next_frame().unwrap() {
                Some(Frame::Data(d)) => black_box(d.len()),
                other => panic!("{other:?}"),
            }
        })
    });
}

fn bench_mime_round_trip(c: &mut Criterion) {
    let msg = MessageBuilder::new()
        .raw_from("a@x.com")
        .raw_to("b@y.com")
        .subject("bench")
        .body("body")
        .attach("f.bin", "application/octet-stream", vec![0xA5; 4096])
        .build();
    c.bench_function("mime/serialize+parse-4kb-attachment", |b| {
        b.iter(|| {
            let wire = black_box(&msg).to_wire();
            black_box(ets_mail::Message::parse(&wire).unwrap())
        })
    });
}

criterion_group!(
    benches,
    bench_dns_encode,
    bench_dns_decode,
    bench_smtp_framing,
    bench_mime_round_trip
);
criterion_main!(benches);
