//! `ets-scan` benchmarks: the compiled case-folding automaton against
//! the repeated `to_ascii_lowercase` + `str::contains` scan it replaces,
//! plus the two collector layers that moved onto it (spam scoring and
//! sensitive-info scrubbing, each with its retained legacy path).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ets_collector::corpus::{self, SpamDataset};
use ets_collector::scrub;
use ets_collector::spamscore::SpamScorer;
use ets_scan::PatternSet;

/// A keyword list shaped like the spam-token table: mixed lengths, some
/// shared prefixes, all pre-lowercased.
const KEYWORDS: [&str; 12] = [
    "viagra",
    "free money",
    "click here",
    "act now",
    "winner",
    "lottery",
    "prince",
    "wire transfer",
    "unsubscribe",
    "limited time",
    "urgent",
    "password",
];

fn bodies(n: usize) -> Vec<String> {
    let mut emails = corpus::spam_dataset(SpamDataset::Trec, n / 2, 0xBEEF);
    emails.extend(corpus::enron_like(n - n / 2, 0.1, 0xFEED));
    emails.into_iter().map(|e| e.message.body).collect()
}

fn bench_find_all_vs_contains(c: &mut Criterion) {
    let texts = bodies(400);
    let tagged: Vec<(&str, usize)> = KEYWORDS.iter().copied().zip(0..).collect();
    let set = PatternSet::compile(&tagged);
    c.bench_function("scan_find_all/12-patterns", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for t in &texts {
                hits += set.find_all(black_box(t)).count();
            }
            black_box(hits)
        })
    });
    c.bench_function("scan_contains_loop/12-patterns", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for t in &texts {
                let lower = t.to_ascii_lowercase();
                for kw in KEYWORDS {
                    hits += lower.matches(kw).count();
                }
            }
            black_box(hits)
        })
    });
}

fn bench_spamscore(c: &mut Criterion) {
    let emails: Vec<ets_mail::Message> = {
        let mut emails = corpus::spam_dataset(SpamDataset::Trec, 200, 0xBEEF);
        emails.extend(corpus::enron_like(200, 0.1, 0xFEED));
        emails.into_iter().map(|e| e.message).collect()
    };
    let scorer = SpamScorer::new();
    c.bench_function("spamscore_scan/400-emails", |b| {
        b.iter(|| {
            let mut total = 0.0f64;
            for m in &emails {
                total += scorer.score(black_box(m)).score;
            }
            black_box(total)
        })
    });
    c.bench_function("spamscore_legacy/400-emails", |b| {
        b.iter(|| {
            let mut total = 0.0f64;
            for m in &emails {
                total += scorer.score_legacy(black_box(m)).score;
            }
            black_box(total)
        })
    });
}

fn bench_scrub(c: &mut Criterion) {
    let texts = bodies(300);
    c.bench_function("scrub_scan/300-bodies", |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for t in &texts {
                findings += scrub::scrub(black_box(t)).findings.len();
            }
            black_box(findings)
        })
    });
    c.bench_function("scrub_legacy/300-bodies", |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for t in &texts {
                findings += scrub::scrub_legacy(black_box(t)).findings.len();
            }
            black_box(findings)
        })
    });
}

criterion_group!(
    benches,
    bench_find_all_vs_contains,
    bench_spamscore,
    bench_scrub
);
criterion_main!(benches);
