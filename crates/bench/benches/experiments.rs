//! End-to-end experiment regeneration benchmarks: how long each paper
//! artifact takes to rebuild from scratch at reduced scale.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ets_bench::bench_collection;
use ets_collector::analysis::StudyAnalysis;
use ets_collector::funnel::Funnel;
use ets_ecosystem::population::{PopulationConfig, World};
use ets_ecosystem::scan::scan_world;
use ets_honeypot::behavior::BehaviorModel;
use ets_honeypot::campaign::ProbeCampaign;

fn bench_world_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment/world-build");
    group.sample_size(10);
    group.bench_function("tiny-60-targets", |b| {
        b.iter(|| black_box(World::build(PopulationConfig::tiny(1))))
    });
    group.finish();
}

fn bench_table4_scan(c: &mut Criterion) {
    let world = World::build(PopulationConfig::tiny(2));
    c.bench_function("experiment/table4-scan", |b| {
        b.iter(|| black_box(scan_world(black_box(&world))))
    });
}

fn bench_probe_campaign(c: &mut Criterion) {
    let world = World::build(PopulationConfig::tiny(3));
    let campaign = ProbeCampaign::new(&world, BehaviorModel::default());
    let mut group = c.benchmark_group("experiment/table5-probe");
    group.sample_size(10);
    group.bench_function(format!("{}-domains", world.ctypos.len()), |b| {
        b.iter(|| black_box(campaign.run()))
    });
    group.finish();
}

fn bench_volumes(c: &mut Criterion) {
    let (infra, emails) = bench_collection(0xE7);
    let verdicts = Funnel::new(&infra).classify_all(&emails);
    c.bench_function("experiment/volumes-analysis", |b| {
        b.iter(|| {
            let a = StudyAnalysis::new(&infra, &emails, &verdicts, 1.0 / 40_000.0);
            black_box(a.volumes())
        })
    });
}

criterion_group!(
    benches,
    bench_world_build,
    bench_table4_scan,
    bench_probe_campaign,
    bench_volumes
);
criterion_main!(benches);
