//! Funnel throughput: classifying a captured traffic slice through all
//! five layers, plus the scrubber on realistic bodies. This is the
//! pipeline that ran on every one of the study's ~119M yearly emails.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ets_bench::bench_collection;
use ets_collector::corpus;
use ets_collector::funnel::Funnel;
use ets_collector::scrub;
use ets_collector::spamscore::SpamScorer;

fn bench_funnel(c: &mut Criterion) {
    let (infra, emails) = bench_collection(0xBE7C);
    let funnel = Funnel::new(&infra);
    let mut group = c.benchmark_group("funnel");
    group.sample_size(10);
    group.bench_function(format!("classify-{}-emails", emails.len()), |b| {
        b.iter(|| black_box(funnel.classify_all(black_box(&emails))))
    });
    group.finish();
}

fn bench_spam_scorer(c: &mut Criterion) {
    let corpus = corpus::spam_dataset(corpus::SpamDataset::Trec, 200, 5);
    let scorer = SpamScorer::new();
    c.bench_function("spamscore/200-messages", |b| {
        b.iter(|| {
            for e in &corpus {
                black_box(scorer.score(black_box(&e.message)));
            }
        })
    });
}

fn bench_scrubber(c: &mut Criterion) {
    let corpus = corpus::enron_like(100, 0.5, 9);
    c.bench_function("scrub/100-bodies", |b| {
        b.iter(|| {
            for e in &corpus {
                black_box(scrub::scrub(black_box(&e.message.body)));
            }
        })
    });
}

criterion_group!(benches, bench_funnel, bench_spam_scorer, bench_scrubber);
criterion_main!(benches);
