//! Typo-generation benchmarks: DL-1 candidate enumeration for single
//! targets and target lists — the §5.1 workload ("we generated all
//! possible DL-1 variations of Alexa's top one million").

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ets_core::typogen;
use ets_core::DomainName;

fn bench_single_target(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate_dl1");
    for name in ["gmail.com", "outlook.com", "10minutemail.com"] {
        let target: DomainName = name.parse().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &target, |b, t| {
            b.iter(|| black_box(typogen::generate_dl1(black_box(t))))
        });
    }
    group.finish();
}

fn bench_ff1_subset(c: &mut Criterion) {
    let target: DomainName = "outlook.com".parse().unwrap();
    c.bench_function("generate_ff1/outlook.com", |b| {
        b.iter(|| black_box(typogen::generate_ff1(black_box(&target))))
    });
}

fn bench_target_list(c: &mut Criterion) {
    let targets: Vec<DomainName> = ets_core::alexa::synthetic_top(50)
        .iter()
        .map(|e| e.domain.clone())
        .collect();
    c.bench_function("generate_for_targets/top-50", |b| {
        b.iter(|| black_box(typogen::generate_for_targets(black_box(&targets))))
    });
}

fn bench_legacy_vs_table(c: &mut Criterion) {
    // The pre-optimization string generator against the byte-level
    // table engine, same target — the tentpole speedup, measured.
    let target: DomainName = "outlook.com".parse().unwrap();
    c.bench_function("generate_dl1_legacy/outlook.com", |b| {
        b.iter(|| black_box(typogen::generate_dl1_legacy(black_box(&target))))
    });
    c.bench_function("typo_table_generate/outlook.com", |b| {
        b.iter(|| black_box(typogen::TypoTable::generate(black_box(&target))))
    });
}

criterion_group!(
    benches,
    bench_single_target,
    bench_ff1_subset,
    bench_target_list,
    bench_legacy_vs_table
);
criterion_main!(benches);
