//! The data-parallel pipeline stages at fast scale, swept over worker
//! counts: population build, traffic synthesis, the funnel passes, and
//! WHOIS clustering. Because every stage is deterministic for any thread
//! count, the sweep measures pure scheduling overhead/speedup — compare
//! the `t1` and `tN` rows.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ets_bench::bench_collection;
use ets_collector::funnel::Funnel;
use ets_dns::Fqdn;
use ets_ecosystem::population::{PopulationConfig, World};
use ets_ecosystem::whois_cluster::{self, WhoisRow};

/// Worker counts to sweep: sequential baseline, a mid point, one per core.
fn thread_sweep() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut sweep = vec![1];
    if cores >= 4 {
        sweep.push(cores / 2);
    }
    if cores > 1 {
        sweep.push(cores);
    }
    sweep
}

fn bench_population(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline/world-build");
    group.sample_size(10);
    for threads in thread_sweep() {
        group.bench_function(BenchmarkId::from_parameter(format!("t{threads}")), |b| {
            ets_parallel::set_threads(threads);
            b.iter(|| black_box(World::build(PopulationConfig::tiny(0xBE7C))));
        });
    }
    ets_parallel::set_threads(0);
    group.finish();
}

fn bench_funnel_parallel(c: &mut Criterion) {
    let (infra, emails) = bench_collection(0xBE7C);
    let funnel = Funnel::new(&infra);
    let mut group = c.benchmark_group("pipeline/funnel");
    group.sample_size(10);
    for threads in thread_sweep() {
        group.bench_function(BenchmarkId::from_parameter(format!("t{threads}")), |b| {
            ets_parallel::set_threads(threads);
            b.iter(|| black_box(funnel.classify_all(black_box(&emails))));
        });
    }
    ets_parallel::set_threads(0);
    group.finish();
}

fn bench_clustering(c: &mut Criterion) {
    ets_parallel::set_threads(0);
    let world = World::build(PopulationConfig::tiny(0xBE7C));
    let rows: Vec<WhoisRow> = world
        .ctypos
        .iter()
        .map(|ct| {
            let fq = Fqdn::from_domain(&ct.candidate.domain);
            let reg = world.registry.registration(&fq).expect("registered");
            WhoisRow {
                domain: fq,
                whois: reg.public_whois(),
                private: reg.is_private(),
            }
        })
        .collect();
    let mut group = c.benchmark_group("pipeline/whois-cluster");
    group.sample_size(10);
    for threads in thread_sweep() {
        group.bench_function(BenchmarkId::from_parameter(format!("t{threads}")), |b| {
            ets_parallel::set_threads(threads);
            b.iter(|| black_box(whois_cluster::cluster_registrants(black_box(&rows))));
        });
    }
    ets_parallel::set_threads(0);
    group.finish();
}

criterion_group!(
    benches,
    bench_population,
    bench_funnel_parallel,
    bench_clustering
);
criterion_main!(benches);
