//! Section-7 experiments: the honey-email campaigns (Tables 5 and 6,
//! plus the token-access results).

use crate::lab::Lab;
use crate::report::{print_table, thousands};
use ets_dns::Fqdn;
use ets_ecosystem::mxconc::MxConcentration;
use ets_ecosystem::population::MX_PROVIDERS;
use ets_honeypot::behavior::BehaviorModel;
use ets_honeypot::campaign::{HoneyCampaign, ProbeCampaign, ProbeReport};
use serde_json::json;

fn run_probe(lab: &Lab) -> ProbeReport {
    let world = lab.world();
    ProbeCampaign::new(world, BehaviorModel::default()).run()
}

/// Table 5: outcome counts of the probe emails, public vs private
/// registrations.
pub fn table5(lab: &Lab) {
    let report = run_probe(lab);
    let rows: Vec<Vec<String>> = report
        .table5_rows()
        .into_iter()
        .map(|(label, public, private)| {
            vec![label, thousands(public as f64), thousands(private as f64)]
        })
        .collect();
    print_table(&["Outcome", "Public reg.", "Private reg."], &rows);
    println!(
        "\ntotal {} domains probed; {} accepted; {} probe emails demonstrably read ({} private)",
        report.total(),
        report.accepted.len(),
        report.reads.len(),
        report.reads.iter().filter(|(_, p)| *p).count()
    );
    println!("(paper: 50,995 probed; 1,170 public + 6,099 private accepted; 3 + 19 read)");
    lab.write_json(
        "table5",
        &json!({
            "outcomes_public": report.outcomes[0],
            "outcomes_private": report.outcomes[1],
            "accepted": report.accepted.len(),
            "reads": report.reads.len(),
        }),
    );
}

/// Table 6: mail-exchange usage among the accepting domains.
pub fn table6(lab: &Lab) {
    let world = lab.world();
    let report = run_probe(lab);
    let resolver = world.resolver();
    let accepted: Vec<Fqdn> = report.accepted.iter().map(Fqdn::from_domain).collect();
    let conc = MxConcentration::measure(&resolver, accepted.iter());
    let rows: Vec<Vec<String>> = conc
        .table6_rows(10)
        .into_iter()
        .map(|(mx, count, pct, cdf)| {
            // The Table-6 provider list carries the ground-truth privacy
            // flag; mid-tier hosts and self-hosted domains are treated as
            // privately registered infrastructure (they are in the paper).
            let private = MX_PROVIDERS
                .iter()
                .find(|(d, _, _)| *d == mx)
                .map(|(_, p, _)| *p)
                .unwrap_or(true);
            vec![
                mx,
                count.to_string(),
                format!("{pct:.1}"),
                format!("{cdf:.1}"),
                if private {
                    "Yes".to_owned()
                } else {
                    "No".to_owned()
                },
            ]
        })
        .collect();
    print_table(&["MX domain", "Total", "%", "CDF", "Private?"], &rows);
    println!(
        "\ntop-8 share: {:.1}% (paper: 95% of accepting domains on eight private mail hosts)",
        conc.top_share(8) * 100.0
    );
    lab.write_json(
        "table6",
        &json!({
            "rows": conc.table6_rows(10).into_iter().map(|(mx, c, p, cdf)| json!({
                "mx": mx, "count": c, "pct": p, "cdf": cdf,
            })).collect::<Vec<_>>(),
            "top8_share": conc.top_share(8),
        }),
    );
}

/// The honey-token campaigns: pilot then full run.
pub fn honey(lab: &Lab) {
    let world = lab.world();
    let behavior = BehaviorModel::default();
    let probe = run_probe(lab);
    let campaign = HoneyCampaign::new(world, behavior);

    // Pilot: capped like the paper's 738-domain run.
    let pilot_targets = campaign.pilot_selection(&probe.accepted, 4, 738);
    let pilot = campaign.run(&pilot_targets);
    let ps = pilot.monitor.summary();
    println!(
        "pilot: {} emails to {} domains → {} opens, {} token accesses (paper: 738 domains, no signal)",
        pilot.sent, pilot.domains, ps.opens, ps.token_accesses
    );

    // Main run: every accepting domain, all four designs.
    let main = campaign.run(&probe.accepted);
    let ms = main.monitor.summary();
    println!("main run: {} emails to {} domains", main.sent, main.domains);
    println!(
        "  emails opened: {} (on {} domains; paper: 15 emails)",
        ms.opens, ms.domains_read
    );
    println!(
        "  honey tokens accessed: {} (on {} domains; paper: 2)",
        ms.token_accesses, ms.domains_acted
    );
    println!(
        "  median open delay: {:.1} hours (human pace; paper: hours)",
        ms.median_open_delay_hours
    );
    println!(
        "  domains re-opened later: {} (paper: repeat reads days apart)",
        ms.reopened_domains
    );
    for e in main.monitor.events().iter().take(5) {
        println!(
            "  e.g. {:?} on {} after {:.1}h from {}",
            e.kind, e.domain, e.hours_after_send, e.origin
        );
    }
    lab.write_json(
        "honey",
        &json!({
            "pilot": { "sent": pilot.sent, "domains": pilot.domains, "opens": ps.opens, "tokens": ps.token_accesses },
            "main": {
                "sent": main.sent, "domains": main.domains,
                "opens": ms.opens, "domains_read": ms.domains_read,
                "token_accesses": ms.token_accesses, "domains_acted": ms.domains_acted,
                "median_open_delay_hours": ms.median_open_delay_hours,
                "reopened_domains": ms.reopened_domains,
            },
            "paper": { "sent": 29_076, "domains": 7_269, "opens": 15, "token_accesses": 2 },
        }),
    );
}
