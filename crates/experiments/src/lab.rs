//! Shared experiment context: lazily-built worlds, collections, and
//! funnel outputs, so `repro all` builds each expensive substrate once.

use ets_collector::funnel::{Funnel, FunnelVerdict};
use ets_collector::infra::{CollectedEmail, CollectionInfra};
use ets_collector::stream::stream_collect;
use ets_collector::traffic::{GenEmail, TrafficConfig, TrafficGenerator};
use ets_ecosystem::population::{PopulationConfig, World};
use ets_ecosystem::snapshot;
use parking_lot::Mutex;
use serde_json::json;
use std::path::Path;
use std::sync::OnceLock;

/// The lab bench: seeds, scale, output directory, cached substrates.
///
/// Stage timings and workload counts live in the `ets-obs` registry:
/// wall-clock stage durations go through [`ets_obs::metrics::time_stage`]
/// (which also opens a `stage.<name>` span for traces), and deterministic
/// workload counts are `lab.<name>` counters read back by the bench
/// reports.
pub struct Lab {
    /// Base RNG seed.
    pub seed: u64,
    /// Reduced-scale mode for quick runs.
    pub fast: bool,
    /// Streaming pipeline (the default) vs the batch
    /// collect-then-classify oracle; results are byte-identical either
    /// way, only peak memory and stage names differ.
    pub streaming: bool,
    /// Output directory for JSON records.
    pub out_dir: String,
    /// Explicit world scale (`--scale`): number of popularity targets.
    /// Overrides the `--fast`/default world size when set.
    pub scale: Option<usize>,
    /// World snapshot path (`--snapshot`): load the world from here when
    /// valid, otherwise build fresh and save here.
    pub snapshot: Option<String>,
    world: OnceLock<World>,
    collection: OnceLock<Collection>,
    log: Mutex<()>,
    /// Stages skipped this run (name, reason) — reported in
    /// `bench_pipeline.json` so the ratchet never compares a skipped
    /// stage's absence against a real timing.
    skipped: Mutex<Vec<(String, String)>>,
}

/// A completed collection run: infrastructure, generated mail, verdicts.
pub struct Collection {
    /// The 76-domain study infrastructure.
    pub infra: CollectionInfra,
    /// Envelope view of every generated email (what the funnel sees).
    pub collected: Vec<CollectedEmail>,
    /// Funnel verdicts, index-aligned with `collected`.
    pub verdicts: Vec<FunnelVerdict>,
    /// Spam generation scale.
    pub spam_scale: f64,
}

impl Lab {
    /// Creates a lab bench.
    pub fn new(seed: u64, fast: bool, streaming: bool, out_dir: String) -> Lab {
        Lab {
            seed,
            fast,
            streaming,
            out_dir,
            scale: None,
            snapshot: None,
            world: OnceLock::new(),
            collection: OnceLock::new(),
            log: Mutex::new(()),
            skipped: Mutex::new(Vec::new()),
        }
    }

    /// The scale key for the bench reports: `--scale` rendered as the
    /// preset name (`1k`, `100k`, `1m`, or the raw count), else the
    /// historical `fast`/`default` modes.
    pub fn scale_label(&self) -> String {
        match self.scale {
            Some(n) if n >= 1_000_000 && n % 1_000_000 == 0 => format!("{}m", n / 1_000_000),
            Some(n) if n >= 1_000 && n % 1_000 == 0 => format!("{}k", n / 1_000),
            Some(n) => n.to_string(),
            None if self.fast => "fast".to_owned(),
            None => "default".to_owned(),
        }
    }

    /// The world config this lab builds: `--scale` wins, then `--fast`,
    /// then the paper default.
    fn world_config(&self) -> PopulationConfig {
        match self.scale {
            Some(n) => PopulationConfig::at_scale(n, self.seed),
            None if self.fast => PopulationConfig {
                n_targets: 150,
                seed: self.seed,
                ..PopulationConfig::default()
            },
            None => PopulationConfig {
                seed: self.seed,
                ..PopulationConfig::default()
            },
        }
    }

    /// Records a deterministic workload count for `bench_baseline.json`
    /// as a `lab.<name>` counter in the obs registry. The baseline report
    /// pairs the counts with the stage timings so a timing regression can
    /// be told apart from a workload change.
    fn record_count(&self, name: &str, value: u64) {
        ets_obs::metrics::counter_add(&format!("lab.{name}"), value);
    }

    /// Runs a pipeline stage, recording its wall-clock time on the obs
    /// stage timeline for the `bench_pipeline.json` report (and a
    /// `stage.<name>` span when tracing is enabled).
    fn time_stage<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let (out, secs) = ets_obs::metrics::time_stage(name, f);
        eprintln!("[lab] stage {name}: {secs:.2}s");
        out
    }

    /// Records the peak in-flight payload bytes of the stage just run as
    /// a `mem.stage_peak_bytes.<name>` gauge. Peaks depend on scheduling,
    /// so they flow only into the `bench_` reports, never the
    /// deterministic snapshot.
    fn gauge_stage_peak(&self, name: &str) {
        ets_obs::metrics::gauge_set(
            &format!("mem.stage_peak_bytes.{name}"),
            ets_obs::mem::peak() as f64,
        );
    }

    /// The ecosystem world (§5/§6/§7 substrate), built once — or loaded
    /// near-zero-copy from `--snapshot` when the file matches this exact
    /// `(seed, scale, format_version)` config, in which case the
    /// `world_build` stage is reported as skipped. Any mismatch or
    /// corruption logs its reason and falls back to a fresh build (which
    /// then refreshes the snapshot).
    pub fn world(&self) -> &World {
        self.world.get_or_init(|| {
            let config = self.world_config();
            let world = match self.load_world_snapshot(&config) {
                Some(world) => world,
                None => {
                    eprintln!("[lab] building world ({} targets)...", config.n_targets);
                    ets_obs::mem::reset_peak();
                    let world = self.time_stage("world_build", || World::build(config));
                    self.gauge_stage_peak("world_build");
                    self.save_world_snapshot(&world);
                    world
                }
            };
            self.record_count("world_targets", world.targets.len() as u64);
            self.record_count("world_ctypos", world.ctypos.len() as u64);
            world
        })
    }

    /// Attempts the `--snapshot` load. `None` means "build fresh" — the
    /// reason has already been logged. A failed attempt records no
    /// `snapshot_load` stage, so the ratchet never sees a phantom load.
    fn load_world_snapshot(&self, config: &PopulationConfig) -> Option<World> {
        let path = self.snapshot.as_deref()?;
        if !Path::new(path).exists() {
            eprintln!("[lab] no snapshot at {path} yet; building fresh");
            return None;
        }
        ets_obs::mem::reset_peak();
        let (result, secs) = ets_obs::metrics::time_stage_result("snapshot_load", || {
            snapshot::load(Path::new(path), config)
        });
        match result {
            Ok(world) => {
                eprintln!(
                    "[lab] stage snapshot_load: {secs:.2}s ({} ctypos from {path})",
                    world.ctypos.len()
                );
                self.gauge_stage_peak("snapshot_load");
                self.note_skipped("world_build", "snapshot");
                Some(world)
            }
            Err(e) => {
                eprintln!("[lab] snapshot {path} rejected ({e}); building fresh");
                None
            }
        }
    }

    /// Saves the freshly built world to `--snapshot` (best-effort: a save
    /// failure costs the next run a rebuild, never this run's results).
    fn save_world_snapshot(&self, world: &World) {
        let Some(path) = self.snapshot.as_deref() else {
            return;
        };
        let (result, secs) = ets_obs::metrics::time_stage_result("snapshot_save", || {
            snapshot::save(world, Path::new(path))
        });
        match result {
            Ok(()) => eprintln!("[lab] stage snapshot_save: {secs:.2}s (wrote {path})"),
            Err(e) => eprintln!("[lab] cannot write snapshot {path}: {e}"),
        }
    }

    /// Notes a stage this run skipped (with why) for the bench report.
    fn note_skipped(&self, stage: &str, reason: &str) {
        self.skipped
            .lock()
            .push((stage.to_owned(), reason.to_owned()));
    }

    /// The collection run (§4 substrate), built once.
    pub fn collection(&self) -> &Collection {
        self.collection.get_or_init(|| {
            let infra = CollectionInfra::build();
            let config = TrafficConfig {
                seed: self.seed,
                spam_scale: if self.fast {
                    1.0 / 20_000.0
                } else {
                    1.0 / 1_000.0
                },
                ..TrafficConfig::default()
            };
            let spam_scale = config.spam_scale;
            eprintln!(
                "[lab] generating {} months of traffic (spam scale 1/{:.0}, {})...",
                7.5,
                1.0 / spam_scale,
                if self.streaming { "streaming" } else { "batch" },
            );
            let (collected, verdicts) = if self.streaming {
                // Streaming: generate, extract features, and hand off
                // day by day under back-pressure; only the finish layers
                // see the whole corpus.
                let gen = TrafficGenerator::new(&infra, config);
                let funnel = Funnel::new(&infra);
                let mut collected: Vec<CollectedEmail> = Vec::new();
                ets_obs::mem::reset_peak();
                let state = self.time_stage("stream_collect", || {
                    let mut sink = |e: GenEmail| collected.push(e.collected);
                    stream_collect(&gen, &funnel, &mut sink)
                });
                self.gauge_stage_peak("stream_collect");
                eprintln!(
                    "[lab] finishing the funnel over {} emails...",
                    collected.len()
                );
                ets_obs::mem::reset_peak();
                let verdicts = self.time_stage("funnel_finish", || state.finish());
                self.gauge_stage_peak("funnel_finish");
                (collected, verdicts)
            } else {
                let collected: Vec<CollectedEmail> = self.time_stage("traffic_generate", || {
                    TrafficGenerator::new(&infra, config)
                        .generate()
                        .into_iter()
                        .map(|e| e.collected)
                        .collect()
                });
                // Batch materializes the whole corpus before the funnel
                // runs: record its payload bytes as the stage peak so
                // bench_pipeline.json shows the memory contrast.
                let bytes: u64 = collected.iter().map(|e| e.approx_heap_bytes()).sum();
                ets_obs::metrics::gauge_set("mem.stage_peak_bytes.traffic_generate", bytes as f64);
                eprintln!(
                    "[lab] running the funnel over {} emails...",
                    collected.len()
                );
                let verdicts = self.time_stage("funnel_classify", || {
                    Funnel::new(&infra).classify_all(&collected)
                });
                (collected, verdicts)
            };
            self.record_count("traffic_emails", collected.len() as u64);
            self.record_count(
                "funnel_true_typos",
                verdicts.iter().filter(|v| v.is_true_typo()).count() as u64,
            );
            Collection {
                infra,
                collected,
                verdicts,
                spam_scale,
            }
        })
    }

    /// Writes one experiment's JSON record.
    pub fn write_json(&self, name: &str, value: &serde_json::Value) {
        let _guard = self.log.lock();
        let path = format!("{}/{name}.json", self.out_dir);
        match std::fs::write(
            &path,
            serde_json::to_string_pretty(value).expect("serializable"),
        ) {
            Ok(()) => eprintln!("[lab] wrote {path}"),
            Err(e) => eprintln!("[lab] cannot write {path}: {e}"),
        }
    }

    /// Writes the per-stage wall-clock report (`bench_pipeline.json`).
    /// Stage *timings* vary with `--threads`; every other result file is
    /// byte-identical across thread counts.
    pub fn write_bench_pipeline(&self) {
        let timings = ets_obs::metrics::stage_timeline();
        if timings.is_empty() {
            return;
        }
        let mut stages: Vec<serde_json::Value> = timings
            .iter()
            .map(|(name, secs)| json!({ "stage": name.as_str(), "seconds": *secs }))
            .collect();
        // Skipped stages are listed with a reason *instead of* seconds,
        // so the ratchet knows "world_build: skipped (snapshot)" is not a
        // 0-second build.
        for (stage, reason) in self.skipped.lock().iter() {
            stages.push(json!({ "stage": stage.as_str(), "skipped": reason.as_str() }));
        }
        let total: f64 = timings.iter().map(|(_, s)| *s).sum();
        let mem: serde_json::Map = ets_obs::metrics::gauges_with_prefix("mem")
            .into_iter()
            .map(|(name, v)| (name, json!(v)))
            .collect();
        // Recorder contention check: the sharded thread-local counters
        // must keep beating a single global mutex under fan-out. The
        // `bench_` prefix keeps this out of the byte-identity checks,
        // and `ets-bench --check` reads only the `stages` array.
        let obs = crate::microbench::obs_counter_contention();
        let value = json!({
            "threads": ets_parallel::threads(),
            "streaming": self.streaming,
            "channel_depth": ets_parallel::stream_depth(),
            "seed": self.seed,
            "fast": self.fast,
            "scale": self.scale_label(),
            "total_seconds": total,
            "stages": stages,
            "mem": mem,
            "obs_microbench": obs,
        });
        self.write_json("bench_pipeline", &value);
    }

    /// Writes the full performance baseline (`bench_baseline.json`):
    /// pipeline stage timings, deterministic workload counts, and the
    /// legacy-vs-optimized kernel microbenchmarks. Timings vary run to
    /// run; the counts are byte-identical for a given seed/scale.
    pub fn write_bench_baseline(&self) {
        let micro = crate::microbench::run();
        let timings = ets_obs::metrics::stage_timeline();
        let stages: Vec<serde_json::Value> = timings
            .iter()
            .map(|(name, secs)| json!({ "stage": name.as_str(), "seconds": *secs }))
            .collect();
        let total: f64 = timings.iter().map(|(_, s)| *s).sum();
        let counts_json: serde_json::Map = ets_obs::metrics::counters_with_prefix("lab")
            .into_iter()
            .map(|(name, v)| (name, json!(v)))
            .collect();
        let value = json!({
            "threads": ets_parallel::threads(),
            "streaming": self.streaming,
            "seed": self.seed,
            "fast": self.fast,
            "scale": self.scale_label(),
            "total_seconds": total,
            "stages": stages,
            "counts": counts_json,
            "microbench": micro,
        });
        self.write_json("bench_baseline", &value);
        self.write_bench_scan(&micro);
    }

    /// Writes the scan-engine report (`bench_scan.json`): the
    /// legacy-vs-automaton comparisons for the layers that moved onto
    /// `ets-scan`, plus the scan workload counters. Timings vary run to
    /// run; the `bench_` prefix keeps it out of the byte-identity checks.
    fn write_bench_scan(&self, micro: &[crate::microbench::Microbench]) {
        let scan: Vec<&crate::microbench::Microbench> = micro
            .iter()
            .filter(|m| m.name.starts_with("scan_"))
            .collect();
        if scan.is_empty() {
            return;
        }
        let counters: serde_json::Map = ets_obs::metrics::counters_with_prefix("funnel.scan")
            .into_iter()
            .map(|(name, v)| (name, json!(v)))
            .collect();
        let value = json!({
            "threads": ets_parallel::threads(),
            "seed": self.seed,
            "fast": self.fast,
            "microbench": scan,
            "counters": counters,
        });
        self.write_json("bench_scan", &value);
    }
}
