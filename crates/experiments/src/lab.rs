//! Shared experiment context: lazily-built worlds, collections, and
//! funnel outputs, so `repro all` builds each expensive substrate once.

use ets_collector::funnel::{Funnel, FunnelVerdict};
use ets_collector::infra::{CollectedEmail, CollectionInfra};
use ets_collector::stream::stream_collect;
use ets_collector::traffic::{GenEmail, TrafficConfig, TrafficGenerator};
use ets_ecosystem::population::{PopulationConfig, World};
use parking_lot::Mutex;
use serde_json::json;
use std::sync::OnceLock;

/// The lab bench: seeds, scale, output directory, cached substrates.
///
/// Stage timings and workload counts live in the `ets-obs` registry:
/// wall-clock stage durations go through [`ets_obs::metrics::time_stage`]
/// (which also opens a `stage.<name>` span for traces), and deterministic
/// workload counts are `lab.<name>` counters read back by the bench
/// reports.
pub struct Lab {
    /// Base RNG seed.
    pub seed: u64,
    /// Reduced-scale mode for quick runs.
    pub fast: bool,
    /// Streaming pipeline (the default) vs the batch
    /// collect-then-classify oracle; results are byte-identical either
    /// way, only peak memory and stage names differ.
    pub streaming: bool,
    /// Output directory for JSON records.
    pub out_dir: String,
    world: OnceLock<World>,
    collection: OnceLock<Collection>,
    log: Mutex<()>,
}

/// A completed collection run: infrastructure, generated mail, verdicts.
pub struct Collection {
    /// The 76-domain study infrastructure.
    pub infra: CollectionInfra,
    /// Envelope view of every generated email (what the funnel sees).
    pub collected: Vec<CollectedEmail>,
    /// Funnel verdicts, index-aligned with `collected`.
    pub verdicts: Vec<FunnelVerdict>,
    /// Spam generation scale.
    pub spam_scale: f64,
}

impl Lab {
    /// Creates a lab bench.
    pub fn new(seed: u64, fast: bool, streaming: bool, out_dir: String) -> Lab {
        Lab {
            seed,
            fast,
            streaming,
            out_dir,
            world: OnceLock::new(),
            collection: OnceLock::new(),
            log: Mutex::new(()),
        }
    }

    /// Records a deterministic workload count for `bench_baseline.json`
    /// as a `lab.<name>` counter in the obs registry. The baseline report
    /// pairs the counts with the stage timings so a timing regression can
    /// be told apart from a workload change.
    fn record_count(&self, name: &str, value: u64) {
        ets_obs::metrics::counter_add(&format!("lab.{name}"), value);
    }

    /// Runs a pipeline stage, recording its wall-clock time on the obs
    /// stage timeline for the `bench_pipeline.json` report (and a
    /// `stage.<name>` span when tracing is enabled).
    fn time_stage<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        let (out, secs) = ets_obs::metrics::time_stage(name, f);
        eprintln!("[lab] stage {name}: {secs:.2}s");
        out
    }

    /// Records the peak in-flight payload bytes of the stage just run as
    /// a `mem.stage_peak_bytes.<name>` gauge. Peaks depend on scheduling,
    /// so they flow only into the `bench_` reports, never the
    /// deterministic snapshot.
    fn gauge_stage_peak(&self, name: &str) {
        ets_obs::metrics::gauge_set(
            &format!("mem.stage_peak_bytes.{name}"),
            ets_obs::mem::peak() as f64,
        );
    }

    /// The ecosystem world (§5/§6/§7 substrate), built once.
    pub fn world(&self) -> &World {
        self.world.get_or_init(|| {
            let config = if self.fast {
                PopulationConfig {
                    n_targets: 150,
                    seed: self.seed,
                    ..PopulationConfig::default()
                }
            } else {
                PopulationConfig {
                    seed: self.seed,
                    ..PopulationConfig::default()
                }
            };
            eprintln!("[lab] building world ({} targets)...", config.n_targets);
            let world = self.time_stage("world_build", || World::build(config));
            self.record_count("world_targets", world.targets.len() as u64);
            self.record_count("world_ctypos", world.ctypos.len() as u64);
            world
        })
    }

    /// The collection run (§4 substrate), built once.
    pub fn collection(&self) -> &Collection {
        self.collection.get_or_init(|| {
            let infra = CollectionInfra::build();
            let config = TrafficConfig {
                seed: self.seed,
                spam_scale: if self.fast {
                    1.0 / 20_000.0
                } else {
                    1.0 / 1_000.0
                },
                ..TrafficConfig::default()
            };
            let spam_scale = config.spam_scale;
            eprintln!(
                "[lab] generating {} months of traffic (spam scale 1/{:.0}, {})...",
                7.5,
                1.0 / spam_scale,
                if self.streaming { "streaming" } else { "batch" },
            );
            let (collected, verdicts) = if self.streaming {
                // Streaming: generate, extract features, and hand off
                // day by day under back-pressure; only the finish layers
                // see the whole corpus.
                let gen = TrafficGenerator::new(&infra, config);
                let funnel = Funnel::new(&infra);
                let mut collected: Vec<CollectedEmail> = Vec::new();
                ets_obs::mem::reset_peak();
                let state = self.time_stage("stream_collect", || {
                    let mut sink = |e: GenEmail| collected.push(e.collected);
                    stream_collect(&gen, &funnel, &mut sink)
                });
                self.gauge_stage_peak("stream_collect");
                eprintln!(
                    "[lab] finishing the funnel over {} emails...",
                    collected.len()
                );
                ets_obs::mem::reset_peak();
                let verdicts = self.time_stage("funnel_finish", || state.finish());
                self.gauge_stage_peak("funnel_finish");
                (collected, verdicts)
            } else {
                let collected: Vec<CollectedEmail> = self.time_stage("traffic_generate", || {
                    TrafficGenerator::new(&infra, config)
                        .generate()
                        .into_iter()
                        .map(|e| e.collected)
                        .collect()
                });
                // Batch materializes the whole corpus before the funnel
                // runs: record its payload bytes as the stage peak so
                // bench_pipeline.json shows the memory contrast.
                let bytes: u64 = collected.iter().map(|e| e.approx_heap_bytes()).sum();
                ets_obs::metrics::gauge_set("mem.stage_peak_bytes.traffic_generate", bytes as f64);
                eprintln!(
                    "[lab] running the funnel over {} emails...",
                    collected.len()
                );
                let verdicts = self.time_stage("funnel_classify", || {
                    Funnel::new(&infra).classify_all(&collected)
                });
                (collected, verdicts)
            };
            self.record_count("traffic_emails", collected.len() as u64);
            self.record_count(
                "funnel_true_typos",
                verdicts.iter().filter(|v| v.is_true_typo()).count() as u64,
            );
            Collection {
                infra,
                collected,
                verdicts,
                spam_scale,
            }
        })
    }

    /// Writes one experiment's JSON record.
    pub fn write_json(&self, name: &str, value: &serde_json::Value) {
        let _guard = self.log.lock();
        let path = format!("{}/{name}.json", self.out_dir);
        match std::fs::write(
            &path,
            serde_json::to_string_pretty(value).expect("serializable"),
        ) {
            Ok(()) => eprintln!("[lab] wrote {path}"),
            Err(e) => eprintln!("[lab] cannot write {path}: {e}"),
        }
    }

    /// Writes the per-stage wall-clock report (`bench_pipeline.json`).
    /// Stage *timings* vary with `--threads`; every other result file is
    /// byte-identical across thread counts.
    pub fn write_bench_pipeline(&self) {
        let timings = ets_obs::metrics::stage_timeline();
        if timings.is_empty() {
            return;
        }
        let stages: Vec<serde_json::Value> = timings
            .iter()
            .map(|(name, secs)| json!({ "stage": name.as_str(), "seconds": *secs }))
            .collect();
        let total: f64 = timings.iter().map(|(_, s)| *s).sum();
        let mem: serde_json::Map = ets_obs::metrics::gauges_with_prefix("mem")
            .into_iter()
            .map(|(name, v)| (name, json!(v)))
            .collect();
        let value = json!({
            "threads": ets_parallel::threads(),
            "streaming": self.streaming,
            "channel_depth": ets_parallel::stream_depth(),
            "seed": self.seed,
            "fast": self.fast,
            "total_seconds": total,
            "stages": stages,
            "mem": mem,
        });
        self.write_json("bench_pipeline", &value);
    }

    /// Writes the full performance baseline (`bench_baseline.json`):
    /// pipeline stage timings, deterministic workload counts, and the
    /// legacy-vs-optimized kernel microbenchmarks. Timings vary run to
    /// run; the counts are byte-identical for a given seed/scale.
    pub fn write_bench_baseline(&self) {
        let micro = crate::microbench::run();
        let timings = ets_obs::metrics::stage_timeline();
        let stages: Vec<serde_json::Value> = timings
            .iter()
            .map(|(name, secs)| json!({ "stage": name.as_str(), "seconds": *secs }))
            .collect();
        let total: f64 = timings.iter().map(|(_, s)| *s).sum();
        let counts_json: serde_json::Map = ets_obs::metrics::counters_with_prefix("lab")
            .into_iter()
            .map(|(name, v)| (name, json!(v)))
            .collect();
        let value = json!({
            "threads": ets_parallel::threads(),
            "streaming": self.streaming,
            "seed": self.seed,
            "fast": self.fast,
            "total_seconds": total,
            "stages": stages,
            "counts": counts_json,
            "microbench": micro,
        });
        self.write_json("bench_baseline", &value);
        self.write_bench_scan(&micro);
    }

    /// Writes the scan-engine report (`bench_scan.json`): the
    /// legacy-vs-automaton comparisons for the layers that moved onto
    /// `ets-scan`, plus the scan workload counters. Timings vary run to
    /// run; the `bench_` prefix keeps it out of the byte-identity checks.
    fn write_bench_scan(&self, micro: &[crate::microbench::Microbench]) {
        let scan: Vec<&crate::microbench::Microbench> = micro
            .iter()
            .filter(|m| m.name.starts_with("scan_"))
            .collect();
        if scan.is_empty() {
            return;
        }
        let counters: serde_json::Map = ets_obs::metrics::counters_with_prefix("funnel.scan")
            .into_iter()
            .map(|(name, v)| (name, json!(v)))
            .collect();
        let value = json!({
            "threads": ets_parallel::threads(),
            "seed": self.seed,
            "fast": self.fast,
            "microbench": scan,
            "counters": counters,
        });
        self.write_json("bench_scan", &value);
    }
}
