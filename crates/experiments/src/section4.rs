//! Section-4 experiments: Tables 1–3, Figures 3–7, headline volumes.

use crate::lab::Lab;
use crate::report::{print_table, sparkline, thousands};
use ets_collector::analysis::StudyAnalysis;
use ets_collector::corpus::{self, SpamDataset};
use ets_collector::scrub::{self, SensitiveKind};
use ets_collector::spamscore::SpamScorer;
use ets_core::stats::Confusion;
use ets_dns::zone::{table1_listing, Zone};
use serde_json::json;
use std::net::Ipv4Addr;

/// Table 1: the DNS settings of an example typo domain.
pub fn table1(lab: &Lab) {
    let zone = Zone::catch_all(
        &"exampel.com".parse().expect("valid"),
        Ipv4Addr::new(1, 1, 1, 1),
        300,
    );
    let listing = table1_listing(&zone);
    println!("{listing}");
    lab.write_json("table1", &json!({ "listing": listing }));
}

/// Table 2: precision/sensitivity of the scrubber per identifier type,
/// following the paper's protocol: per-type samples plus a 100-email
/// random sample, evaluated against the planted ground truth.
pub fn table2(lab: &Lab) {
    let corpus = corpus::enron_like(4_000, 0.35, lab.seed ^ 0x7ab1e2);
    let mut per_kind: Vec<(SensitiveKind, Confusion)> = SensitiveKind::ALL
        .iter()
        .map(|k| (*k, Confusion::new()))
        .collect();
    for email in &corpus {
        let result = scrub::scrub(&email.message.body);
        for (kind, confusion) in &mut per_kind {
            let predicted = result.has(*kind);
            let actual = email.sensitive.contains(kind);
            // The paper scores per email-and-type: was this type found
            // where present / absent.
            confusion.record(predicted, actual);
        }
    }
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (kind, confusion) in &per_kind {
        let s = confusion.scores();
        rows.push(vec![
            kind.label().to_owned(),
            fmt(s.f1),
            fmt(s.precision),
            fmt(s.recall),
        ]);
        out.push(json!({
            "kind": kind.label(),
            "f1": s.f1, "precision": s.precision, "sensitivity": s.recall,
            "tp": confusion.tp, "fp": confusion.fp, "fn": confusion.fn_,
        }));
    }
    print_table(&["Sensitive info", "F1-score", "Prec.", "Sens."], &rows);
    lab.write_json(
        "table2",
        &json!({ "rows": out, "corpus_size": corpus.len() }),
    );
}

fn fmt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "–".to_owned(),
    }
}

/// Table 3: the spam scorer on the four dataset profiles.
pub fn table3(lab: &Lab) {
    let scorer = SpamScorer::new();
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for ds in SpamDataset::ALL {
        let corpus = corpus::spam_dataset(ds, 3_000, lab.seed ^ 0x5e7);
        let mut confusion = Confusion::new();
        for email in &corpus {
            confusion.record(scorer.is_spam(&email.message), email.spam);
        }
        let s = confusion.scores();
        rows.push(vec![ds.name().to_owned(), fmt(s.precision), fmt(s.recall)]);
        out.push(json!({
            "dataset": ds.name(),
            "precision": s.precision,
            "recall": s.recall,
        }));
    }
    print_table(&["Dataset", "Precision", "Recall"], &rows);
    lab.write_json("table3", &json!({ "rows": out }));
}

/// Figure 3: daily receiver-candidate series by funnel category.
pub fn fig3(lab: &Lab) {
    daily_figure(lab, false, "fig3");
}

/// Figure 4: daily SMTP-candidate series by funnel category.
pub fn fig4(lab: &Lab) {
    daily_figure(lab, true, "fig4");
}

fn daily_figure(lab: &Lab, smtp_side: bool, name: &str) {
    let c = lab.collection();
    let analysis = StudyAnalysis::new(&c.infra, &c.collected, &c.verdicts, c.spam_scale);
    let series = analysis.daily_series(smtp_side);
    let spam: Vec<usize> = series.iter().map(|d| d.spam).collect();
    let auto: Vec<usize> = series.iter().map(|d| d.auto_filtered).collect();
    let typo: Vec<usize> = series.iter().map(|d| d.true_typos).collect();
    println!(
        "daily {} emails, {} collection days (spam at 1/{:.0} scale)",
        if smtp_side {
            "SMTP-typo"
        } else {
            "receiver-typo"
        },
        series.len(),
        1.0 / c.spam_scale
    );
    println!("spam      {}", sparkline(&spam));
    println!("filtered  {}", sparkline(&auto));
    println!("true typo {}", sparkline(&typo));
    println!(
        "totals: spam {} (≈{} at paper scale), filtered {}, true {}",
        spam.iter().sum::<usize>(),
        thousands(spam.iter().sum::<usize>() as f64 / c.spam_scale),
        auto.iter().sum::<usize>(),
        typo.iter().sum::<usize>()
    );
    let rows: Vec<serde_json::Value> = series
        .iter()
        .map(|d| json!({"day": d.day, "spam": d.spam, "filtered": d.auto_filtered, "true": d.true_typos}))
        .collect();
    lab.write_json(name, &json!({ "series": rows, "spam_scale": c.spam_scale }));
}

/// Figure 5: cumulative receiver typos across the 27 provider domains.
pub fn fig5(lab: &Lab) {
    let c = lab.collection();
    let analysis = StudyAnalysis::new(&c.infra, &c.collected, &c.verdicts, c.spam_scale);
    let rows = analysis.figure5();
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|(d, n, cum)| vec![d.to_string(), n.to_string(), format!("{cum:.3}")])
        .collect();
    print_table(&["Domain", "Receiver typos", "Cumulative"], &printable);
    let top2 = rows.get(1).map(|r| r.2).unwrap_or(0.0);
    let top12 = rows.get(11).map(|r| r.2).unwrap_or(0.0);
    println!("top-2 share: {top2:.2}; top-12 share: {top12:.2} (paper: majority / 0.99)");
    lab.write_json(
        "fig5",
        &json!({
            "rows": rows.iter().map(|(d, n, c)| json!({"domain": d.to_string(), "count": n, "cumulative": c})).collect::<Vec<_>>(),
            "top2_share": top2,
            "top12_share": top12,
        }),
    );
}

/// Figure 6: sensitive-info heatmap over true typo emails.
pub fn fig6(lab: &Lab) {
    let c = lab.collection();
    let analysis = StudyAnalysis::new(&c.infra, &c.collected, &c.verdicts, c.spam_scale);
    let heat = analysis.figure6();
    let mut rows: Vec<(&(ets_core::DomainName, String), &usize)> = heat.iter().collect();
    rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    let printable: Vec<Vec<String>> = rows
        .iter()
        .take(25)
        .map(|((d, k), n)| vec![d.to_string(), k.clone(), n.to_string()])
        .collect();
    print_table(&["Typo domain", "Sensitive info", "Count"], &printable);
    lab.write_json(
        "fig6",
        &json!({
            "cells": rows.iter().map(|((d, k), n)| json!({"domain": d.to_string(), "kind": k, "count": n})).collect::<Vec<_>>(),
        }),
    );
}

/// Figure 7: attachment extension frequencies among true typos.
pub fn fig7(lab: &Lab) {
    let c = lab.collection();
    let analysis = StudyAnalysis::new(&c.infra, &c.collected, &c.verdicts, c.spam_scale);
    let rows = analysis.figure7();
    let printable: Vec<Vec<String>> = rows
        .iter()
        .map(|(e, n)| vec![e.clone(), n.to_string()])
        .collect();
    print_table(&["Extension", "Count"], &printable);
    lab.write_json(
        "fig7",
        &json!({
            "rows": rows.iter().map(|(e, n)| json!({"ext": e, "count": n})).collect::<Vec<_>>(),
        }),
    );
}

/// §4.4.1: the headline yearly volumes, plus SMTP-typo persistence.
pub fn volumes(lab: &Lab) {
    let c = lab.collection();
    let analysis = StudyAnalysis::new(&c.infra, &c.collected, &c.verdicts, c.spam_scale);
    let v = analysis.volumes();
    let rows = vec![
        vec![
            "total emails/yr".to_owned(),
            thousands(v.total),
            "118,894,960".to_owned(),
        ],
        vec![
            "receiver/reflection candidates/yr".to_owned(),
            thousands(v.receiver_candidates),
            "16,233,730".to_owned(),
        ],
        vec![
            "SMTP candidates/yr".to_owned(),
            thousands(v.smtp_candidates),
            "102,661,230".to_owned(),
        ],
        vec![
            "pass all filters/yr".to_owned(),
            thousands(v.pass_funnel),
            "7,260".to_owned(),
        ],
        vec![
            "receiver+reflection/yr".to_owned(),
            thousands(v.receiver_reflection),
            "6,041".to_owned(),
        ],
        vec![
            "SMTP typos/yr (range)".to_owned(),
            format!(
                "{} – {}",
                thousands(v.smtp_range.0),
                thousands(v.smtp_range.1)
            ),
            "415 – 5,970".to_owned(),
        ],
        vec![
            "receiver typos on SMTP domains/yr".to_owned(),
            thousands(v.mystery_receiver),
            "≈700".to_owned(),
        ],
    ];
    print_table(&["Quantity", "Measured", "Paper"], &rows);
    let p = analysis.smtp_persistence();
    println!(
        "\nSMTP persistence: {} users; single-email {:.0}%; <1 day {:.0}%; <1 week {:.0}%; ≤4 emails {:.0}%; max {} days",
        p.users,
        p.single_email * 100.0,
        p.under_one_day * 100.0,
        p.under_one_week * 100.0,
        p.at_most_four_emails * 100.0,
        p.max_days
    );
    println!("(paper: 70% single; 83% <1 day; 90% <1 week; 90% ≤4 emails; max 209 days)");
    lab.write_json(
        "volumes",
        &json!({
            "measured": {
                "total": v.total,
                "receiver_candidates": v.receiver_candidates,
                "smtp_candidates": v.smtp_candidates,
                "pass_funnel": v.pass_funnel,
                "receiver_reflection": v.receiver_reflection,
                "smtp_range": [v.smtp_range.0, v.smtp_range.1],
                "mystery_receiver": v.mystery_receiver,
            },
            "paper": {
                "total": 118_894_960.0,
                "receiver_candidates": 16_233_730.0,
                "smtp_candidates": 102_661_230.0,
                "pass_funnel": 7_260.0,
                "receiver_reflection": 6_041.0,
                "smtp_range": [415.0, 5_970.0],
                "mystery_receiver": 700.0,
            },
            "persistence": {
                "users": p.users,
                "single_email": p.single_email,
                "under_one_day": p.under_one_day,
                "under_one_week": p.under_one_week,
                "at_most_four": p.at_most_four_emails,
                "max_days": p.max_days,
            },
        }),
    );
}
