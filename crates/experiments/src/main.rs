//! `repro` — regenerates every table and figure of *Email Typosquatting*
//! (Szurdi & Christin, IMC 2017) from the simulated substrate.
//!
//! ```text
//! repro <experiment> [--seed N] [--out DIR] [--fast] [--scale N]
//!                    [--snapshot FILE] [--threads N]
//!                    [--streaming|--batch] [--channel-depth N] [--trace FILE]
//!                    [--telemetry ADDR]
//!
//! experiments:
//!   table1      DNS settings of a typo domain
//!   table2      sensitive-info scrubber precision/sensitivity
//!   table3      spam-scorer evaluation on four datasets
//!   table4      SMTP support census of ctypo domains
//!   table5      honey-probe outcome counts
//!   table6      MX usage of accepting domains
//!   fig3        daily receiver-typo series
//!   fig4        daily SMTP-typo series
//!   fig5        cumulative receiver typos per domain
//!   fig6        sensitive-info heatmap
//!   fig7        attachment extensions
//!   fig8        ctypo concentration by mail server / registrant
//!   fig9        relative popularity by mistake type
//!   volumes     §4.4.1 headline volumes
//!   regression  §6 projection model
//!   honey       §7 honey-token campaign
//!   snapshot    build (or load) the world substrate only — use with
//!               `--snapshot FILE` to warm a snapshot cache
//!   all         everything above
//! ```
//!
//! Flags:
//!
//! * `--seed N` — base RNG seed (default 20160604).
//! * `--out DIR` — output directory for JSON records (default `results/`,
//!   created if missing).
//! * `--fast` — reduced-scale mode for quick runs.
//! * `--scale N` — world scale: number of popularity targets. Accepts the
//!   presets `1k`, `100k`, `1m` or any integer; overrides `--fast` for
//!   the world (the collection run is unaffected). Results at a given
//!   scale are byte-identical for any thread count.
//! * `--snapshot FILE` — persistent world snapshot. When `FILE` holds a
//!   snapshot built from the same `(seed, scale, format version)`, the
//!   world is reloaded from it near-zero-copy and the `world_build` stage
//!   is skipped (reported as skipped in `bench_pipeline.json`); on any
//!   mismatch or corruption the reason is logged, the world is rebuilt,
//!   and `FILE` is refreshed. Loaded and fresh worlds are byte-identical.
//! * `--threads N` — worker count for the parallel pipeline stages;
//!   results are byte-identical for any value (0 = one per core).
//! * `--streaming` / `--batch` — pipeline mode for the collection run.
//!   Streaming (the default) generates, classifies, and hands off traffic
//!   day by day under bounded channels, so peak payload memory is set by
//!   the channel geometry rather than the study size. `--batch` runs the
//!   original collect-then-classify oracle. Every `results/*.json`
//!   (bench reports aside) is byte-identical between the two modes.
//! * `--channel-depth N` — per-worker bounded-channel depth for
//!   streaming mode (default 64); results are byte-identical for any
//!   value, only memory and throughput change.
//! * `--telemetry ADDR` — serve live introspection over HTTP on `ADDR`
//!   while the run executes: `/metrics` (Prometheus text), `/snapshot.json`
//!   and `/healthz`. Telemetry reads the merged metric shards and records
//!   only gauges of its own, so it never changes `results/*.json`.
//! * `--trace FILE` — write a Chrome-trace span file to `FILE` (open in
//!   Perfetto / `chrome://tracing`), a JSONL event log next to it, and a
//!   deterministic metrics snapshot. The `ETS_TRACE` environment variable
//!   filters spans (`off`, `info`, `debug`, `trace`, or per-module
//!   directives like `funnel=trace,parallel=off`); it defaults to
//!   `trace` (everything) when `--trace` is given. Tracing never changes
//!   the `results/*.json` outputs.
//!
//! Each experiment prints the paper-shaped rows and writes a JSON record
//! under `--out` (default `results/`).

#![forbid(unsafe_code)]

mod lab;
mod microbench;
mod report;
mod section4;
mod section5;
mod section6;
mod section7;

use std::process::ExitCode;

/// An experiment entry: name plus runner.
type Experiment = (&'static str, fn(&lab::Lab));

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut seed: u64 = 2016_0604;
    let mut out_dir = "results".to_owned();
    let mut fast = false;
    let mut scale: Option<usize> = None;
    let mut snapshot: Option<String> = None;
    let mut streaming = true;
    let mut trace_path: Option<String> = None;
    let mut telemetry_addr: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs an integer"),
            },
            "--out" => match it.next() {
                Some(d) => out_dir = d.clone(),
                None => return usage("--out needs a directory"),
            },
            "--scale" => match it.next().and_then(|s| parse_scale(s)) {
                Some(n) => scale = Some(n),
                None => return usage("--scale needs 1k, 100k, 1m, or a positive integer"),
            },
            "--snapshot" => match it.next() {
                Some(p) => snapshot = Some(p.clone()),
                None => return usage("--snapshot needs a file path"),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                // Worker count for the parallel pipeline stages; results
                // are byte-identical for any value (0 = one per core).
                Some(n) => ets_parallel::set_threads(n),
                None => return usage("--threads needs an integer"),
            },
            "--trace" => match it.next() {
                Some(p) => trace_path = Some(p.clone()),
                None => return usage("--trace needs a file path"),
            },
            "--telemetry" => match it.next() {
                Some(addr) => telemetry_addr = Some(addr.clone()),
                None => return usage("--telemetry needs a bind address"),
            },
            "--fast" => fast = true,
            "--streaming" => streaming = true,
            "--batch" => streaming = false,
            "--channel-depth" => match it.next().and_then(|s| s.parse().ok()) {
                // Bounded-channel depth per worker in streaming mode;
                // results are byte-identical for any value.
                Some(n) => ets_parallel::set_stream_depth(n),
                None => return usage("--channel-depth needs an integer"),
            },
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_owned());
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let Some(experiment) = experiment else {
        return usage("no experiment given");
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    if trace_path.is_some() {
        // ETS_TRACE filters the recorded spans; absent means everything.
        // ETS_TRACE=off disables span recording (the metrics snapshot is
        // still written at export).
        let filter = match std::env::var("ETS_TRACE") {
            Ok(spec) => match ets_obs::Filter::parse(&spec) {
                Ok(f) => f,
                Err(e) => return usage(&format!("bad ETS_TRACE: {e}")),
            },
            Err(_) => ets_obs::Filter::all(),
        };
        ets_obs::trace::enable(filter);
    }
    // Live introspection listener (`/metrics`, `/snapshot.json`,
    // `/healthz`). It reads merged counters and records only gauges, so
    // enabling it never perturbs the deterministic results/*.json.
    let _telemetry_server = match &telemetry_addr {
        Some(addr) => match ets_obs::serve::serve(addr) {
            Ok(srv) => {
                eprintln!("[telemetry] serving on http://{}", srv.addr());
                Some(srv)
            }
            Err(e) => {
                eprintln!("cannot bind telemetry {addr}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let mut ctx = lab::Lab::new(seed, fast, streaming, out_dir);
    ctx.scale = scale;
    ctx.snapshot = snapshot;
    let ctx = ctx;
    let known: Vec<Experiment> = vec![
        ("table1", section4::table1),
        ("table2", section4::table2),
        ("table3", section4::table3),
        ("table4", section5::table4),
        ("table5", section7::table5),
        ("table6", section7::table6),
        ("fig3", section4::fig3),
        ("fig4", section4::fig4),
        ("fig5", section4::fig5),
        ("fig6", section4::fig6),
        ("fig7", section4::fig7),
        ("fig8", section5::fig8),
        ("fig9", section6::fig9),
        ("volumes", section4::volumes),
        ("regression", section6::regression),
        ("honey", section7::honey),
    ];
    match experiment.as_str() {
        "snapshot" => {
            // World substrate only: load-or-build (and persist, when
            // `--snapshot` is given). Warms a snapshot cache without
            // running any analysis.
            let world = ctx.world();
            println!(
                "world: {} targets, {} ctypos (scale {})",
                world.targets.len(),
                world.ctypos.len(),
                ctx.scale_label()
            );
            ctx.write_bench_pipeline();
        }
        "all" => {
            for (name, f) in &known {
                println!("\n=== {name} ===");
                f(&ctx);
            }
            ctx.write_bench_pipeline();
            ctx.write_bench_baseline();
        }
        name => match known.iter().find(|(n, _)| *n == name) {
            Some((_, f)) => {
                f(&ctx);
                ctx.write_bench_pipeline();
            }
            None => return usage(&format!("unknown experiment {name:?}")),
        },
    }
    if let Some(path) = &trace_path {
        match ets_obs::trace::export(path) {
            Ok(paths) => eprintln!(
                "[trace] wrote {} (Perfetto), {} (JSONL), {} (metrics)",
                paths.chrome, paths.jsonl, paths.metrics
            ),
            Err(e) => {
                eprintln!("cannot write trace {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Parses a `--scale` value: the presets `1k`/`100k`/`1m` (any integer
/// with a `k`/`m` suffix, really) or a raw positive integer.
fn parse_scale(s: &str) -> Option<usize> {
    let lower = s.to_ascii_lowercase();
    let n = if let Some(prefix) = lower.strip_suffix('k') {
        prefix.parse::<usize>().ok()?.checked_mul(1_000)?
    } else if let Some(prefix) = lower.strip_suffix('m') {
        prefix.parse::<usize>().ok()?.checked_mul(1_000_000)?
    } else {
        lower.parse::<usize>().ok()?
    };
    (n > 0).then_some(n)
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: repro <table1|table2|table3|table4|table5|table6|fig3..fig9|volumes|regression|honey|snapshot|all> [--seed N] [--out DIR] [--fast] [--scale N] [--snapshot FILE] [--threads N] [--streaming|--batch] [--channel-depth N] [--trace FILE] [--telemetry ADDR]"
    );
    eprintln!("  --seed N      base RNG seed (default 20160604)");
    eprintln!(
        "  --out DIR     output directory for JSON records (default results/, created if missing)"
    );
    eprintln!("  --fast        reduced-scale mode for quick runs");
    eprintln!("  --scale N     world scale in targets (1k, 100k, 1m, or any integer); overrides --fast for the world");
    eprintln!("  --snapshot FILE  load the world from FILE when it matches (seed, scale, format); else build fresh and save there");
    eprintln!("  --threads N   parallel worker count; results are byte-identical for any value (0 = one per core)");
    eprintln!("  --streaming   bounded-memory streaming collection (the default)");
    eprintln!("  --batch       collect-then-classify oracle; identical results, O(corpus) memory");
    eprintln!("  --channel-depth N  streaming channel depth per worker (default 64); identical results for any value");
    eprintln!("  --telemetry ADDR  serve live /metrics, /snapshot.json and /healthz on ADDR during the run (never changes results/*.json)");
    eprintln!("  --trace FILE  write Chrome-trace spans to FILE plus a .jsonl event log and .metrics.json snapshot");
    eprintln!(
        "                (filter spans with ETS_TRACE, e.g. ETS_TRACE=funnel=trace,parallel=off)"
    );
    ExitCode::FAILURE
}
