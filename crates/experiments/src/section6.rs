//! Section-6 experiments: the projection regression and Figure 9.

use crate::lab::Lab;
use crate::report::{print_table, thousands};
use ets_collector::funnel::FunnelVerdict;
use ets_core::regress::{cost_per_email, MistakeTypePopularity, Observation, ProjectionModel};
use ets_core::typing::TypingModel;
use ets_core::typogen::{MistakeKind, TypoCandidate};
use ets_core::DomainName;
use serde_json::json;
use std::collections::HashMap;

/// The five seed targets of §6.1 with their email-category ranks.
const SEED_TARGETS: [(&str, usize); 5] = [
    ("gmail.com", 1),
    ("hotmail.com", 2),
    ("outlook.com", 3),
    ("comcast.com", 6),
    ("verizon.com", 7),
];

/// The ecosystem-side aliases of the seed targets (the synthetic world
/// registers the ISPs under their real `.net` mail domains).
const SEED_ALIASES: [(&str, &str, usize); 5] = [
    ("gmail.com", "gmail.com", 1),
    ("hotmail.com", "hotmail.com", 2),
    ("outlook.com", "outlook.com", 3),
    ("comcast.com", "comcast.net", 6),
    ("verizon.com", "verizon.net", 7),
];

/// Synthetic relative-popularity sample for one ctypo: the typing model's
/// expectation, relative to its target, with deterministic log-normal
/// noise (Alexa rank estimates are noisy) and occasional benign-collision
/// outliers.
fn popularity_sample(cand: &TypoCandidate, model: &TypingModel, outlier: bool) -> f64 {
    // Compress the typing model's spread: web traffic to a typo domain is
    // less kind-sensitive than direct email volume (people also arrive at
    // typo sites via links and history), so Figure 9's gaps are smaller
    // than the raw model's.
    let base = model.expected_emails(1e9, cand).powf(0.65);
    let h = fnv(cand.domain.as_str());
    let z = ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0; // [-1, 1]
    let noise = (z * 0.8).exp();
    let outlier_boost = if outlier { 500.0 } else { 1.0 };
    base * noise * outlier_boost
}

/// Figure 9: relative popularity of ctypos per mistake type, with 95% CI.
pub fn fig9(lab: &Lab) {
    let pop = mistake_popularity(lab);
    let mut rows = Vec::new();
    for (i, kind) in MistakeKind::ALL.iter().enumerate() {
        rows.push(vec![
            kind.to_string(),
            format!("{:.3}", pop.means[i]),
            format!("±{:.3}", pop.half_widths[i]),
        ]);
    }
    print_table(&["Mistake type", "Mean rel. popularity", "95% CI"], &rows);
    println!(
        "deletion/transposition vs addition/substitution ratio: {:.2} (paper: significantly above 1)",
        (pop.mean_of(MistakeKind::Deletion) + pop.mean_of(MistakeKind::Transposition))
            / (pop.mean_of(MistakeKind::Addition) + pop.mean_of(MistakeKind::Substitution)).max(1e-12)
    );
    lab.write_json(
        "fig9",
        &json!({
            "kinds": MistakeKind::ALL.iter().map(|k| k.to_string()).collect::<Vec<_>>(),
            "means": pop.means,
            "ci_half_widths": pop.half_widths,
        }),
    );
}

fn mistake_popularity(lab: &Lab) -> MistakeTypePopularity {
    let world = lab.world();
    let model = TypingModel::default();
    // ctypos of the top-40 targets, as in §6.1.
    let top40: Vec<&DomainName> = world.targets.iter().take(40).collect();
    let mut samples = Vec::new();
    for c in &world.ctypos {
        if !top40.contains(&&c.candidate.target) {
            continue;
        }
        let outlier = c.class == ets_core::taxonomy::DomainClass::BenignCollision
            && fnv(c.candidate.domain.as_str()).is_multiple_of(7);
        samples.push((
            c.candidate.kind,
            popularity_sample(&c.candidate, &model, outlier),
        ));
    }
    // Normalize to "relative popularity": mean 1 across all ctypos, the
    // way Figure 9 plots Alexa traffic relative to sibling typos.
    let mean: f64 = samples.iter().map(|(_, v)| v).sum::<f64>() / samples.len().max(1) as f64;
    for (_, v) in &mut samples {
        *v /= mean.max(1e-300);
    }
    MistakeTypePopularity::estimate(&samples).expect("every mistake kind sampled")
}

/// §6.2: fit the projection regression on the study's own domains, apply
/// it to the ecosystem ctypos of the five seed targets, and report the
/// corrected projection and cost per email.
pub fn regression(lab: &Lab) {
    let c = lab.collection();
    let world = lab.world();
    let mut reg_span = ets_obs::span!("regression.fit");

    // --- training set: our domains targeting the 5 seeds ---------------
    let mut yearly: HashMap<&DomainName, f64> = HashMap::new();
    for (e, v) in c.collected.iter().zip(&c.verdicts) {
        if matches!(v, FunnelVerdict::ReceiverTypo | FunnelVerdict::Reflection) {
            let days = c.infra.collection_days[&e.domain] as f64;
            *yearly.entry(&e.domain).or_insert(0.0) += 365.0 / days;
        }
    }
    let mut observations = Vec::new();
    let mut seed_kinds: Vec<MistakeKind> = Vec::new();
    for d in &c.infra.domains {
        let Some(&(_, rank)) = SEED_TARGETS
            .iter()
            .find(|(t, _)| *t == d.candidate.target.as_str())
        else {
            continue;
        };
        if !matches!(d.purpose, ets_core::taxonomy::CollectionPurpose::Provider) {
            continue;
        }
        let y = yearly.get(d.domain()).copied().unwrap_or(0.0);
        observations.push(Observation {
            candidate: d.candidate.clone(),
            target_rank: rank,
            yearly_emails: y,
        });
        if !seed_kinds.contains(&d.candidate.kind) {
            seed_kinds.push(d.candidate.kind);
        }
    }
    println!(
        "training on {} study domains targeting the 5 seed providers (paper: 25)",
        observations.len()
    );
    reg_span.arg("observations", observations.len() as u64);
    ets_obs::metrics::counter_add("regression.observations", observations.len() as u64);
    let model = ProjectionModel::fit(&observations).expect("regression fits");
    println!(
        "R² = {:.2} (paper: 0.74); leave-one-out R² = {:.2} (paper: 0.63)",
        model.r_squared, model.loocv_r_squared
    );

    // --- ctypo population of the seed targets ---------------------------
    let mut population: Vec<(TypoCandidate, usize)> = Vec::new();
    for ct in &world.ctypos {
        if ct.class == ets_core::taxonomy::DomainClass::Defensive {
            continue; // the paper excludes defensive registrations
        }
        let Some(&(_, _, rank)) = SEED_ALIASES
            .iter()
            .find(|(_, alias, _)| *alias == ct.candidate.target.as_str())
        else {
            continue;
        };
        population.push((ct.candidate.clone(), rank));
    }
    println!(
        "ctypos of the five seed targets in the wild: {} (paper: 1,211)",
        population.len()
    );
    ets_obs::metrics::counter_add("regression.population", population.len() as u64);

    // --- projection ------------------------------------------------------
    let projection = model.project_total(&population, 0.95);
    println!(
        "projected emails/yr: {} (95% CI {} – {}) [paper: 260,514 (22,577 – 905,174)]",
        thousands(projection.expected),
        thousands(projection.interval.lo),
        thousands(projection.interval.hi)
    );

    // --- Figure-9 mistake-type correction --------------------------------
    let pop = mistake_popularity(lab);
    let factor = pop.correction_factor(&seed_kinds);
    let corrected = projection.expected * factor;
    println!(
        "mistake-type correction ×{factor:.2} → {} emails/yr (95% CI {} – {}) [paper: 846,219 (58,460 – 4,039,500)]",
        thousands(corrected),
        thousands(projection.interval.lo * factor),
        thousands(projection.interval.hi * factor)
    );

    // --- economics --------------------------------------------------------
    let cost = cost_per_email(population.len(), corrected, 8.5);
    println!(
        "cost per captured email at $8.50/domain/yr: {:.1}¢ (paper: <2¢)",
        cost * 100.0
    );

    lab.write_json(
        "regression",
        &json!({
            "training_domains": observations.len(),
            "r_squared": model.r_squared,
            "loocv_r_squared": model.loocv_r_squared,
            "population": population.len(),
            "projected": projection.expected,
            "ci": [projection.interval.lo, projection.interval.hi],
            "correction_factor": factor,
            "corrected": corrected,
            "cost_per_email_usd": cost,
            "paper": {
                "r_squared": 0.74, "loocv": 0.63, "population": 1211,
                "projected": 260_514.0, "ci": [22_577.0, 905_174.0],
                "corrected": 846_219.0, "corrected_ci": [58_460.0, 4_039_500.0],
            },
        }),
    );
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
