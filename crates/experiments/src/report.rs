//! Small text-table helpers for the experiment printouts.

/// Prints a table: header row plus data rows, columns padded.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{c:<w$}", w = widths.get(i).copied().unwrap_or(0)));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<String>>(),
    );
    for row in rows {
        line(row);
    }
}

/// Formats a float with thousands separators, no decimals.
pub fn thousands(x: f64) -> String {
    let v = x.round() as i64;
    let s = v.abs().to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if v < 0 {
        format!("-{out}")
    } else {
        out
    }
}

/// A simple log-ish sparkline for daily series (console figure stand-in).
pub fn sparkline(values: &[usize]) -> String {
    const BARS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    values
        .iter()
        .map(|&v| {
            let level = if v == 0 {
                0
            } else {
                (((v as f64).ln_1p() / (values.iter().max().copied().unwrap_or(1) as f64).ln_1p())
                    * 8.0)
                    .ceil() as usize
            };
            BARS[level.min(8)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_formatting() {
        assert_eq!(thousands(0.0), "0");
        assert_eq!(thousands(999.0), "999");
        assert_eq!(thousands(1000.0), "1,000");
        assert_eq!(thousands(118_894_960.0), "118,894,960");
        assert_eq!(thousands(-1234.0), "-1,234");
    }

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0, 1, 10, 100]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with(' '));
        assert!(s.ends_with('█'));
    }
}
