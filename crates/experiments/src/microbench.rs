//! Legacy-vs-optimized microbenchmarks over the hot kernels.
//!
//! `repro all` records these in `bench_baseline.json` alongside the
//! pipeline stage timings, so the speedup of the byte-level typo engine,
//! the two-row distance kernels, the reverse DL-1 index, and the
//! `ets-scan` automaton layers (spam scorer, scrubber) is measured on
//! every run — and each comparison asserts the two implementations
//! agree on a workload checksum, so a silent divergence fails loudly
//! instead of skewing results.

use ets_collector::corpus::{self, SpamDataset};
use ets_collector::scrub;
use ets_collector::spamscore::SpamScorer;
use ets_core::alexa;
use ets_core::distance;
use ets_core::typogen::{self, TypoTable};
use ets_core::{DomainName, ReverseDl1Index};
use serde::Serialize;
use std::time::Instant;

/// One legacy-vs-optimized comparison.
#[derive(Debug, Clone, Serialize)]
pub struct Microbench {
    /// Kernel under test.
    pub name: &'static str,
    /// Wall-clock seconds for the pre-optimization implementation.
    pub legacy_seconds: f64,
    /// Wall-clock seconds for the optimized implementation.
    pub new_seconds: f64,
    /// `legacy_seconds / new_seconds`.
    pub speedup: f64,
}

fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

fn record(name: &'static str, legacy_seconds: f64, new_seconds: f64) -> Microbench {
    let speedup = legacy_seconds / new_seconds.max(1e-12);
    eprintln!(
        "[microbench] {name}: legacy {legacy_seconds:.3}s, new {new_seconds:.3}s ({speedup:.1}x)"
    );
    Microbench {
        name,
        legacy_seconds,
        new_seconds,
        speedup,
    }
}

/// Runs every comparison over a fixed workload derived from the synthetic
/// popularity list.
pub fn run() -> Vec<Microbench> {
    let targets: Vec<DomainName> = alexa::synthetic_top(150)
        .iter()
        .map(|e| e.domain.clone())
        .collect();
    // Distance workload: every (target sld, variant sld) pair from the
    // first targets' typo tables, plus the target slds against each other.
    let mut pairs: Vec<(String, String)> = Vec::new();
    for t in targets.iter().take(40) {
        let table = TypoTable::generate(t);
        for i in 0..table.len() {
            pairs.push((t.sld().to_owned(), table.sld(i).to_owned()));
        }
    }
    for a in targets.iter().take(30) {
        for b in targets.iter().take(30) {
            pairs.push((a.sld().to_owned(), b.sld().to_owned()));
        }
    }
    // Reverse-index workload: every DL-1 variant of a slice of targets
    // (all hits) plus every target itself (mostly misses).
    let mut queries: Vec<DomainName> = Vec::new();
    for t in targets.iter().take(25) {
        for c in typogen::generate_dl1(t) {
            queries.push(c.domain);
        }
    }
    queries.extend(targets.iter().cloned());

    let mut out = Vec::new();

    // --- typo generation ------------------------------------------------
    let (legacy_s, legacy_n) = time(|| {
        let mut n = 0usize;
        for t in &targets {
            n += typogen::generate_dl1_legacy(t).len();
        }
        n
    });
    let (new_s, new_n) = time(|| {
        let mut n = 0usize;
        for t in &targets {
            n += TypoTable::generate(t).len();
        }
        n
    });
    assert_eq!(legacy_n, new_n, "typo engines disagree on candidate count");
    out.push(record("typogen_dl1", legacy_s, new_s));

    // --- DL distance ----------------------------------------------------
    let (legacy_s, legacy_sum) = time(|| {
        pairs
            .iter()
            .map(|(a, b)| distance::damerau_levenshtein_legacy(a, b))
            .sum::<usize>()
    });
    let (new_s, new_sum) = time(|| {
        pairs
            .iter()
            .map(|(a, b)| distance::damerau_levenshtein(a, b))
            .sum::<usize>()
    });
    assert_eq!(legacy_sum, new_sum, "DL kernels disagree");
    out.push(record("distance_dl", legacy_s, new_s));

    // --- visual distance ------------------------------------------------
    let (legacy_s, legacy_sum) = time(|| {
        pairs
            .iter()
            .map(|(a, b)| distance::visual_legacy(a, b))
            .sum::<f64>()
    });
    let (new_s, new_sum) = time(|| {
        pairs
            .iter()
            .map(|(a, b)| distance::visual(a, b))
            .sum::<f64>()
    });
    assert_eq!(
        legacy_sum.to_bits(),
        new_sum.to_bits(),
        "visual kernels disagree"
    );
    out.push(record("distance_visual", legacy_s, new_s));

    // --- reverse DL-1 index vs linear scan ------------------------------
    let index = ReverseDl1Index::build(&targets);
    let (legacy_s, legacy_hits) = time(|| {
        let mut hits = 0usize;
        for q in &queries {
            hits += targets
                .iter()
                .filter(|t| {
                    t.tld() == q.tld() && distance::damerau_levenshtein(t.sld(), q.sld()) == 1
                })
                .count();
        }
        hits
    });
    let (new_s, new_hits) = time(|| {
        let mut hits = 0usize;
        for q in &queries {
            hits += index.matches(q).len();
        }
        hits
    });
    assert_eq!(legacy_hits, new_hits, "reverse index disagrees with scan");
    out.push(record("revindex_matches", legacy_s, new_s));

    // --- spam scoring: per-keyword contains vs ets-scan automaton -------
    // Workload: a spam-heavy and a ham-heavy corpus, so both the
    // rule-rich and the rule-poor paths are exercised.
    let mut emails = corpus::spam_dataset(SpamDataset::Trec, 600, 0xBEEF);
    emails.extend(corpus::enron_like(600, 0.1, 0xFEED));
    let scorer = SpamScorer::new();
    let (legacy_s, legacy_sum) = time(|| {
        let mut rules = 0usize;
        let mut score = 0.0f64;
        for e in &emails {
            let s = scorer.score_legacy(&e.message);
            rules += s.rules.len();
            score += s.score;
        }
        (rules, score)
    });
    let (new_s, new_sum) = time(|| {
        let mut rules = 0usize;
        let mut score = 0.0f64;
        for e in &emails {
            let s = scorer.score(&e.message);
            rules += s.rules.len();
            score += s.score;
        }
        (rules, score)
    });
    assert_eq!(legacy_sum.0, new_sum.0, "spam scorers disagree on rules");
    assert_eq!(
        legacy_sum.1.to_bits(),
        new_sum.1.to_bits(),
        "spam scorers disagree on scores"
    );
    out.push(record("scan_spamscore", legacy_s, new_s));

    // --- scrubbing: lowercase-and-rescan vs ets-scan cue automata -------
    let (legacy_s, legacy_sum) = time(|| {
        let mut findings = 0usize;
        let mut bytes = 0usize;
        for e in &emails {
            let r = scrub::scrub_legacy(&e.message.body);
            findings += r.findings.len();
            bytes += r.text.len();
        }
        (findings, bytes)
    });
    let (new_s, new_sum) = time(|| {
        let mut findings = 0usize;
        let mut bytes = 0usize;
        for e in &emails {
            let r = scrub::scrub(&e.message.body);
            findings += r.findings.len();
            bytes += r.text.len();
        }
        (findings, bytes)
    });
    assert_eq!(legacy_sum, new_sum, "scrub paths disagree");
    out.push(record("scan_scrub", legacy_s, new_s));

    out
}

/// Contended counter recording: a single `Mutex<BTreeMap>` (the pre-v9
/// `ets-obs` recorder design) vs the sharded thread-local atomics now
/// behind [`ets_obs::metrics::counter_add`], hammered by 8 threads.
///
/// Both sides perform the same update stream and the totals are
/// asserted equal, so the comparison cannot silently diverge. The
/// sharded side records into the process-global registry under
/// `bench.obs.contention.*` names; the op count is fixed, so the
/// resulting counter values are deterministic.
pub fn obs_counter_contention() -> Microbench {
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    const THREADS: u64 = 8;
    const OPS: u64 = 200_000;
    const NAMES: [&str; 4] = [
        "bench.obs.contention.a",
        "bench.obs.contention.b",
        "bench.obs.contention.c",
        "bench.obs.contention.d",
    ];
    let legacy: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
    let (legacy_s, ()) = time(|| {
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for i in 0..OPS {
                        *legacy
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .entry(NAMES[(i % 4) as usize].to_owned())
                            .or_insert(0) += 1;
                    }
                });
            }
        });
    });
    let legacy_total: u64 = legacy
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .values()
        .sum();
    let read_total = || -> u64 {
        NAMES
            .iter()
            .map(|n| ets_obs::metrics::counter_value(n))
            .sum()
    };
    let before = read_total();
    let (new_s, ()) = time(|| {
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for i in 0..OPS {
                        ets_obs::metrics::counter_add(NAMES[(i % 4) as usize], 1);
                    }
                    ets_obs::metrics::retire_local();
                });
            }
        });
    });
    let sharded_total = read_total() - before;
    assert_eq!(legacy_total, THREADS * OPS, "mutex recorder lost updates");
    assert_eq!(
        sharded_total,
        THREADS * OPS,
        "sharded recorder lost updates"
    );
    record("obs_counter_contention", legacy_s, new_s)
}
