//! Section-5 experiments: the ecosystem census (Table 4, Figure 8) and
//! the name-server suspicion analysis.

use crate::lab::Lab;
use crate::report::{print_table, thousands};
use ets_dns::Fqdn;
use ets_ecosystem::mxconc::MxConcentration;
use ets_ecosystem::nameserver::NsAnalysis;
use ets_ecosystem::scan::{scan_world, SmtpSupport};
use ets_ecosystem::whois_cluster::{self, WhoisRow};
use serde_json::json;
use std::collections::HashSet;

/// Table 4: SMTP support of candidate typo domains.
pub fn table4(lab: &Lab) {
    let world = lab.world();
    let census = scan_world(world);
    let rows: Vec<Vec<String>> = census
        .rows()
        .into_iter()
        .map(|(label, count, pct_total, pct_analyzed)| {
            vec![
                label,
                thousands(count as f64),
                format!("{pct_total:.1}"),
                pct_analyzed,
            ]
        })
        .collect();
    print_table(&["Support status", "Count", "% total", "% analyzed"], &rows);
    println!(
        "\nemail-capable share: {:.1}% (paper: 43.3%)",
        census.supports_email_share() * 100.0
    );
    lab.write_json(
        "table4",
        &json!({
            "counts": census.counts,
            "total": census.total(),
            "email_capable_share": census.supports_email_share(),
            "paper_email_capable_share": 0.433,
            "no_info_pct": census.percent_total(SmtpSupport::NoInfo),
        }),
    );
}

/// Figure 8: cumulative ctypo share by mail server and by registrant,
/// plus the suspicious name servers of §5.2.
pub fn fig8(lab: &Lab) {
    let world = lab.world();
    let resolver = world.resolver();
    let domains: Vec<Fqdn> = world
        .ctypos
        .iter()
        .map(|c| Fqdn::from_domain(&c.candidate.domain))
        .collect();

    // --- mail-server concentration -----------------------------------
    let conc = MxConcentration::measure(&resolver, domains.iter());
    println!("mail-capable ctypos: {}", conc.total_with_mail);
    let mut rows = Vec::new();
    for k in [1usize, 5, 11, 51] {
        rows.push(vec![
            format!("top {k} mail servers"),
            format!("{:.1}%", conc.top_share(k) * 100.0),
        ]);
    }
    let one_pct = (conc.providers.len() / 100).max(1);
    rows.push(vec![
        format!("top 1% of servers ({one_pct})"),
        format!("{:.1}%", conc.top_share(one_pct) * 100.0),
    ]);
    print_table(&["Mail servers", "Share of ctypos"], &rows);
    println!("paper: top 11 serve >1/3; 51 serve the majority; <1% serve >74%");

    // --- registrant concentration --------------------------------------
    let whois_rows: Vec<WhoisRow> = world
        .ctypos
        .iter()
        .map(|c| {
            let fq = Fqdn::from_domain(&c.candidate.domain);
            let reg = world
                .registry
                .registration(&fq)
                .expect("ctypos are registered");
            WhoisRow {
                domain: fq,
                whois: reg.public_whois(),
                private: reg.is_private(),
            }
        })
        .collect();
    let clusters = whois_cluster::cluster_registrants(&whois_rows);
    let curve = whois_cluster::cumulative_ownership(&clusters);
    let top14 = curve.get(13).copied().unwrap_or(1.0);
    let majority_frac = whois_cluster::registrant_fraction_owning(&clusters, 0.5);
    println!(
        "\nregistrants (public WHOIS, ≥4 fields): {} clusters over {} domains",
        clusters.len(),
        clusters.iter().map(|c| c.len()).sum::<usize>()
    );
    println!(
        "top-14 registrants own {:.1}% (paper: 20%); {:.1}% of registrants own the majority (paper: 2.3%)",
        top14 * 100.0,
        majority_frac * 100.0
    );

    // --- suspicious name servers ---------------------------------------
    let zone_file = world.registry.zone_file();
    let ctypo_set: HashSet<Fqdn> = domains.iter().cloned().collect();
    let ns = NsAnalysis::run_with_background(&zone_file, &ctypo_set, &world.ns_customer_base, 10);
    println!(
        "\naverage NS typo ratio: {:.1}% (paper: ≈4%)",
        ns.average_ratio * 100.0
    );
    let sus = ns.suspicious(5.0);
    for s in sus.iter().take(5) {
        println!(
            "suspicious NS {}: {:.0}% typo ratio over {} domains",
            s.nameserver,
            s.typo_ratio() * 100.0,
            s.total_count
        );
    }
    println!("(paper: one name server at 89%)");

    lab.write_json(
        "fig8",
        &json!({
            "mx_top_shares": {
                "top1": conc.top_share(1), "top5": conc.top_share(5),
                "top11": conc.top_share(11), "top51": conc.top_share(51),
                "top_1pct": conc.top_share(one_pct),
            },
            "mx_curve_first_100": conc.cumulative_curve().into_iter().take(100).collect::<Vec<f64>>(),
            "registrant_top14": top14,
            "registrant_majority_fraction": majority_frac,
            "registrant_clusters": clusters.len(),
            "ns_average_ratio": ns.average_ratio,
            "ns_suspicious": sus.iter().map(|s| json!({
                "ns": s.nameserver.to_string(),
                "ratio": s.typo_ratio(),
                "domains": s.total_count,
            })).collect::<Vec<_>>(),
        }),
    );
}
