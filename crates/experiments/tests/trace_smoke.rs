//! End-to-end observability contract for the `repro` binary:
//!
//! * `--trace` emits a Chrome-trace file, a JSONL event log, and a
//!   deterministic metrics snapshot — all parseable, with a span for
//!   every pipeline stage and per-worker child spans under the
//!   `ets-parallel` fan-outs.
//! * The metrics snapshot is byte-identical at 1/2/8 threads.
//! * Tracing never perturbs the `results/*.json` outputs, and without
//!   `--trace` no trace artifact is written.

use serde_json::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Stages `repro all` runs through `time_stage` — each must appear as a
/// `stage.<name>` span in the trace. (The streaming pipeline fuses
/// traffic generation and funnel classification into `stream_collect` +
/// `funnel_finish`; the batch names died with the batch default.)
const STAGES: [&str; 3] = ["world_build", "stream_collect", "funnel_finish"];

/// Top-level pipeline spans every `all --fast` trace must contain.
const PIPELINE_SPANS: [&str; 6] = [
    "world.build",
    "stream.collect",
    "funnel.finish",
    "scan.census",
    "whois.cluster",
    "regression.fit",
];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ets-trace-smoke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    v.get(key).unwrap_or_else(|| panic!("missing field {key}"))
}

fn str_field<'a>(v: &'a Value, key: &str) -> &'a str {
    field(v, key)
        .as_str()
        .unwrap_or_else(|| panic!("field {key} not a string"))
}

/// Runs `repro all --fast` with the given thread count, tracing into
/// `<dir>/trace/trace.json` when `traced` (also proving `--trace` creates
/// missing parent directories).
fn run_all(dir: &Path, threads: u32, traced: bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.arg("all")
        .arg("--fast")
        .arg("--out")
        .arg(dir.join("results"))
        .arg("--threads")
        .arg(threads.to_string());
    if traced {
        cmd.arg("--trace").arg(dir.join("trace/trace.json"));
    }
    let out = cmd.output().expect("repro runs");
    assert!(
        out.status.success(),
        "repro all --fast failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The non-bench result files (name → bytes): the outputs that must be
/// byte-identical regardless of tracing and thread count.
fn result_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir.join("results")).expect("results dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("bench_") {
            continue; // wall-clock territory
        }
        out.insert(name, std::fs::read(entry.path()).expect("readable"));
    }
    out
}

#[test]
fn trace_artifacts_are_valid_and_deterministic() {
    // One traced run per thread count, plus an untraced run at 2 threads.
    let t1 = scratch("t1");
    let t2 = scratch("t2");
    let t8 = scratch("t8");
    let plain = scratch("plain");
    run_all(&t1, 1, true);
    run_all(&t2, 2, true);
    run_all(&t8, 8, true);
    run_all(&plain, 2, false);

    // --- Chrome trace parses and covers the pipeline -------------------
    let chrome: Value = serde_json::from_str(
        &std::fs::read_to_string(t2.join("trace/trace.json")).expect("chrome trace written"),
    )
    .expect("chrome trace is valid JSON");
    let events = field(&chrome, "traceEvents")
        .as_array()
        .expect("traceEvents is an array");
    let spans: Vec<&Value> = events
        .iter()
        .filter(|e| str_field(e, "ph") == "X")
        .collect();
    let names: Vec<&str> = spans.iter().map(|e| str_field(e, "name")).collect();
    for stage in STAGES {
        let span = format!("stage.{stage}");
        assert!(names.contains(&span.as_str()), "missing {span}");
    }
    for span in PIPELINE_SPANS {
        assert!(names.contains(&span), "missing {span}");
    }

    // --- per-worker child spans parented to their fan-out ---------------
    // Fan-out parents: `parallel.par_map` / `parallel.par_fold` /
    // `parallel.stream` (the streaming pipeline's worker pool).
    let ids: Vec<u64> = spans
        .iter()
        .filter(|e| {
            let n = str_field(e, "name");
            n.starts_with("parallel.") && n != "parallel.worker"
        })
        .filter_map(|e| field(field(e, "args"), "id").as_u64())
        .collect();
    let workers: Vec<&&Value> = spans
        .iter()
        .filter(|e| str_field(e, "name") == "parallel.worker")
        .collect();
    assert!(!workers.is_empty(), "no worker spans at 2 threads");
    for w in &workers {
        let parent = field(field(w, "args"), "parent")
            .as_u64()
            .expect("worker parent id");
        assert!(ids.contains(&parent), "worker not parented to a fan-out");
        assert!(
            field(w, "tid").as_u64().expect("tid") > 0,
            "worker span on the main tid"
        );
    }

    // --- JSONL log: every line parses, span lines mirror the trace ------
    let jsonl = std::fs::read_to_string(t2.join("trace/trace.jsonl")).expect("jsonl written");
    let mut span_lines = 0usize;
    for line in jsonl.lines() {
        let v: Value = serde_json::from_str(line).expect("jsonl line parses");
        if str_field(&v, "type") == "span" {
            span_lines += 1;
        }
    }
    assert_eq!(span_lines, spans.len(), "jsonl/chrome span count mismatch");

    // --- deterministic snapshot: byte-identical across thread counts ----
    let snap = |d: &Path| {
        std::fs::read_to_string(d.join("trace/trace.metrics.json")).expect("snapshot written")
    };
    let s1 = snap(&t1);
    assert_eq!(s1, snap(&t2), "metrics snapshot differs 1 vs 2 threads");
    assert_eq!(s1, snap(&t8), "metrics snapshot differs 1 vs 8 threads");
    let metrics: Value = serde_json::from_str(&s1).expect("snapshot is valid JSON");
    let counters = field(&metrics, "counters");
    for counter in ["funnel.emails", "traffic.emails", "world.ctypos"] {
        assert!(
            field(counters, counter).as_u64().unwrap_or(0) > 0,
            "counter {counter} missing or zero"
        );
    }
    assert!(
        field(
            field(field(&metrics, "histograms"), "world.dl1_fanout"),
            "counts"
        )
        .as_array()
        .is_some(),
        "dl1 fan-out histogram missing"
    );

    // --- tracing must not perturb results; no --trace, no artifacts -----
    assert_eq!(
        result_files(&t2),
        result_files(&plain),
        "tracing changed results/*.json"
    );
    assert_eq!(
        result_files(&t1),
        result_files(&t8),
        "results differ across thread counts"
    );
    assert!(
        !plain.join("trace").exists(),
        "untraced run wrote trace artifacts"
    );

    for d in [t1, t2, t8, plain] {
        let _ = std::fs::remove_dir_all(d);
    }
}
