//! Run statistics: pure, commutative, mergeable in any order.
//!
//! Each runner worker owns a private [`PhaseStats`] and merges it into
//! the phase total when it finishes. Merge is commutative and
//! associative — counters add and the latency histogram's bucket-wise
//! merge is order-free — so the aggregate does not depend on thread
//! scheduling, which is what keeps the report deterministic for a
//! deterministic workload.

use crate::scenario::Scenario;
use ets_obs::latency::LatencyHistogram;
use ets_smtp::fault::DeliveryOutcome;

/// Everything measured about one phase (one server model under one mix).
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    /// Per-request latency in microseconds, measured from the request's
    /// *scheduled* start (open loop) or actual start (closed loop).
    pub latency: LatencyHistogram,
    /// Observed Table 5 outcomes, indexed in [`DeliveryOutcome::ALL`] order.
    pub observed: [u64; 5],
    /// Expected outcomes from the scenario plan, same order.
    pub expected: [u64; 5],
    /// Requests whose observed outcome differed from the scenario's
    /// expectation — the harness's failure definition.
    pub mismatches: u64,
    /// Total requests executed.
    pub requests: u64,
    /// Requests issued per scenario, in [`Scenario::ALL`] order.
    pub per_scenario: [u64; 8],
}

impl PhaseStats {
    /// A fresh, empty accumulator.
    pub fn new() -> PhaseStats {
        PhaseStats::default()
    }

    /// Records one finished request.
    pub fn record(&mut self, scenario: Scenario, observed: DeliveryOutcome, latency_micros: u64) {
        self.latency.record(latency_micros);
        self.observed[outcome_index(observed)] += 1;
        self.expected[outcome_index(scenario.expected_outcome())] += 1;
        if observed != scenario.expected_outcome() {
            self.mismatches += 1;
        }
        self.requests += 1;
        if let Some(i) = Scenario::ALL.iter().position(|s| *s == scenario) {
            self.per_scenario[i] += 1;
        }
    }

    /// Folds another accumulator in. Commutative: `a.merge(b)` and
    /// `b.merge(a)` produce identical state.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.latency.merge(&other.latency);
        for i in 0..5 {
            self.observed[i] += other.observed[i];
            self.expected[i] += other.expected[i];
        }
        for i in 0..8 {
            self.per_scenario[i] += other.per_scenario[i];
        }
        self.mismatches += other.mismatches;
        self.requests += other.requests;
    }

    /// Fraction of requests whose outcome missed the scenario
    /// expectation (0 when nothing ran).
    pub fn failure_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.mismatches as f64 / self.requests as f64
        }
    }

    /// Latency quantile in milliseconds (upper bucket bound), 0 when empty.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.latency.quantile(q).unwrap_or(0) as f64 / 1_000.0
    }
}

/// Index of `o` in [`DeliveryOutcome::ALL`] (Table 5 row order).
pub fn outcome_index(o: DeliveryOutcome) -> usize {
    match o {
        DeliveryOutcome::NoError => 0,
        DeliveryOutcome::Bounce => 1,
        DeliveryOutcome::Timeout => 2,
        DeliveryOutcome::NetworkError => 3,
        DeliveryOutcome::OtherError => 4,
    }
}

/// Pass/fail thresholds for a load run, evaluated after the phase
/// completes — the scalability-suite style stop rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRules {
    /// Maximum tolerated [`PhaseStats::failure_rate`].
    pub max_failure_rate: f64,
    /// Maximum tolerated p50 latency in milliseconds (0 disables).
    pub max_p50_ms: f64,
    /// Maximum tolerated p99 latency in milliseconds (0 disables).
    pub max_p99_ms: f64,
}

impl Default for StopRules {
    fn default() -> StopRules {
        StopRules {
            max_failure_rate: 0.01,
            max_p50_ms: 0.0,
            max_p99_ms: 0.0,
        }
    }
}

impl StopRules {
    /// Every rule the phase violates, as human-readable strings; empty
    /// means the phase passes.
    pub fn violations(&self, stats: &PhaseStats) -> Vec<String> {
        let mut v = Vec::new();
        let fr = stats.failure_rate();
        if fr > self.max_failure_rate {
            v.push(format!(
                "failure rate {:.4} exceeds {:.4} ({} of {} requests missed expectation)",
                fr, self.max_failure_rate, stats.mismatches, stats.requests
            ));
        }
        let p50 = stats.quantile_ms(0.50);
        if self.max_p50_ms > 0.0 && p50 > self.max_p50_ms {
            v.push(format!("p50 {p50:.2} ms exceeds {:.2} ms", self.max_p50_ms));
        }
        let p99 = stats.quantile_ms(0.99);
        if self.max_p99_ms > 0.0 && p99 > self.max_p99_ms {
            v.push(format!("p99 {p99:.2} ms exceeds {:.2} ms", self.max_p99_ms));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(reqs: u64, seed: u64) -> PhaseStats {
        let mut s = PhaseStats::new();
        for i in 0..reqs {
            let scenario = Scenario::ALL[((i + seed) % 8) as usize];
            // Every third bounce probe "fails" by delivering instead.
            let observed = if scenario == Scenario::BounceProbe && i % 3 == 0 {
                DeliveryOutcome::NoError
            } else {
                scenario.expected_outcome()
            };
            s.record(scenario, observed, 100 + 37 * (i % 11) + seed);
        }
        s
    }

    #[test]
    fn merge_is_commutative() {
        let a = sample(200, 1);
        let b = sample(137, 9);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.observed, ba.observed);
        assert_eq!(ab.expected, ba.expected);
        assert_eq!(ab.per_scenario, ba.per_scenario);
        assert_eq!(ab.mismatches, ba.mismatches);
        assert_eq!(ab.requests, ba.requests);
        assert_eq!(ab.latency.count(), ba.latency.count());
        assert_eq!(ab.latency.sum(), ba.latency.sum());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(ab.latency.quantile(q), ba.latency.quantile(q));
        }
    }

    #[test]
    fn mismatches_count_expectation_misses() {
        let mut s = PhaseStats::new();
        s.record(Scenario::Spam, DeliveryOutcome::NoError, 50);
        s.record(Scenario::Spam, DeliveryOutcome::Timeout, 50);
        s.record(Scenario::BounceProbe, DeliveryOutcome::Bounce, 50);
        assert_eq!(s.mismatches, 1);
        assert!((s.failure_rate() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.observed[outcome_index(DeliveryOutcome::Timeout)], 1);
        assert_eq!(s.expected[outcome_index(DeliveryOutcome::Timeout)], 0);
    }

    #[test]
    fn stop_rules_flag_failure_rate_and_latency() {
        let mut s = PhaseStats::new();
        for _ in 0..9 {
            s.record(Scenario::Spam, DeliveryOutcome::NoError, 1_000);
        }
        s.record(Scenario::Spam, DeliveryOutcome::Bounce, 500_000);
        let strict = StopRules {
            max_failure_rate: 0.05,
            max_p50_ms: 0.5,
            max_p99_ms: 100.0,
        };
        let v = strict.violations(&s);
        assert_eq!(v.len(), 3, "{v:?}");
        let lax = StopRules {
            max_failure_rate: 0.2,
            max_p50_ms: 0.0,
            max_p99_ms: 0.0,
        };
        assert!(lax.violations(&s).is_empty());
    }

    #[test]
    fn empty_stats_pass_default_rules() {
        let s = PhaseStats::new();
        assert!(StopRules::default().violations(&s).is_empty());
        assert_eq!(s.failure_rate(), 0.0);
        assert_eq!(s.quantile_ms(0.99), 0.0);
    }
}
