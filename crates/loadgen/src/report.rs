//! Renders the `results/bench_serve.json` artifact.
//!
//! The report is pure serialization: every number comes from the
//! [`crate::runner::PhaseResult`]s, keys are sorted (the vendored
//! `serde_json` object is a `BTreeMap`), and outcome/scenario tables are
//! emitted in fixed Table 5 / mix order — so the same run data always
//! produces the same bytes, which is what lets the bench ratchet diff
//! reports across commits.

use crate::runner::PhaseResult;
use crate::scenario::Scenario;
use crate::stats::{PhaseStats, StopRules};
use ets_smtp::fault::DeliveryOutcome;
use serde_json::{json, Value};

/// Stable snake_case key for a Table 5 outcome.
pub fn outcome_key(o: DeliveryOutcome) -> &'static str {
    match o {
        DeliveryOutcome::NoError => "no_error",
        DeliveryOutcome::Bounce => "bounce",
        DeliveryOutcome::Timeout => "timeout",
        DeliveryOutcome::NetworkError => "network_error",
        DeliveryOutcome::OtherError => "other_error",
    }
}

fn taxonomy_value(counts: &[u64; 5]) -> Value {
    object_from_pairs(
        DeliveryOutcome::ALL
            .iter()
            .enumerate()
            .map(|(i, o)| (outcome_key(*o).to_owned(), json!(counts[i])))
            .collect(),
    )
}

fn object_from_pairs(pairs: Vec<(String, Value)>) -> Value {
    let mut v = json!({});
    if let Value::Object(map) = &mut v {
        for (k, val) in pairs {
            map.insert(k, val);
        }
    }
    v
}

/// The latency block for one phase, in milliseconds.
fn latency_value(stats: &PhaseStats) -> Value {
    json!({
        "p50_ms": stats.quantile_ms(0.50),
        "p90_ms": stats.quantile_ms(0.90),
        "p99_ms": stats.quantile_ms(0.99),
        "p999_ms": stats.quantile_ms(0.999),
        "mean_ms": stats.latency.mean() as f64 / 1_000.0,
        "max_ms": stats.latency.max() as f64 / 1_000.0,
    })
}

/// One phase as a JSON object, including its stop-rule verdict.
pub fn phase_value(r: &PhaseResult, rules: &StopRules) -> Value {
    let violations = rules.violations(&r.stats);
    let per_scenario = object_from_pairs(
        Scenario::ALL
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name().to_owned(), json!(r.stats.per_scenario[i])))
            .collect(),
    );
    json!({
        "phase": r.phase,
        "connections": r.connections,
        "requests_per_conn": r.requests_per_conn,
        "requests": r.stats.requests,
        "elapsed_secs": r.elapsed_secs,
        "target_rps": r.target_rps,
        "achieved_rps": r.achieved_rps,
        "delivered": r.delivered,
        "lost_workers": r.lost_workers,
        "latency": latency_value(&r.stats),
        "taxonomy": {
            "observed": taxonomy_value(&r.stats.observed),
            "expected": taxonomy_value(&r.stats.expected),
            "mismatches": r.stats.mismatches,
            "failure_rate": r.stats.failure_rate(),
        },
        "per_scenario": per_scenario,
        "stop_rules": {
            "pass": violations.is_empty(),
            "violations": violations,
        },
    })
}

/// Relative improvement of `candidate` over `baseline` in percent;
/// positive means the candidate is better (higher RPS / lower latency).
fn improvement_pct(baseline: f64, candidate: f64, lower_is_better: bool) -> f64 {
    if baseline <= 0.0 {
        return 0.0;
    }
    let delta = if lower_is_better {
        baseline - candidate
    } else {
        candidate - baseline
    };
    delta / baseline * 100.0
}

/// The full `bench_serve.json` document. `phases` is ordered as run;
/// when both a `thread` baseline and a `pool` candidate are present a
/// `comparison` block records the before/after deltas the README table
/// quotes.
pub fn render(mix_name: &str, seed: u64, phases: &[PhaseResult], rules: &StopRules) -> Value {
    let phase_values: Vec<Value> = phases.iter().map(|r| phase_value(r, rules)).collect();
    let thread = phases.iter().find(|r| r.phase == "thread");
    let pool = phases.iter().find(|r| r.phase == "pool");
    let comparison = match (thread, pool) {
        (Some(t), Some(p)) => json!({
            "baseline": "thread",
            "candidate": "pool",
            "rps_improvement_pct":
                improvement_pct(t.achieved_rps, p.achieved_rps, false),
            "p99_improvement_pct": improvement_pct(
                t.stats.quantile_ms(0.99),
                p.stats.quantile_ms(0.99),
                true,
            ),
            "p50_improvement_pct": improvement_pct(
                t.stats.quantile_ms(0.50),
                p.stats.quantile_ms(0.50),
                true,
            ),
        }),
        _ => Value::Null,
    };
    json!({
        "schema": "ets.bench_serve.v1",
        "mix": mix_name,
        "seed": seed,
        "stop_rules": {
            "max_failure_rate": rules.max_failure_rate,
            "max_p50_ms": rules.max_p50_ms,
            "max_p99_ms": rules.max_p99_ms,
        },
        "phases": phase_values,
        "comparison": comparison,
    })
}

/// Pretty-prints with a trailing newline — the workspace result-file
/// convention.
pub fn to_pretty_string(value: &Value) -> String {
    match serde_json::to_string_pretty(value) {
        Ok(s) => s + "\n",
        Err(_) => String::from("{}\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use ets_smtp::fault::DeliveryOutcome;

    fn fake_result(phase: &str, base_latency: u64) -> PhaseResult {
        let mut stats = PhaseStats::new();
        for i in 0..100u64 {
            let s = Scenario::ALL[(i % 8) as usize];
            stats.record(s, s.expected_outcome(), base_latency + i * 10);
        }
        PhaseResult {
            phase: phase.to_owned(),
            stats,
            delivered: 50,
            elapsed_secs: 2.0,
            achieved_rps: 50.0,
            target_rps: 0.0,
            connections: 8,
            requests_per_conn: 13,
            lost_workers: 0,
        }
    }

    #[test]
    fn report_is_deterministic_and_covers_taxonomy() {
        let phases = vec![fake_result("thread", 9_000), fake_result("pool", 1_000)];
        let rules = StopRules::default();
        let a = to_pretty_string(&render("paper", 42, &phases, &rules));
        let b = to_pretty_string(&render("paper", 42, &phases, &rules));
        assert_eq!(a, b);
        for o in DeliveryOutcome::ALL {
            assert!(a.contains(outcome_key(o)), "missing {o:?} row");
        }
        for s in Scenario::ALL {
            assert!(a.contains(s.name()), "missing scenario {s:?}");
        }
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn comparison_block_scores_the_pool_win() {
        let phases = vec![fake_result("thread", 9_000), fake_result("pool", 1_000)];
        let v = render("paper", 1, &phases, &StopRules::default());
        let cmp = v.get("comparison").unwrap();
        assert_eq!(cmp.get("baseline"), Some(&json!("thread")));
        let p99 = cmp
            .get("p99_improvement_pct")
            .and_then(Value::as_f64)
            .unwrap();
        assert!(p99 > 0.0, "pool latency should improve: {p99}");
    }

    #[test]
    fn single_phase_report_has_no_comparison() {
        let phases = [fake_result("pool", 500)];
        let v = render("delivery", 7, &phases, &StopRules::default());
        assert_eq!(v.get("comparison"), Some(&Value::Null));
    }

    #[test]
    fn stop_rule_violations_surface_in_the_phase_block() {
        let phases = [fake_result("pool", 500)];
        let strict = StopRules {
            max_failure_rate: 0.0,
            max_p50_ms: 0.001,
            max_p99_ms: 0.001,
        };
        let v = phase_value(&phases[0], &strict);
        let pass = v.get("stop_rules").and_then(|s| s.get("pass"));
        assert_eq!(pass, Some(&json!(false)));
    }
}
