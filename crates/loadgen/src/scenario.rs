//! Deterministic workload scenarios: what each connection does.
//!
//! One scenario is one TCP connection's worth of behaviour, drawn from a
//! weighted [`ScenarioMix`] by a per-connection ChaCha8 stream keyed on
//! `(run seed, connection id)`. The same seed therefore produces the
//! same scenario plan regardless of how many worker threads execute it
//! or in what order connections complete — the property the serving
//! differential test pins.
//!
//! The five delivery classes mirror the collector's traffic taxonomy
//! (spam, receiver typos, reflection typos, SMTP typos, probes) and the
//! three fault classes enact the non-delivery rows of Table 5 at the
//! transport level.

use ets_smtp::client::Email;
use ets_smtp::fault::DeliveryOutcome;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One connection's behaviour class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scenario {
    /// Bulk spam to a catch-all recipient — the dominant traffic class.
    Spam,
    /// A misdirected personal email: someone typo'd the recipient domain.
    ReceiverTypo,
    /// A reply to a typo'd sender: the reflection channel.
    ReflectionTypo,
    /// Correct addresses, wrong MX: an SMTP-level typo delivery.
    SmtpTypo,
    /// A delivery probe for a recipient outside the catch-all domains.
    BounceProbe,
    /// Protocol garbage that never forms a transaction.
    Malformed,
    /// Greet, then stall past the server's read timeout.
    Slowloris,
    /// Connect and vanish without a word.
    SilentDrop,
}

impl Scenario {
    /// Every scenario, in mix-weight order.
    pub const ALL: [Scenario; 8] = [
        Scenario::Spam,
        Scenario::ReceiverTypo,
        Scenario::ReflectionTypo,
        Scenario::SmtpTypo,
        Scenario::BounceProbe,
        Scenario::Malformed,
        Scenario::Slowloris,
        Scenario::SilentDrop,
    ];

    /// Stable snake_case name used in reports and plans.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Spam => "spam",
            Scenario::ReceiverTypo => "receiver_typo",
            Scenario::ReflectionTypo => "reflection_typo",
            Scenario::SmtpTypo => "smtp_typo",
            Scenario::BounceProbe => "bounce_probe",
            Scenario::Malformed => "malformed",
            Scenario::Slowloris => "slowloris",
            Scenario::SilentDrop => "silent_drop",
        }
    }

    /// The Table 5 outcome a correct server produces for this scenario.
    pub fn expected_outcome(self) -> DeliveryOutcome {
        match self {
            Scenario::Spam
            | Scenario::ReceiverTypo
            | Scenario::ReflectionTypo
            | Scenario::SmtpTypo => DeliveryOutcome::NoError,
            Scenario::BounceProbe => DeliveryOutcome::Bounce,
            Scenario::Malformed => DeliveryOutcome::OtherError,
            Scenario::Slowloris => DeliveryOutcome::Timeout,
            Scenario::SilentDrop => DeliveryOutcome::NetworkError,
        }
    }

    /// Whether the scenario speaks a complete, well-formed transaction
    /// (and therefore runs through the full [`ets_smtp::net_client`]
    /// delivery path rather than a raw scripted exchange).
    pub fn is_delivery(self) -> bool {
        matches!(
            self,
            Scenario::Spam
                | Scenario::ReceiverTypo
                | Scenario::ReflectionTypo
                | Scenario::SmtpTypo
                | Scenario::BounceProbe
        )
    }
}

/// A probability mix over the eight scenarios, in [`Scenario::ALL`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMix {
    /// Non-negative weights summing to ~1.
    pub weights: [f64; 8],
    /// Stable name recorded in reports and ratchet keys.
    pub name: &'static str,
}

impl ScenarioMix {
    /// The serving mix modelled on the collector's observed traffic:
    /// delivery-dominated with a sustained protocol-fault tail, so every
    /// Table 5 row stays populated.
    pub fn paper() -> ScenarioMix {
        ScenarioMix {
            weights: [0.35, 0.20, 0.10, 0.05, 0.10, 0.08, 0.06, 0.06],
            name: "paper",
        }
    }

    /// Well-formed transactions only — the pure throughput mix.
    pub fn delivery_only() -> ScenarioMix {
        ScenarioMix {
            weights: [0.50, 0.25, 0.15, 0.10, 0.0, 0.0, 0.0, 0.0],
            name: "delivery",
        }
    }

    /// Protocol faults only — the abuse-resilience mix.
    pub fn faults_only() -> ScenarioMix {
        ScenarioMix {
            weights: [0.0, 0.0, 0.0, 0.0, 0.0, 0.4, 0.3, 0.3],
            name: "faults",
        }
    }

    /// Resolves a CLI mix name.
    pub fn by_name(name: &str) -> Option<ScenarioMix> {
        match name {
            "paper" => Some(ScenarioMix::paper()),
            "delivery" => Some(ScenarioMix::delivery_only()),
            "faults" => Some(ScenarioMix::faults_only()),
            _ => None,
        }
    }

    /// Draws one scenario from the mix.
    pub fn draw(&self, rng: &mut ChaCha8Rng) -> Scenario {
        let total: f64 = self.weights.iter().sum();
        let mut point = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        for (scenario, &w) in Scenario::ALL.iter().zip(&self.weights) {
            if point < w {
                return *scenario;
            }
            point -= w;
        }
        // Float summation slack lands on the last weighted scenario.
        *Scenario::ALL
            .iter()
            .zip(&self.weights)
            .filter(|(_, &w)| w > 0.0)
            .map(|(s, _)| s)
            .next_back()
            .unwrap_or(&Scenario::Spam)
    }
}

/// The per-connection deterministic stream: scenario draws and message
/// content for connection `conn` of the run keyed by `seed` depend only
/// on those two values.
pub fn conn_rng(seed: u64, conn: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    rng.set_stream(conn);
    rng
}

/// The full scenario plan for a run: `plan[conn][req]`. Pure — this is
/// what the differential test renders and compares across thread counts.
pub fn plan(
    mix: &ScenarioMix,
    seed: u64,
    connections: usize,
    requests: usize,
) -> Vec<Vec<Scenario>> {
    (0..connections as u64)
        .map(|conn| {
            let mut rng = conn_rng(seed, conn);
            (0..requests).map(|_| mix.draw(&mut rng)).collect()
        })
        .collect()
}

/// Renders a plan as stable text (one connection per line) for
/// byte-identity checks.
pub fn render_plan(plan: &[Vec<Scenario>]) -> String {
    let mut out = String::new();
    for (conn, reqs) in plan.iter().enumerate() {
        out.push_str(&format!("conn {conn:04}:"));
        for s in reqs {
            out.push(' ');
            out.push_str(s.name());
        }
        out.push('\n');
    }
    out
}

/// Builds the email for a delivery-class request, or `None` for fault
/// scenarios (which never form a transaction). `local_domain` is the
/// server's catch-all domain; `BounceProbe` deliberately addresses a
/// foreign domain.
pub fn build_email(scenario: Scenario, conn: u64, req: u64, local_domain: &str) -> Option<Email> {
    let (from, to, subject, body) = match scenario {
        Scenario::Spam => (
            format!("promo{conn}@blast.example"),
            format!("user{req}@{local_domain}"),
            format!("Exclusive offer #{conn}-{req}"),
            "Act now! This unbeatable deal expires at midnight.".to_owned(),
        ),
        Scenario::ReceiverTypo => (
            format!("friend{conn}@gmail.com"),
            format!("alice{req}@{local_domain}"),
            "Re: dinner on Friday".to_owned(),
            format!("Hey, are we still on for Friday? -- msg {conn}/{req}"),
        ),
        Scenario::ReflectionTypo => (
            format!("support{conn}@bank.example"),
            format!("customer{req}@{local_domain}"),
            "Your recent enquiry".to_owned(),
            format!("Replying to your message (ticket {conn}{req})."),
        ),
        Scenario::SmtpTypo => (
            format!("ops{conn}@corp.example"),
            format!("team{req}@{local_domain}"),
            "Weekly report".to_owned(),
            format!("Attached as usual. (routed via typo MX, {conn}/{req})"),
        ),
        Scenario::BounceProbe => (
            format!("probe{conn}@research.example"),
            format!("nobody{req}@unrelated.example"),
            "Delivery probe".to_owned(),
            format!("connectivity probe {conn}/{req}"),
        ),
        Scenario::Malformed | Scenario::Slowloris | Scenario::SilentDrop => return None,
    };
    let data = format!("Subject: {subject}\r\nFrom: <{from}>\r\nTo: <{to}>\r\n\r\n{body}");
    Some(Email::new(
        Some(from.parse().ok()?),
        vec![to.parse().ok()?],
        data,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn plan_is_deterministic_and_order_free() {
        let mix = ScenarioMix::paper();
        let a = plan(&mix, 42, 16, 8);
        let b = plan(&mix, 42, 16, 8);
        assert_eq!(a, b);
        // A connection's stream does not depend on how many siblings run.
        let wide = plan(&mix, 42, 64, 8);
        assert_eq!(&wide[..16], &a[..]);
    }

    #[test]
    fn paper_mix_covers_every_scenario() {
        let mix = ScenarioMix::paper();
        let drawn: HashSet<Scenario> = plan(&mix, 7, 64, 16).into_iter().flatten().collect();
        assert_eq!(drawn.len(), Scenario::ALL.len(), "missing: {drawn:?}");
    }

    #[test]
    fn expected_outcomes_cover_table5() {
        let outcomes: HashSet<DeliveryOutcome> =
            Scenario::ALL.iter().map(|s| s.expected_outcome()).collect();
        assert_eq!(outcomes.len(), DeliveryOutcome::ALL.len());
    }

    #[test]
    fn delivery_emails_parse_and_target_the_right_domain() {
        for s in Scenario::ALL.iter().filter(|s| s.is_delivery()) {
            let email = build_email(*s, 3, 9, "gmial.com").unwrap();
            assert_eq!(email.rcpt_to.len(), 1);
            let domain_ok = email.rcpt_to[0].domain() == "gmial.com";
            assert_eq!(domain_ok, *s != Scenario::BounceProbe, "{s:?}");
        }
    }

    #[test]
    fn fault_scenarios_build_no_email() {
        for s in Scenario::ALL.iter().filter(|s| !s.is_delivery()) {
            assert!(build_email(*s, 0, 0, "x.com").is_none());
        }
    }

    #[test]
    fn faults_only_mix_never_draws_deliveries() {
        let mix = ScenarioMix::faults_only();
        assert!(plan(&mix, 1, 32, 8)
            .into_iter()
            .flatten()
            .all(|s| !s.is_delivery()));
    }

    #[test]
    fn render_plan_is_stable() {
        let mix = ScenarioMix::delivery_only();
        let p = plan(&mix, 5, 2, 3);
        let text = render_plan(&p);
        assert_eq!(text, render_plan(&plan(&mix, 5, 2, 3)));
        assert!(text.starts_with("conn 0000:"));
        assert_eq!(text.lines().count(), 2);
    }
}
