//! `ets-loadgen` — drive a workload at the SMTP serving path and write
//! `results/bench_serve.json`.
//!
//! ```text
//! ets-loadgen [--server-mode both|pool|thread] [--mix paper|delivery|faults]
//!             [--connections N] [--requests N] [--rps X] [--seed N]
//!             [--workers N] [--conn-queue N] [--owner-queue N]
//!             [--read-timeout-ms N] [--client-timeout-ms N]
//!             [--max-failure-rate F] [--max-p50-ms F] [--max-p99-ms F]
//!             [--out PATH] [--check]
//! ```
//!
//! * `--server-mode` — which in-process server phases to run: the worker
//!   `pool`, the `thread`-per-connection baseline, or `both` (baseline
//!   first, then pool, so the report carries a before/after comparison).
//! * `--mix` — scenario mix: `paper` (delivery-dominated with a protocol
//!   fault tail covering every Table 5 row), `delivery`, or `faults`.
//! * `--connections` / `--requests` — concurrency slots × sessions each.
//! * `--rps` — open-loop target rate across all slots; `0` = closed loop.
//! * `--max-*` — stop rules; with `--check` any violation fails the run.

#![forbid(unsafe_code)]

use ets_loadgen::report;
use ets_loadgen::runner::{run_phase, PhaseResult, RunConfig, ServerSpec};
use ets_loadgen::scenario::ScenarioMix;
use ets_loadgen::stats::StopRules;
use ets_smtp::server::ConcurrencyModel;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut server_mode = "both".to_owned();
    let mut mix = ScenarioMix::paper();
    let mut connections: usize = 64;
    let mut requests: usize = 16;
    let mut rps: f64 = 0.0;
    let mut seed: u64 = 42;
    let mut workers: Option<usize> = None;
    let mut conn_queue: Option<usize> = None;
    let mut owner_queue: usize = 1024;
    let mut read_timeout_ms: u64 = 150;
    let mut client_timeout_ms: u64 = 5_000;
    let mut rules = StopRules::default();
    let mut out = "results/bench_serve.json".to_owned();
    let mut check = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--server-mode" => match it.next().map(String::as_str) {
                Some(m @ ("both" | "pool" | "thread")) => server_mode = m.to_owned(),
                _ => return usage("--server-mode needs both|pool|thread"),
            },
            "--mix" => match it.next().and_then(|v| ScenarioMix::by_name(v)) {
                Some(m) => mix = m,
                None => return usage("--mix needs paper|delivery|faults"),
            },
            "--connections" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => connections = n,
                _ => return usage("--connections needs a positive integer"),
            },
            "--requests" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n > 0 => requests = n,
                _ => return usage("--requests needs a positive integer"),
            },
            "--rps" => match it.next().and_then(|s| s.parse().ok()) {
                Some(x) => rps = x,
                None => return usage("--rps needs a number"),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => return usage("--seed needs an integer"),
            },
            "--workers" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => workers = Some(n),
                None => return usage("--workers needs an integer"),
            },
            "--conn-queue" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => conn_queue = Some(n),
                None => return usage("--conn-queue needs an integer"),
            },
            "--owner-queue" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => owner_queue = n,
                None => return usage("--owner-queue needs an integer"),
            },
            "--read-timeout-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => read_timeout_ms = n,
                None => return usage("--read-timeout-ms needs an integer"),
            },
            "--client-timeout-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) => client_timeout_ms = n,
                None => return usage("--client-timeout-ms needs an integer"),
            },
            "--max-failure-rate" => match it.next().and_then(|s| s.parse().ok()) {
                Some(f) => rules.max_failure_rate = f,
                None => return usage("--max-failure-rate needs a number"),
            },
            "--max-p50-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(f) => rules.max_p50_ms = f,
                None => return usage("--max-p50-ms needs a number"),
            },
            "--max-p99-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(f) => rules.max_p99_ms = f,
                None => return usage("--max-p99-ms needs a number"),
            },
            "--out" => match it.next() {
                Some(p) => out = p.clone(),
                None => return usage("--out needs a path"),
            },
            "--check" => check = true,
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let read_timeout = Duration::from_millis(read_timeout_ms);
    let mut pool_spec = ServerSpec::pool();
    pool_spec.read_timeout = read_timeout;
    pool_spec.owner_queue = owner_queue;
    if let (Some(w), ConcurrencyModel::WorkerPool { queue, .. }) = (workers, pool_spec.model) {
        pool_spec.model = ConcurrencyModel::WorkerPool {
            workers: w,
            queue: conn_queue.unwrap_or(queue),
        };
    } else if let (None, Some(q), ConcurrencyModel::WorkerPool { workers: w, .. }) =
        (workers, conn_queue, pool_spec.model)
    {
        pool_spec.model = ConcurrencyModel::WorkerPool {
            workers: w,
            queue: q,
        };
    }
    let mut thread_spec = ServerSpec::thread_per_connection();
    thread_spec.read_timeout = read_timeout;
    thread_spec.owner_queue = owner_queue;

    let cfg = RunConfig {
        connections,
        requests_per_conn: requests,
        target_rps: rps,
        mix: mix.clone(),
        seed,
        client_timeout: Duration::from_millis(client_timeout_ms),
        stall: read_timeout + Duration::from_millis(80),
        local_domain: pool_spec.domain.clone(),
    };

    let phase_plan: &[(&str, &ServerSpec)] = match server_mode.as_str() {
        "pool" => &[("pool", &pool_spec)],
        "thread" => &[("thread", &thread_spec)],
        _ => &[("thread", &thread_spec), ("pool", &pool_spec)],
    };

    let mut results: Vec<PhaseResult> = Vec::new();
    for (name, spec) in phase_plan {
        eprintln!(
            "phase {name}: {connections} connections x {requests} requests, mix {} (rps target {rps})",
            mix.name
        );
        match run_phase(name, &cfg, spec) {
            Ok(r) => {
                eprintln!(
                    "  {:.0} rps achieved, p50 {:.2} ms, p99 {:.2} ms, {} mismatches, {} delivered",
                    r.achieved_rps,
                    r.stats.quantile_ms(0.50),
                    r.stats.quantile_ms(0.99),
                    r.stats.mismatches,
                    r.delivered,
                );
                results.push(r);
            }
            Err(e) => {
                eprintln!("phase {name} failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let doc = report::render(mix.name, seed, &results, &rules);
    let text = report::to_pretty_string(&doc);
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");

    let mut failed = false;
    for r in &results {
        for v in rules.violations(&r.stats) {
            eprintln!("stop rule [{}]: {v}", r.phase);
            failed = true;
        }
        if r.lost_workers > 0 {
            eprintln!(
                "stop rule [{}]: {} worker threads died",
                r.phase, r.lost_workers
            );
            failed = true;
        }
    }
    if check && failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: ets-loadgen [--server-mode both|pool|thread] [--mix paper|delivery|faults] \
         [--connections N] [--requests N] [--rps X] [--seed N] [--workers N] [--conn-queue N] \
         [--owner-queue N] [--read-timeout-ms N] [--client-timeout-ms N] [--max-failure-rate F] \
         [--max-p50-ms F] [--max-p99-ms F] [--out PATH] [--check]"
    );
    ExitCode::FAILURE
}
