//! The wall-clock half of the harness: sockets, pacing, worker threads.
//!
//! This is the only module in `ets-loadgen` permitted to read the clock
//! (`ets-lint` pins the allowlist path-exactly). Everything it measures
//! flows into the pure [`crate::stats`] accumulators so the analysis and
//! report layers stay deterministic.
//!
//! ## Open vs closed loop
//!
//! With `target_rps > 0` the run is *open-loop*: request `k` of
//! connection slot `c` has an absolute scheduled start of
//! `t0 + (k·connections + c) / rps`, and latency is measured from that
//! scheduled start even when the harness falls behind — so server-side
//! queueing delay is charged to the server rather than silently absorbed
//! by the load generator (the coordinated-omission correction). With
//! `target_rps == 0` the run is *closed-loop*: each slot issues its next
//! request the moment the previous one completes, and latency is
//! measured from the actual start.

use crate::scenario::{build_email, conn_rng, Scenario, ScenarioMix};
use crate::stats::{outcome_index, PhaseStats};
use ets_obs::latency;
use ets_obs::metrics;
use ets_smtp::client::ClientOutcome;
use ets_smtp::fault::DeliveryOutcome;
use ets_smtp::net_client::{send_email, RawSession, SendError};
use ets_smtp::server::{ConcurrencyModel, ServerOptions, SmtpServer};
use ets_smtp::session::ServerPolicy;
use ets_smtp::telemetry::TelemetryConfig;
use std::io::ErrorKind;
use std::time::{Duration, Instant};

/// What the load generator does: the workload half of a phase.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Concurrent connection slots (each runs its requests in series).
    pub connections: usize,
    /// Requests (= SMTP sessions) per slot.
    pub requests_per_conn: usize,
    /// Open-loop target rate across all slots; `0.0` selects closed loop.
    pub target_rps: f64,
    /// Scenario mix to draw from.
    pub mix: ScenarioMix,
    /// Run seed: fixes every scenario draw and message body.
    pub seed: u64,
    /// Client-side socket timeout.
    pub client_timeout: Duration,
    /// How long a slowloris connection stalls (must exceed the server's
    /// read timeout for the scenario to land in the Timeout row).
    pub stall: Duration,
    /// The server's catch-all domain, used to address deliveries.
    pub local_domain: String,
}

impl RunConfig {
    /// A small smoke-test configuration against a server whose read
    /// timeout is `server_read_timeout`.
    pub fn smoke(server_read_timeout: Duration) -> RunConfig {
        RunConfig {
            connections: 4,
            requests_per_conn: 8,
            target_rps: 0.0,
            mix: ScenarioMix::paper(),
            seed: 42,
            client_timeout: Duration::from_secs(5),
            stall: server_read_timeout + Duration::from_millis(80),
            local_domain: "gmial.com".to_owned(),
        }
    }
}

/// How the in-process server under test is built.
#[derive(Debug, Clone)]
pub struct ServerSpec {
    /// Concurrency model under test.
    pub model: ConcurrencyModel,
    /// Per-connection read timeout (keep short so slowloris rows finish).
    pub read_timeout: Duration,
    /// Bound of the owner delivery channel.
    pub owner_queue: usize,
    /// Server hostname for the banner.
    pub hostname: String,
    /// Catch-all domain.
    pub domain: String,
    /// Session-trace sampling rate for the telemetry plane.
    pub sample_every: u64,
}

impl ServerSpec {
    /// The default system under test: worker pool, short read timeout.
    pub fn pool() -> ServerSpec {
        ServerSpec {
            model: ConcurrencyModel::default_pool(),
            read_timeout: Duration::from_millis(150),
            owner_queue: 1024,
            hostname: "mx.gmial.com".to_owned(),
            domain: "gmial.com".to_owned(),
            sample_every: 64,
        }
    }

    /// The measurable baseline: thread-per-connection, same policy.
    pub fn thread_per_connection() -> ServerSpec {
        ServerSpec {
            model: ConcurrencyModel::ThreadPerConnection,
            ..ServerSpec::pool()
        }
    }
}

/// Everything measured about one executed phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Phase label (`pool`, `thread`, …) used in reports and metrics.
    pub phase: String,
    /// The merged accumulators.
    pub stats: PhaseStats,
    /// Emails the server actually handed to its owner channel.
    pub delivered: u64,
    /// Wall-clock duration of the phase.
    pub elapsed_secs: f64,
    /// `requests / elapsed` — the rate actually sustained.
    pub achieved_rps: f64,
    /// The open-loop target (0 for closed loop).
    pub target_rps: f64,
    /// Connection slots used.
    pub connections: usize,
    /// Requests per slot.
    pub requests_per_conn: usize,
    /// Worker threads that died instead of reporting (always 0 in a
    /// healthy run).
    pub lost_workers: u64,
}

/// Binds an in-process server per `spec`, drives the full workload at
/// it, keeps the owner channel drained throughout, and shuts the server
/// down. The phase's latency distribution is also published to the
/// `ets-obs` latency plane as `loadgen.<phase>.request_us`.
pub fn run_phase(phase: &str, cfg: &RunConfig, spec: &ServerSpec) -> std::io::Result<PhaseResult> {
    let options = ServerOptions {
        read_timeout: spec.read_timeout,
        telemetry: TelemetryConfig {
            sample_every: spec.sample_every,
            ..TelemetryConfig::default()
        },
        model: spec.model,
        owner_queue: spec.owner_queue,
    };
    let policy = ServerPolicy::catch_all(&spec.hostname, std::slice::from_ref(&spec.domain));
    let server = SmtpServer::bind_with("127.0.0.1:0", policy, options)?;
    let addr = server.addr().to_string();

    let recorder = latency::recorder(&format!("loadgen.{phase}.request_us"));
    let t0 = Instant::now();
    let mut handles = Vec::with_capacity(cfg.connections);
    for c in 0..cfg.connections {
        let addr = addr.clone();
        let cfg = cfg.clone();
        let recorder = recorder.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = conn_rng(cfg.seed, c as u64);
            let mut stats = PhaseStats::new();
            for k in 0..cfg.requests_per_conn {
                let scenario = cfg.mix.draw(&mut rng);
                let lat_start = if cfg.target_rps > 0.0 {
                    let offset =
                        Duration::from_secs_f64((k * cfg.connections + c) as f64 / cfg.target_rps);
                    let sched = t0 + offset;
                    let now = Instant::now();
                    if sched > now {
                        std::thread::sleep(sched - now);
                    }
                    sched
                } else {
                    Instant::now()
                };
                let observed = execute(&addr, scenario, c as u64, k as u64, &cfg);
                let micros = Instant::now()
                    .saturating_duration_since(lat_start)
                    .as_micros() as u64;
                recorder.record(micros);
                stats.record(scenario, observed, micros);
            }
            stats
        }));
    }

    // Keep the bounded owner channel drained while the storm runs, so
    // handlers never block on a full delivery queue.
    let mut delivered = 0u64;
    while handles.iter().any(|h| !h.is_finished()) {
        delivered += server.drain().len() as u64;
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut stats = PhaseStats::new();
    let mut lost_workers = 0u64;
    for h in handles {
        match h.join() {
            Ok(s) => stats.merge(&s),
            Err(_) => lost_workers += 1,
        }
    }
    let elapsed_secs = t0.elapsed().as_secs_f64();
    delivered += server.shutdown().len() as u64;

    for (i, o) in DeliveryOutcome::ALL.iter().enumerate() {
        metrics::counter_add(&format!("loadgen.{phase}.outcome.{o:?}"), stats.observed[i]);
    }
    metrics::counter_add(&format!("loadgen.{phase}.delivered"), delivered);

    let achieved_rps = if elapsed_secs > 0.0 {
        stats.requests as f64 / elapsed_secs
    } else {
        0.0
    };
    Ok(PhaseResult {
        phase: phase.to_owned(),
        stats,
        delivered,
        elapsed_secs,
        achieved_rps,
        target_rps: cfg.target_rps,
        connections: cfg.connections,
        requests_per_conn: cfg.requests_per_conn,
        lost_workers,
    })
}

/// Executes one request (one full SMTP session) and classifies what the
/// client observed into the Table 5 taxonomy.
fn execute(
    addr: &str,
    scenario: Scenario,
    conn: u64,
    req: u64,
    cfg: &RunConfig,
) -> DeliveryOutcome {
    match scenario {
        s if s.is_delivery() => match build_email(s, conn, req, &cfg.local_domain) {
            Some(email) => classify_send(send_email(
                addr,
                email,
                "loadgen.example",
                false,
                cfg.client_timeout,
            )),
            None => DeliveryOutcome::OtherError,
        },
        Scenario::Malformed => malformed(addr, cfg),
        Scenario::Slowloris => slowloris(addr, cfg),
        Scenario::SilentDrop => silent_drop(addr, cfg),
        // `is_delivery` covered every other variant above.
        _ => DeliveryOutcome::OtherError,
    }
}

/// Table 5 classification of a full delivery attempt.
fn classify_send(result: Result<ClientOutcome, SendError>) -> DeliveryOutcome {
    match result {
        Ok(ClientOutcome::Accepted) => DeliveryOutcome::NoError,
        Ok(ClientOutcome::Rejected { .. }) => DeliveryOutcome::Bounce,
        Ok(ClientOutcome::TransientFailure { .. }) => DeliveryOutcome::OtherError,
        Err(e) => classify_transport(&e),
    }
}

/// Table 5 classification of a transport-level failure.
fn classify_transport(e: &SendError) -> DeliveryOutcome {
    match e {
        SendError::Io(io) => match io.kind() {
            ErrorKind::TimedOut | ErrorKind::WouldBlock => DeliveryOutcome::Timeout,
            _ => DeliveryOutcome::NetworkError,
        },
        SendError::ProtocolGarbage(_) | SendError::ConnectionClosed => DeliveryOutcome::OtherError,
    }
}

/// Greets, then speaks garbage that never forms a transaction. A correct
/// server answers each junk line with a 5xx and keeps the session —
/// classified `OtherError`, mirroring the drive-mode taxonomy.
fn malformed(addr: &str, cfg: &RunConfig) -> DeliveryOutcome {
    let mut s = match RawSession::connect(addr, cfg.client_timeout) {
        Ok(s) => s,
        Err(e) => return classify_transport(&e),
    };
    if let Err(e) = s.read_code() {
        return classify_transport(&e);
    }
    for junk in [b"XYZZY plugh\r\n".as_slice(), b"MAIL WITHOUT COLON\r\n"] {
        if let Err(e) = s.write_raw(junk) {
            return classify_transport(&e);
        }
        match s.read_code() {
            Ok(_) => {}
            Err(e) => return classify_transport(&e),
        }
    }
    DeliveryOutcome::OtherError
}

/// Greets, then stalls past the server's read timeout. A correct server
/// answers with a 421 courtesy reply (or just closes) — both classify
/// as `Timeout`.
fn slowloris(addr: &str, cfg: &RunConfig) -> DeliveryOutcome {
    let mut s = match RawSession::connect(addr, cfg.client_timeout) {
        Ok(s) => s,
        Err(e) => return classify_transport(&e),
    };
    if let Err(e) = s.read_code() {
        return classify_transport(&e);
    }
    std::thread::sleep(cfg.stall);
    match s.read_code() {
        Ok(421) => DeliveryOutcome::Timeout,
        Ok(_) => DeliveryOutcome::OtherError,
        Err(SendError::ConnectionClosed) => DeliveryOutcome::Timeout,
        Err(SendError::Io(io)) => match io.kind() {
            ErrorKind::TimedOut | ErrorKind::WouldBlock => DeliveryOutcome::Timeout,
            _ => DeliveryOutcome::NetworkError,
        },
        Err(_) => DeliveryOutcome::OtherError,
    }
}

/// Connects and vanishes without a word — the client *is* the network
/// error, so the observed outcome is `NetworkError` by construction
/// once the connection opened.
fn silent_drop(addr: &str, cfg: &RunConfig) -> DeliveryOutcome {
    match RawSession::connect(addr, cfg.client_timeout) {
        Ok(s) => {
            drop(s);
            DeliveryOutcome::NetworkError
        }
        Err(e) => classify_transport(&e),
    }
}

/// Sanity accessor used by reports: the observed count for one outcome.
pub fn observed(stats: &PhaseStats, o: DeliveryOutcome) -> u64 {
    stats.observed[outcome_index(o)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> (RunConfig, ServerSpec) {
        let mut spec = ServerSpec::pool();
        spec.read_timeout = Duration::from_millis(60);
        spec.model = ConcurrencyModel::WorkerPool {
            workers: 8,
            queue: 64,
        };
        let mut cfg = RunConfig::smoke(spec.read_timeout);
        cfg.connections = 6;
        cfg.requests_per_conn = 10;
        (cfg, spec)
    }

    #[test]
    fn smoke_run_covers_all_outcomes_and_loses_nothing() {
        let (cfg, spec) = fast_cfg();
        let r = run_phase("test_pool", &cfg, &spec).unwrap();
        assert_eq!(r.stats.requests, 60);
        assert_eq!(r.lost_workers, 0);
        assert_eq!(r.stats.mismatches, 0, "observed: {:?}", r.stats.observed);
        // The paper mix draws every scenario class across 60 requests
        // with this seed; all five Table 5 rows must be populated.
        for (i, o) in DeliveryOutcome::ALL.iter().enumerate() {
            assert!(r.stats.observed[i] > 0, "empty taxonomy row {o}");
        }
        // Every accepted delivery reached the owner channel.
        assert_eq!(r.delivered, observed(&r.stats, DeliveryOutcome::NoError));
        assert!(r.achieved_rps > 0.0);
        assert_eq!(r.stats.latency.count(), 60);
    }

    #[test]
    fn thread_model_smoke_run_matches_plan() {
        let mut spec = ServerSpec::thread_per_connection();
        spec.read_timeout = Duration::from_millis(60);
        let mut cfg = RunConfig::smoke(spec.read_timeout);
        cfg.connections = 4;
        cfg.requests_per_conn = 6;
        cfg.mix = ScenarioMix::delivery_only();
        let r = run_phase("test_thread", &cfg, &spec).unwrap();
        assert_eq!(r.stats.requests, 24);
        assert_eq!(r.stats.mismatches, 0);
        // Delivery-only mix: every request forms a transaction and the
        // expected split is exactly the planned split.
        assert_eq!(r.stats.observed, r.stats.expected);
    }

    #[test]
    fn open_loop_pacing_spreads_the_run() {
        let (mut cfg, spec) = fast_cfg();
        cfg.mix = ScenarioMix::delivery_only();
        cfg.connections = 2;
        cfg.requests_per_conn = 5;
        cfg.target_rps = 50.0; // 10 requests at 50/s ≈ 0.2 s floor
        let r = run_phase("test_paced", &cfg, &spec).unwrap();
        assert!(
            r.elapsed_secs >= 0.15,
            "open loop finished too fast: {}",
            r.elapsed_secs
        );
        assert!(r.achieved_rps <= 75.0, "rps {}", r.achieved_rps);
    }
}
