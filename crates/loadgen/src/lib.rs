//! `ets-loadgen` — the closed/open-loop serving workload harness.
//!
//! The paper's honey infrastructure served live SMTP traffic for months;
//! this crate turns that serving path into a benchmarkable system. It
//! drives a (usually in-process) [`ets_smtp::server::SmtpServer`] with a
//! deterministic mix of the five traffic classes the collector observed
//! — spam, receiver typos, reflection typos, SMTP typos, and probe
//! bounces — plus the protocol-fault behaviours of Table 5 (garbage,
//! slowloris stalls, silent drops), measures per-request latency against
//! the *scheduled* start time (so queueing delay is charged to the
//! server, not silently absorbed — the coordinated-omission correction),
//! and emits a `results/bench_serve.json` artifact with achieved RPS,
//! latency quantiles, and the observed-vs-expected outcome taxonomy.
//!
//! Layering mirrors the rest of the workspace:
//!
//! * [`scenario`] — pure, deterministic: what each connection does.
//! * [`stats`] — pure, commutative: what happened, mergeable across
//!   workers in any order.
//! * [`runner`] — the only wall-clock module: sockets, pacing, threads.
//! * [`report`] — renders the JSON artifact with sorted keys.

#![forbid(unsafe_code)]

pub mod report;
pub mod runner;
pub mod scenario;
pub mod stats;
