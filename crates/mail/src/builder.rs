//! A fluent builder for [`Message`].

use crate::address::EmailAddress;
use crate::header::names;
use crate::message::{Attachment, Message};

/// Builds messages for the traffic generator, honey campaigns, and tests.
///
/// ```
/// use ets_mail::MessageBuilder;
///
/// let msg = MessageBuilder::new()
///     .from("alice@gmail.com").unwrap()
///     .to("bob@gmial.com").unwrap()
///     .subject("hotel booking")
///     .body("Book us 3 rooms.")
///     .build();
/// assert_eq!(msg.to_addr().unwrap().domain(), "gmial.com");
/// ```
#[derive(Debug, Clone, Default)]
pub struct MessageBuilder {
    msg: Message,
}

impl MessageBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `From:`. Fails on an unparseable address.
    pub fn from(mut self, addr: &str) -> Result<Self, crate::address::AddressParseError> {
        let a: EmailAddress = addr.parse()?;
        self.msg.headers.set(names::FROM, a.to_string());
        Ok(self)
    }

    /// Sets `To:`. Fails on an unparseable address.
    pub fn to(mut self, addr: &str) -> Result<Self, crate::address::AddressParseError> {
        let a: EmailAddress = addr.parse()?;
        self.msg.headers.set(names::TO, a.to_string());
        Ok(self)
    }

    /// Sets `Sender:` without validation (spam forges this freely).
    pub fn raw_sender(mut self, value: &str) -> Self {
        self.msg.headers.set(names::SENDER, value);
        self
    }

    /// Sets `From:` without validation (spam forges this freely).
    pub fn raw_from(mut self, value: &str) -> Self {
        self.msg.headers.set(names::FROM, value);
        self
    }

    /// Sets `To:` without validation.
    pub fn raw_to(mut self, value: &str) -> Self {
        self.msg.headers.set(names::TO, value);
        self
    }

    /// Sets `Reply-To:`.
    pub fn reply_to(mut self, value: &str) -> Self {
        self.msg.headers.set(names::REPLY_TO, value);
        self
    }

    /// Sets `Return-Path:`.
    pub fn return_path(mut self, value: &str) -> Self {
        self.msg.headers.set(names::RETURN_PATH, value);
        self
    }

    /// Sets `Subject:`.
    pub fn subject(mut self, value: &str) -> Self {
        self.msg.headers.set(names::SUBJECT, value);
        self
    }

    /// Sets `Date:`.
    pub fn date(mut self, value: &str) -> Self {
        self.msg.headers.set(names::DATE, value);
        self
    }

    /// Sets `Message-ID:`.
    pub fn message_id(mut self, value: &str) -> Self {
        self.msg.headers.set(names::MESSAGE_ID, value);
        self
    }

    /// Adds a `List-Unsubscribe:` header (Layer 4 keys on this).
    pub fn list_unsubscribe(mut self, value: &str) -> Self {
        self.msg.headers.set(names::LIST_UNSUBSCRIBE, value);
        self
    }

    /// Appends an arbitrary header.
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.msg.headers.append(name, value);
        self
    }

    /// Sets the body text.
    pub fn body(mut self, text: &str) -> Self {
        self.msg.body = text.to_owned();
        self
    }

    /// Adds an attachment.
    pub fn attach(mut self, filename: &str, content_type: &str, data: Vec<u8>) -> Self {
        self.msg
            .attachments
            .push(Attachment::new(filename, content_type, data));
        self
    }

    /// Finishes, returning the message.
    pub fn build(self) -> Message {
        self.msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_complete_message() {
        let m = MessageBuilder::new()
            .from("alice@gmail.com")
            .unwrap()
            .to("bob@gmial.com")
            .unwrap()
            .subject("s")
            .body("b")
            .reply_to("other@elsewhere.com")
            .list_unsubscribe("<mailto:unsub@list.com>")
            .attach("f.pdf", "application/pdf", vec![1, 2, 3])
            .build();
        assert_eq!(m.from_addr().unwrap().local(), "alice");
        assert_eq!(m.reply_to_addr().unwrap().domain(), "elsewhere.com");
        assert!(m.headers.contains("List-Unsubscribe"));
        assert_eq!(m.attachments.len(), 1);
    }

    #[test]
    fn from_rejects_invalid() {
        assert!(MessageBuilder::new().from("not-an-address").is_err());
    }

    #[test]
    fn raw_setters_bypass_validation() {
        let m = MessageBuilder::new().raw_from("<<<forged>>>").build();
        assert_eq!(m.headers.get("From"), Some("<<<forged>>>"));
        assert!(m.from_addr().is_none());
    }

    #[test]
    fn set_semantics_replace() {
        let m = MessageBuilder::new()
            .subject("first")
            .subject("second")
            .build();
        assert_eq!(m.subject(), "second");
        assert_eq!(m.headers.get_all("Subject").count(), 1);
    }
}
