//! Email addresses (`local@domain`).
//!
//! Receiver typos live in the *domain* part (`alice@gmial.com`); the study
//! explicitly leaves local-part typos to future work (§8), but the funnel
//! still needs to parse, compare, and classify full addresses — including
//! the system-user locals (`postmaster`, `root`, ...) filtered by Layer 4.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Errors from parsing an [`EmailAddress`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddressParseError {
    /// No `@` separator was found.
    MissingAt,
    /// More than one unquoted `@`.
    MultipleAt,
    /// The local part was empty or contained forbidden characters.
    BadLocal(String),
    /// The domain part failed domain validation.
    BadDomain(String),
}

impl fmt::Display for AddressParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressParseError::MissingAt => write!(f, "address has no @"),
            AddressParseError::MultipleAt => write!(f, "address has multiple @"),
            AddressParseError::BadLocal(l) => write!(f, "bad local part `{l}`"),
            AddressParseError::BadDomain(d) => write!(f, "bad domain `{d}`"),
        }
    }
}

impl std::error::Error for AddressParseError {}

/// A parsed `local@domain` address. The domain is lower-cased; the local
/// part keeps its case for display but compares case-insensitively, which
/// matches how every large provider actually routes mail.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmailAddress {
    local: String,
    domain: String,
}

impl EmailAddress {
    /// Parses an address, accepting an optional `Display Name <addr>` form.
    pub fn parse(input: &str) -> Result<Self, AddressParseError> {
        let inner = match (input.rfind('<'), input.rfind('>')) {
            (Some(a), Some(b)) if a < b => &input[a + 1..b],
            _ => input,
        };
        let inner = inner.trim();
        let mut parts = inner.splitn(2, '@');
        let local = parts.next().unwrap_or("");
        let domain = parts.next().ok_or(AddressParseError::MissingAt)?;
        if domain.contains('@') {
            return Err(AddressParseError::MultipleAt);
        }
        if local.is_empty()
            || !local
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-' | '+' | '='))
        {
            return Err(AddressParseError::BadLocal(local.to_owned()));
        }
        // Validate the domain with the same rules as ets-core, but without
        // depending on it (keep ets-mail substrate-free).
        if !valid_domain(domain) {
            return Err(AddressParseError::BadDomain(domain.to_owned()));
        }
        Ok(EmailAddress {
            local: local.to_owned(),
            domain: domain.to_ascii_lowercase(),
        })
    }

    /// Builds an address from already-validated parts.
    pub fn new(local: &str, domain: &str) -> Result<Self, AddressParseError> {
        Self::parse(&format!("{local}@{domain}"))
    }

    /// The local part (case preserved).
    pub fn local(&self) -> &str {
        &self.local
    }

    /// The domain part (lower-cased).
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The registrable domain of the address
    /// (`alice@smtp.gmail.com` → `gmail.com`).
    pub fn registrable_domain(&self) -> &str {
        let mut labels: Vec<&str> = self.domain.split('.').collect();
        if labels.len() <= 2 {
            return &self.domain;
        }
        let tail = labels.split_off(labels.len() - 2);
        let offset = self.domain.len() - (tail[0].len() + 1 + tail[1].len());
        &self.domain[offset..]
    }

    /// Whether the local part is a "system user" Layer 4 filters out
    /// (`postmaster`, `root`, `admin`, ... — §4.3).
    pub fn is_system_user(&self) -> bool {
        const SYSTEM: &[&str] = &[
            "postmaster",
            "root",
            "admin",
            "administrator",
            "mailer-daemon",
            "noreply",
            "no-reply",
            "nobody",
            "hostmaster",
            "webmaster",
            "abuse",
        ];
        let l = self.local.to_ascii_lowercase();
        SYSTEM
            .iter()
            .any(|s| l == *s || l.starts_with(&format!("{s}+")))
    }
}

fn valid_domain(domain: &str) -> bool {
    let d = domain.strip_suffix('.').unwrap_or(domain);
    if d.is_empty() || d.len() > 253 {
        return false;
    }
    let mut labels = 0;
    for label in d.split('.') {
        if label.is_empty() || label.len() > 63 {
            return false;
        }
        if label.starts_with('-') || label.ends_with('-') {
            return false;
        }
        if !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            return false;
        }
        labels += 1;
    }
    labels >= 2
}

impl PartialEq for EmailAddress {
    fn eq(&self, other: &Self) -> bool {
        self.local.eq_ignore_ascii_case(&other.local) && self.domain == other.domain
    }
}

impl Eq for EmailAddress {}

impl std::hash::Hash for EmailAddress {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.local.to_ascii_lowercase().hash(state);
        self.domain.hash(state);
    }
}

impl FromStr for EmailAddress {
    type Err = AddressParseError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EmailAddress::parse(s)
    }
}

impl fmt::Display for EmailAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.local, self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> EmailAddress {
        EmailAddress::parse(s).unwrap()
    }

    #[test]
    fn parses_plain_address() {
        let addr = a("alice@gmail.com");
        assert_eq!(addr.local(), "alice");
        assert_eq!(addr.domain(), "gmail.com");
        assert_eq!(addr.to_string(), "alice@gmail.com");
    }

    #[test]
    fn parses_display_name_form() {
        let addr = a("Alice Liddell <alice@Gmail.Com>");
        assert_eq!(addr.local(), "alice");
        assert_eq!(addr.domain(), "gmail.com");
    }

    #[test]
    fn local_part_characters() {
        assert!(EmailAddress::parse("first.last+tag@x.com").is_ok());
        assert!(EmailAddress::parse("under_score=x@x.com").is_ok());
        assert!(EmailAddress::parse("sp ace@x.com").is_err());
        assert!(EmailAddress::parse("@x.com").is_err());
    }

    #[test]
    fn rejects_missing_or_multiple_at() {
        assert_eq!(
            EmailAddress::parse("nobody"),
            Err(AddressParseError::MissingAt)
        );
        assert_eq!(
            EmailAddress::parse("a@b@c.com"),
            Err(AddressParseError::MultipleAt)
        );
    }

    #[test]
    fn rejects_bad_domains() {
        assert!(matches!(
            EmailAddress::parse("a@nodot"),
            Err(AddressParseError::BadDomain(_))
        ));
        assert!(matches!(
            EmailAddress::parse("a@-x.com"),
            Err(AddressParseError::BadDomain(_))
        ));
        assert!(matches!(
            EmailAddress::parse("a@x..com"),
            Err(AddressParseError::BadDomain(_))
        ));
    }

    #[test]
    fn equality_ignores_local_case() {
        assert_eq!(a("Alice@gmail.com"), a("alice@GMAIL.com"));
        assert_ne!(a("alice@gmail.com"), a("alice@gmial.com"));
    }

    #[test]
    fn registrable_domain() {
        assert_eq!(a("a@smtp.gmail.com").registrable_domain(), "gmail.com");
        assert_eq!(a("a@gmail.com").registrable_domain(), "gmail.com");
        assert_eq!(a("a@x.y.z.verizon.net").registrable_domain(), "verizon.net");
    }

    #[test]
    fn system_users() {
        assert!(a("postmaster@x.com").is_system_user());
        assert!(a("ROOT@x.com").is_system_user());
        assert!(a("no-reply@shop.com").is_system_user());
        assert!(a("abuse+tickets@x.com").is_system_user());
        assert!(!a("alice@x.com").is_system_user());
        // Layer-4 matches whole local parts, not substrings.
        assert!(!a("rootbeer@x.com").is_system_user());
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(a("Alice@gmail.com"));
        assert!(set.contains(&a("alice@gmail.com")));
    }
}
