//! Case-insensitive header names and an order-preserving header map.
//!
//! Layer 1 and Layer 4 of the classification funnel inspect specific
//! headers (`From`, `Sender`, `Reply-To`, `Return-Path`,
//! `List-Unsubscribe`, ...), so the map supports repeated fields and
//! preserves insertion order, like real RFC 5322 header blocks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A header field name; compares and hashes case-insensitively but
/// remembers the spelling it was created with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeaderName(String);

impl HeaderName {
    /// Creates a header name. Panics if the name contains characters
    /// outside RFC 5322 `ftext` (printable ASCII except `:`).
    pub fn new(name: &str) -> Self {
        assert!(
            !name.is_empty() && name.bytes().all(|b| (33..=126).contains(&b) && b != b':'),
            "invalid header name {name:?}"
        );
        HeaderName(name.to_owned())
    }

    /// Creates a header name, returning `None` instead of panicking on an
    /// invalid one — the form the parser uses on untrusted input.
    pub fn try_new(name: &str) -> Option<Self> {
        if !name.is_empty() && name.bytes().all(|b| (33..=126).contains(&b) && b != b':') {
            Some(HeaderName(name.to_owned()))
        } else {
            None
        }
    }

    /// The original spelling.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl PartialEq for HeaderName {
    fn eq(&self, other: &Self) -> bool {
        self.0.eq_ignore_ascii_case(&other.0)
    }
}
impl Eq for HeaderName {}

impl PartialEq<&str> for HeaderName {
    fn eq(&self, other: &&str) -> bool {
        self.0.eq_ignore_ascii_case(other)
    }
}

impl std::hash::Hash for HeaderName {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        for b in self.0.bytes() {
            state.write_u8(b.to_ascii_lowercase());
        }
    }
}

impl fmt::Display for HeaderName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for HeaderName {
    fn from(s: &str) -> Self {
        HeaderName::new(s)
    }
}

/// Well-known header names used throughout the pipeline.
pub mod names {
    /// `From`
    pub const FROM: &str = "From";
    /// `To`
    pub const TO: &str = "To";
    /// `Sender`
    pub const SENDER: &str = "Sender";
    /// `Reply-To`
    pub const REPLY_TO: &str = "Reply-To";
    /// `Return-Path`
    pub const RETURN_PATH: &str = "Return-Path";
    /// `Subject`
    pub const SUBJECT: &str = "Subject";
    /// `Date`
    pub const DATE: &str = "Date";
    /// `Message-ID`
    pub const MESSAGE_ID: &str = "Message-ID";
    /// `List-Unsubscribe`
    pub const LIST_UNSUBSCRIBE: &str = "List-Unsubscribe";
    /// `Received`
    pub const RECEIVED: &str = "Received";
    /// `Content-Type`
    pub const CONTENT_TYPE: &str = "Content-Type";
    /// `Content-Transfer-Encoding`
    pub const CONTENT_TRANSFER_ENCODING: &str = "Content-Transfer-Encoding";
    /// `Content-Disposition`
    pub const CONTENT_DISPOSITION: &str = "Content-Disposition";
    /// `MIME-Version`
    pub const MIME_VERSION: &str = "MIME-Version";
    /// `X-Spam-Flag` (added by the pipeline, mirroring SpamAssassin)
    pub const X_SPAM_FLAG: &str = "X-Spam-Flag";
}

/// An insertion-ordered multimap of header fields.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HeaderMap {
    fields: Vec<(HeaderName, String)>,
}

impl HeaderMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field (keeps existing fields with the same name).
    pub fn append(&mut self, name: impl Into<HeaderName>, value: impl Into<String>) {
        self.fields
            .push((name.into(), sanitize_value(value.into())));
    }

    /// Replaces every field of `name` with a single value.
    pub fn set(&mut self, name: impl Into<HeaderName>, value: impl Into<String>) {
        let name = name.into();
        self.fields.retain(|(n, _)| *n != name);
        self.fields.push((name, sanitize_value(value.into())));
    }

    /// First value of `name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(n, _)| n == &name)
            .map(|(_, v)| v.as_str())
    }

    /// All values of `name`, in insertion order.
    pub fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.fields
            .iter()
            .filter(move |(n, _)| n == &name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether any field named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Removes every field of `name`, returning how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.fields.len();
        self.fields.retain(|(n, _)| n != &name);
        before - self.fields.len()
    }

    /// All fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&HeaderName, &str)> {
        self.fields.iter().map(|(n, v)| (n, v.as_str()))
    }

    /// Number of fields (counting repeats).
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when no fields are present.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Serializes as an RFC 5322 header block (no trailing blank line).
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        for (n, v) in &self.fields {
            out.push_str(n.as_str());
            out.push_str(": ");
            out.push_str(v);
            out.push_str("\r\n");
        }
        out
    }

    /// Parses a header block (everything before the first blank line),
    /// unfolding continuation lines (leading whitespace).
    pub fn parse(block: &str) -> Result<HeaderMap, HeaderParseError> {
        let mut map = HeaderMap::new();
        let mut current: Option<(HeaderName, String)> = None;
        for raw_line in block.split("\r\n").flat_map(|l| l.split('\n')) {
            if raw_line.is_empty() {
                continue;
            }
            if raw_line.starts_with(' ') || raw_line.starts_with('\t') {
                match current.as_mut() {
                    Some((_, v)) => {
                        v.push(' ');
                        v.push_str(raw_line.trim());
                    }
                    None => return Err(HeaderParseError::DanglingContinuation),
                }
                continue;
            }
            if let Some((n, v)) = current.take() {
                map.fields.push((n, v));
            }
            let colon = raw_line
                .find(':')
                .ok_or_else(|| HeaderParseError::MissingColon(raw_line.to_owned()))?;
            let (name, value) = raw_line.split_at(colon);
            let name = name.trim();
            let header_name = HeaderName::try_new(name)
                .ok_or_else(|| HeaderParseError::BadName(name.to_owned()))?;
            current = Some((header_name, value[1..].trim().to_owned()));
        }
        if let Some((n, v)) = current.take() {
            map.fields.push((n, v));
        }
        Ok(map)
    }
}

fn sanitize_value(mut v: String) -> String {
    // Header injection defense: values must not contain raw CR/LF.
    if v.contains('\r') || v.contains('\n') {
        v = v.replace(['\r', '\n'], " ");
    }
    v
}

/// Errors from [`HeaderMap::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeaderParseError {
    /// A continuation line appeared before any field.
    DanglingContinuation,
    /// A line had no `:` separator.
    MissingColon(String),
    /// A field name was empty or contained spaces.
    BadName(String),
}

impl fmt::Display for HeaderParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderParseError::DanglingContinuation => {
                write!(f, "continuation line before any header field")
            }
            HeaderParseError::MissingColon(l) => write!(f, "header line without colon: {l:?}"),
            HeaderParseError::BadName(n) => write!(f, "bad header name {n:?}"),
        }
    }
}

impl std::error::Error for HeaderParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_compare_case_insensitively() {
        assert_eq!(HeaderName::new("From"), HeaderName::new("FROM"));
        assert_eq!(HeaderName::new("reply-to"), "Reply-To");
    }

    #[test]
    #[should_panic(expected = "invalid header name")]
    fn names_reject_colon() {
        HeaderName::new("From:");
    }

    #[test]
    fn map_basic_ops() {
        let mut h = HeaderMap::new();
        h.append("From", "a@x.com");
        h.append("Received", "hop1");
        h.append("Received", "hop2");
        assert_eq!(h.get("from"), Some("a@x.com"));
        assert_eq!(h.get_all("RECEIVED").count(), 2);
        assert!(h.contains("received"));
        h.set("From", "b@x.com");
        assert_eq!(h.get_all("From").count(), 1);
        assert_eq!(h.get("From"), Some("b@x.com"));
        assert_eq!(h.remove("Received"), 2);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn wire_round_trip() {
        let mut h = HeaderMap::new();
        h.append("From", "Alice <alice@gmail.com>");
        h.append("To", "bob@gmial.com");
        h.append("Subject", "visa documents attached");
        let wire = h.to_wire();
        let parsed = HeaderMap::parse(&wire).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn parse_unfolds_continuations() {
        let block = "Subject: a very\r\n  long subject\r\nTo: x@y.com\r\n";
        let h = HeaderMap::parse(block).unwrap();
        assert_eq!(h.get("Subject"), Some("a very long subject"));
        assert_eq!(h.get("To"), Some("x@y.com"));
    }

    #[test]
    fn parse_accepts_bare_lf() {
        let h = HeaderMap::parse("A: 1\nB: 2\n").unwrap();
        assert_eq!(h.get("A"), Some("1"));
        assert_eq!(h.get("B"), Some("2"));
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            HeaderMap::parse(" leading continuation"),
            Err(HeaderParseError::DanglingContinuation)
        );
        assert!(matches!(
            HeaderMap::parse("no colon here"),
            Err(HeaderParseError::MissingColon(_))
        ));
    }

    #[test]
    fn header_injection_is_neutralized() {
        let mut h = HeaderMap::new();
        h.append("Subject", "hi\r\nBcc: victim@example.com");
        let wire = h.to_wire();
        let parsed = HeaderMap::parse(&wire).unwrap();
        assert_eq!(parsed.len(), 1);
        assert!(parsed.get("Bcc").is_none());
    }

    #[test]
    fn empty_map_wire_is_empty() {
        assert_eq!(HeaderMap::new().to_wire(), "");
        assert!(HeaderMap::parse("").unwrap().is_empty());
    }
}
