//! MIME serialization and parsing (multipart/mixed subset).
//!
//! A message without attachments serializes as a plain `text/plain` body;
//! with attachments it becomes `multipart/mixed` with one `text/plain`
//! part followed by one base64 part per attachment. The parser accepts
//! both forms plus unknown single-part content types (treated as body
//! text), which is all the traffic generator and honey campaigns produce.

use crate::base64;
use crate::header::{names, HeaderMap};
use crate::message::{Attachment, Message};
use std::fmt;

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum MimeError {
    /// The header block failed to parse.
    Header(crate::header::HeaderParseError),
    /// `Content-Type: multipart/*` without a boundary parameter.
    MissingBoundary,
    /// A multipart body without a terminating boundary marker.
    UnterminatedMultipart,
    /// An attachment part failed base64 decoding.
    BadAttachment(base64::DecodeError),
}

impl fmt::Display for MimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MimeError::Header(e) => write!(f, "header: {e}"),
            MimeError::MissingBoundary => write!(f, "multipart content type without boundary"),
            MimeError::UnterminatedMultipart => write!(f, "multipart body never terminated"),
            MimeError::BadAttachment(e) => write!(f, "attachment: {e}"),
        }
    }
}

impl std::error::Error for MimeError {}

impl From<crate::header::HeaderParseError> for MimeError {
    fn from(e: crate::header::HeaderParseError) -> Self {
        MimeError::Header(e)
    }
}

/// A deterministic boundary derived from message content, so serialization
/// is reproducible (no RNG in the mail crate).
fn boundary_for(msg: &Message) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(msg.body.as_bytes());
    for a in &msg.attachments {
        eat(a.filename.as_bytes());
        eat(&a.data);
    }
    format!("=_ets_{h:016x}")
}

/// Serializes a [`Message`] to wire format.
pub fn serialize(msg: &Message) -> String {
    let mut headers = msg.headers.clone();
    let mut out = String::new();
    if msg.attachments.is_empty() {
        headers.set(names::CONTENT_TYPE, "text/plain; charset=utf-8");
        out.push_str(&headers.to_wire());
        out.push_str("\r\n");
        out.push_str(&msg.body);
        return out;
    }
    let boundary = boundary_for(msg);
    headers.set(names::MIME_VERSION, "1.0");
    headers.set(
        names::CONTENT_TYPE,
        format!("multipart/mixed; boundary=\"{boundary}\""),
    );
    out.push_str(&headers.to_wire());
    out.push_str("\r\n");
    // Text part.
    out.push_str(&format!("--{boundary}\r\n"));
    out.push_str("Content-Type: text/plain; charset=utf-8\r\n\r\n");
    out.push_str(&msg.body);
    out.push_str("\r\n");
    // Attachment parts.
    for a in &msg.attachments {
        out.push_str(&format!("--{boundary}\r\n"));
        out.push_str(&format!("Content-Type: {}\r\n", a.content_type));
        out.push_str("Content-Transfer-Encoding: base64\r\n");
        out.push_str(&format!(
            "Content-Disposition: attachment; filename=\"{}\"\r\n\r\n",
            a.filename.replace('"', "")
        ));
        out.push_str(&base64::encode_mime(&a.data));
        out.push_str("\r\n");
    }
    out.push_str(&format!("--{boundary}--\r\n"));
    out
}

/// Parses a wire-format message.
pub fn parse(wire: &str) -> Result<Message, MimeError> {
    let (header_block, body) = split_header_body(wire);
    let headers = HeaderMap::parse(header_block)?;
    let content_type = headers.get(names::CONTENT_TYPE).unwrap_or("text/plain");
    if !content_type.to_ascii_lowercase().starts_with("multipart/") {
        return Ok(Message {
            headers,
            body: body.to_owned(),
            attachments: Vec::new(),
        });
    }
    let boundary = param(content_type, "boundary").ok_or(MimeError::MissingBoundary)?;
    let mut msg = Message {
        headers,
        body: String::new(),
        attachments: Vec::new(),
    };
    let open = format!("--{boundary}");
    let close = format!("--{boundary}--");
    let mut parts: Vec<&str> = Vec::new();
    let rest = body;
    let mut terminated = false;
    // Walk boundary lines.
    let mut current_start: Option<usize> = None;
    let mut offset = 0usize;
    for line in rest.split_inclusive('\n') {
        let trimmed = line.trim_end();
        if trimmed == close {
            if let Some(s) = current_start {
                parts.push(&rest[s..offset]);
            }
            terminated = true;
            break;
        } else if trimmed == open {
            if let Some(s) = current_start {
                parts.push(&rest[s..offset]);
            }
            current_start = Some(offset + line.len());
        }
        offset += line.len();
    }
    if !terminated {
        return Err(MimeError::UnterminatedMultipart);
    }
    for part in parts {
        let (ph, pb) = split_header_body(part);
        let pheaders = HeaderMap::parse(ph)?;
        let ptype = pheaders.get(names::CONTENT_TYPE).unwrap_or("text/plain");
        let disposition = pheaders.get(names::CONTENT_DISPOSITION).unwrap_or("");
        let encoding = pheaders
            .get(names::CONTENT_TRANSFER_ENCODING)
            .unwrap_or("7bit");
        let is_attachment = disposition.to_ascii_lowercase().contains("attachment");
        if is_attachment {
            let filename = param(disposition, "filename").unwrap_or_else(|| "unnamed".to_owned());
            let data = if encoding.eq_ignore_ascii_case("base64") {
                base64::decode(pb).map_err(MimeError::BadAttachment)?
            } else {
                trim_part_body(pb).as_bytes().to_vec()
            };
            msg.attachments.push(Attachment {
                filename,
                content_type: ptype.split(';').next().unwrap_or(ptype).trim().to_owned(),
                data,
            });
        } else {
            if !msg.body.is_empty() {
                msg.body.push('\n');
            }
            msg.body.push_str(&trim_part_body(pb));
        }
    }
    Ok(msg)
}

fn trim_part_body(b: &str) -> String {
    b.trim_end_matches(['\r', '\n']).to_owned()
}

fn split_header_body(wire: &str) -> (&str, &str) {
    for sep in ["\r\n\r\n", "\n\n"] {
        if let Some(pos) = wire.find(sep) {
            return (&wire[..pos], &wire[pos + sep.len()..]);
        }
    }
    (wire, "")
}

/// Extracts a quoted or bare parameter from a header value
/// (`multipart/mixed; boundary="x"` → `x`).
fn param(value: &str, name: &str) -> Option<String> {
    let lower = value.to_ascii_lowercase();
    let needle = format!("{name}=");
    let at = lower.find(&needle)?;
    let rest = &value[at + needle.len()..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next().map(str::to_owned)
    } else {
        rest.split(&[';', ' ', '\t'][..]).next().map(str::to_owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn plain_message() -> Message {
        let mut m = Message::new();
        m.headers.append("From", "alice@gmail.com");
        m.headers.append("To", "bob@gmial.com");
        m.headers.append("Subject", "hi");
        m.body = "line one\nline two".to_owned();
        m
    }

    fn multipart_message() -> Message {
        let mut m = plain_message();
        m.attachments.push(Attachment::new(
            "visa.pdf",
            "application/pdf",
            vec![0u8, 1, 2, 255, 254],
        ));
        m.attachments.push(Attachment::new(
            "cv.docx",
            "application/vnd.docx",
            b"PK fake".to_vec(),
        ));
        m
    }

    #[test]
    fn plain_round_trip() {
        let m = plain_message();
        let wire = serialize(&m);
        let parsed = parse(&wire).unwrap();
        assert_eq!(parsed.body, m.body);
        assert_eq!(parsed.subject(), "hi");
        assert!(parsed.attachments.is_empty());
    }

    #[test]
    fn multipart_round_trip() {
        let m = multipart_message();
        let wire = serialize(&m);
        let parsed = parse(&wire).unwrap();
        assert_eq!(parsed.body, m.body);
        assert_eq!(parsed.attachments.len(), 2);
        assert_eq!(parsed.attachments[0].filename, "visa.pdf");
        assert_eq!(parsed.attachments[0].data, vec![0u8, 1, 2, 255, 254]);
        assert_eq!(parsed.attachments[1].content_type, "application/vnd.docx");
        assert_eq!(parsed.attachments[1].data, b"PK fake");
    }

    #[test]
    fn missing_boundary_is_an_error() {
        let wire = "Content-Type: multipart/mixed\r\n\r\nbody";
        assert_eq!(parse(wire).unwrap_err(), MimeError::MissingBoundary);
    }

    #[test]
    fn unterminated_multipart_is_an_error() {
        let wire = "Content-Type: multipart/mixed; boundary=\"b\"\r\n\r\n--b\r\n\r\npart";
        assert_eq!(parse(wire).unwrap_err(), MimeError::UnterminatedMultipart);
    }

    #[test]
    fn unknown_single_part_type_is_body() {
        let wire = "Content-Type: text/html\r\n\r\n<p>hello</p>";
        let m = parse(wire).unwrap();
        assert_eq!(m.body, "<p>hello</p>");
    }

    #[test]
    fn no_content_type_defaults_to_plain() {
        let wire = "From: a@x.com\r\n\r\nhello";
        let m = parse(wire).unwrap();
        assert_eq!(m.body, "hello");
    }

    #[test]
    fn param_extraction() {
        assert_eq!(
            param("multipart/mixed; boundary=\"abc\"", "boundary").as_deref(),
            Some("abc")
        );
        assert_eq!(
            param("multipart/mixed; boundary=abc; x=y", "boundary").as_deref(),
            Some("abc")
        );
        assert_eq!(
            param("attachment; filename=\"a b.pdf\"", "filename").as_deref(),
            Some("a b.pdf")
        );
        assert_eq!(param("text/plain", "boundary"), None);
    }

    #[test]
    fn boundary_is_deterministic_and_content_dependent() {
        let m1 = multipart_message();
        let mut m2 = multipart_message();
        assert_eq!(boundary_for(&m1), boundary_for(&m1));
        m2.attachments[0].data.push(7);
        assert_ne!(boundary_for(&m1), boundary_for(&m2));
    }

    proptest! {
        #[test]
        fn arbitrary_binary_attachment_round_trips(data: Vec<u8>, body in "[ -~]{0,200}") {
            let mut m = Message::new();
            m.headers.append("From", "a@x.com");
            m.body = body.clone();
            m.attachments.push(Attachment::new("f.bin", "application/octet-stream", data.clone()));
            let parsed = parse(&serialize(&m)).unwrap();
            prop_assert_eq!(parsed.attachments[0].data.clone(), data);
            prop_assert_eq!(parsed.body.trim_end_matches(['\r','\n']).to_owned(),
                            body.trim_end_matches(['\r','\n']).to_owned());
        }

        #[test]
        fn parser_never_panics(wire in "[ -~\r\n]{0,500}") {
            let _ = parse(&wire);
        }
    }
}
