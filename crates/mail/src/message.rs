//! The message type: headers + text body + attachments.

use crate::address::EmailAddress;
use crate::header::{names, HeaderMap};
use crate::mime;
use serde::{Deserialize, Serialize};

/// A file attached to a message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attachment {
    /// File name as given in `Content-Disposition` (e.g. `resume.docx`).
    pub filename: String,
    /// MIME content type (e.g. `application/pdf`).
    pub content_type: String,
    /// Raw bytes.
    pub data: Vec<u8>,
}

impl Attachment {
    /// Creates an attachment.
    pub fn new(filename: &str, content_type: &str, data: Vec<u8>) -> Self {
        Attachment {
            filename: filename.to_owned(),
            content_type: content_type.to_owned(),
            data,
        }
    }

    /// Lower-cased file extension, if any (`resume.DOCX` → `docx`).
    ///
    /// Figure 7 tallies these; Layer 2 drops `zip`/`rar` outright.
    pub fn extension(&self) -> Option<String> {
        let name = self.filename.rsplit('/').next().unwrap_or(&self.filename);
        let (stem, ext) = name.rsplit_once('.')?;
        if stem.is_empty() || ext.is_empty() {
            return None;
        }
        Some(ext.to_ascii_lowercase())
    }

    /// A stable content hash (FNV-1a, 64-bit) used to key VirusTotal-style
    /// lookups in the simulated malware oracle.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in &self.data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// An email message: a header block, a plain-text body, and zero or more
/// attachments. Serialized as RFC 5322 + MIME multipart when attachments
/// are present.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Message {
    /// Header fields.
    pub headers: HeaderMap,
    /// The text body (the part the scrubber and bag-of-words filter see).
    pub body: String,
    /// Attachments.
    pub attachments: Vec<Attachment>,
}

impl Message {
    /// Creates an empty message.
    pub fn new() -> Self {
        Message {
            headers: HeaderMap::new(),
            body: String::new(),
            attachments: Vec::new(),
        }
    }

    /// Parses the first address in the given header field.
    fn address_header(&self, name: &str) -> Option<EmailAddress> {
        let v = self.headers.get(name)?;
        // Take the first comma-separated mailbox that parses.
        v.split(',').find_map(|part| EmailAddress::parse(part).ok())
    }

    /// The `From:` address.
    pub fn from_addr(&self) -> Option<EmailAddress> {
        self.address_header(names::FROM)
    }

    /// The `To:` address (first mailbox).
    pub fn to_addr(&self) -> Option<EmailAddress> {
        self.address_header(names::TO)
    }

    /// The `Sender:` address.
    pub fn sender_addr(&self) -> Option<EmailAddress> {
        self.address_header(names::SENDER)
    }

    /// The `Reply-To:` address.
    pub fn reply_to_addr(&self) -> Option<EmailAddress> {
        self.address_header(names::REPLY_TO)
    }

    /// The `Return-Path:` address.
    pub fn return_path_addr(&self) -> Option<EmailAddress> {
        self.address_header(names::RETURN_PATH)
    }

    /// The subject, or empty string.
    pub fn subject(&self) -> &str {
        self.headers.get(names::SUBJECT).unwrap_or("")
    }

    /// Approximate heap bytes this message holds: header names/values,
    /// body text, attachment names and data. Used by the streaming
    /// pipeline's `MemGauge` to account payload in flight; an estimate
    /// (container overhead is ignored), but a faithful proxy for how the
    /// payload scales.
    pub fn approx_heap_bytes(&self) -> u64 {
        let headers: u64 = self
            .headers
            .iter()
            .map(|(n, v)| (n.as_str().len() + v.len()) as u64)
            .sum();
        let attachments: u64 = self
            .attachments
            .iter()
            .map(|a| (a.filename.len() + a.content_type.len() + a.data.len()) as u64)
            .sum();
        headers + self.body.len() as u64 + attachments
    }

    /// Serializes to wire format (RFC 5322; MIME multipart when attachments
    /// are present).
    pub fn to_wire(&self) -> String {
        mime::serialize(self)
    }

    /// Parses a wire-format message.
    pub fn parse(wire: &str) -> Result<Message, mime::MimeError> {
        mime::parse(wire)
    }

    /// Total size of body plus attachments, in bytes.
    pub fn content_size(&self) -> usize {
        self.body.len() + self.attachments.iter().map(|a| a.data.len()).sum::<usize>()
    }

    /// Whether any attachment has one of the given (lower-case) extensions.
    pub fn has_attachment_ext(&self, exts: &[&str]) -> bool {
        self.attachments
            .iter()
            .filter_map(Attachment::extension)
            .any(|e| exts.contains(&e.as_str()))
    }
}

impl Default for Message {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Message {
        let mut m = Message::new();
        m.headers.append("From", "Alice <alice@gmail.com>");
        m.headers.append("To", "bob@gmial.com");
        m.headers.append("Subject", "hotel booking");
        m.body = "Book us 3 rooms.\nThanks, Alice".to_owned();
        m.attachments.push(Attachment::new(
            "itinerary.pdf",
            "application/pdf",
            b"%PDF-1.4 fake".to_vec(),
        ));
        m
    }

    #[test]
    fn address_accessors() {
        let m = sample();
        assert_eq!(m.from_addr().unwrap().domain(), "gmail.com");
        assert_eq!(m.to_addr().unwrap().domain(), "gmial.com");
        assert!(m.sender_addr().is_none());
        assert_eq!(m.subject(), "hotel booking");
    }

    #[test]
    fn first_parseable_mailbox_wins() {
        let mut m = Message::new();
        m.headers
            .append("To", "not-an-address, bob@x.com, carol@y.com");
        assert_eq!(m.to_addr().unwrap().local(), "bob");
    }

    #[test]
    fn attachment_extension() {
        assert_eq!(
            Attachment::new("CV.DocX", "x/y", vec![])
                .extension()
                .as_deref(),
            Some("docx")
        );
        assert_eq!(Attachment::new("noext", "x/y", vec![]).extension(), None);
        assert_eq!(Attachment::new(".hidden", "x/y", vec![]).extension(), None);
        assert_eq!(
            Attachment::new("a.tar.gz", "x/y", vec![])
                .extension()
                .as_deref(),
            Some("gz")
        );
    }

    #[test]
    fn attachment_ext_query() {
        let m = sample();
        assert!(m.has_attachment_ext(&["pdf", "doc"]));
        assert!(!m.has_attachment_ext(&["zip", "rar"]));
    }

    #[test]
    fn content_hash_distinguishes() {
        let a = Attachment::new("a", "x/y", b"hello".to_vec());
        let b = Attachment::new("a", "x/y", b"hellp".to_vec());
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash(), a.content_hash());
    }

    #[test]
    fn content_size() {
        let m = sample();
        assert_eq!(m.content_size(), m.body.len() + 13);
    }
}
