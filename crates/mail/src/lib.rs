//! # ets-mail
//!
//! An RFC 5322-subset email message model for the email-typosquatting
//! reproduction: addresses, case-insensitive headers, multipart bodies with
//! attachments, and a parser/serializer pair that round-trips everything
//! the collection pipeline and the SMTP substrate exchange.
//!
//! The model is intentionally a *subset*: it implements the exact header
//! fields and body structures the study's five-layer funnel inspects
//! (`From`, `To`, `Sender`, `Reply-To`, `Return-Path`, `List-Unsubscribe`,
//! subject, attachments with filenames) plus enough MIME structure to carry
//! the attachment corpus of Figure 7, without chasing the long tail of RFC
//! 5322 oddities the study never exercises.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod base64;
pub mod builder;
pub mod header;
pub mod message;
pub mod mime;

pub use address::EmailAddress;
pub use builder::MessageBuilder;
pub use header::{HeaderMap, HeaderName};
pub use message::{Attachment, Message};
