//! Minimal standard-alphabet base64 (RFC 4648), used to carry binary
//! attachment bodies inside MIME parts.
//!
//! Implemented locally rather than pulled in as a dependency: the study
//! only needs encode/decode of whole buffers, and a local implementation is
//! ~80 lines with exhaustive round-trip property tests.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `data` as base64 with padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// A character outside the base64 alphabet (and not padding/whitespace).
    BadCharacter(char),
    /// Input length (ignoring whitespace) was not a multiple of 4.
    BadLength(usize),
    /// Padding appeared in the middle of the input.
    MisplacedPadding,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadCharacter(c) => write!(f, "invalid base64 character {c:?}"),
            DecodeError::BadLength(n) => write!(f, "base64 length {n} not a multiple of 4"),
            DecodeError::MisplacedPadding => write!(f, "padding before end of base64 input"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes padded base64, ignoring ASCII whitespace (MIME folds encoded
/// bodies at 76 columns).
pub fn decode(text: &str) -> Result<Vec<u8>, DecodeError> {
    let mut vals: Vec<u8> = Vec::with_capacity(text.len());
    let mut padding = 0usize;
    for c in text.chars() {
        if c.is_ascii_whitespace() {
            continue;
        }
        if c == '=' {
            padding += 1;
            vals.push(0);
            continue;
        }
        if padding > 0 {
            return Err(DecodeError::MisplacedPadding);
        }
        let v = match c {
            'A'..='Z' => c as u8 - b'A',
            'a'..='z' => c as u8 - b'a' + 26,
            '0'..='9' => c as u8 - b'0' + 52,
            '+' => 62,
            '/' => 63,
            _ => return Err(DecodeError::BadCharacter(c)),
        };
        vals.push(v);
    }
    if !vals.len().is_multiple_of(4) {
        return Err(DecodeError::BadLength(vals.len()));
    }
    if padding > 2 {
        return Err(DecodeError::MisplacedPadding);
    }
    let mut out = Vec::with_capacity(vals.len() / 4 * 3);
    for quad in vals.chunks(4) {
        let n = ((quad[0] as u32) << 18)
            | ((quad[1] as u32) << 12)
            | ((quad[2] as u32) << 6)
            | quad[3] as u32;
        out.push((n >> 16) as u8);
        out.push((n >> 8) as u8);
        out.push(n as u8);
    }
    out.truncate(out.len() - padding);
    Ok(out)
}

/// Encodes with lines folded at 76 characters, as MIME bodies require.
pub fn encode_mime(data: &[u8]) -> String {
    let raw = encode(data);
    let mut out = String::with_capacity(raw.len() + raw.len() / 76 * 2);
    for (i, c) in raw.chars().enumerate() {
        if i > 0 && i % 76 == 0 {
            out.push_str("\r\n");
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rfc4648_vectors() {
        let cases: [(&str, &str); 7] = [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(encode(plain.as_bytes()), enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn decode_ignores_whitespace() {
        assert_eq!(decode("Zm9v\r\nYmFy").unwrap(), b"foobar");
        assert_eq!(decode(" Z m 9 v ").unwrap(), b"foo");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(decode("Zm9*"), Err(DecodeError::BadCharacter('*')));
        assert_eq!(decode("Zm9"), Err(DecodeError::BadLength(3)));
        assert_eq!(decode("Zm=v"), Err(DecodeError::MisplacedPadding));
        assert_eq!(decode("Z==="), Err(DecodeError::MisplacedPadding));
    }

    #[test]
    fn mime_folding() {
        let data = vec![0xABu8; 100];
        let folded = encode_mime(&data);
        for line in folded.split("\r\n") {
            assert!(line.len() <= 76);
        }
        assert_eq!(decode(&folded).unwrap(), data);
    }

    proptest! {
        #[test]
        fn round_trip(data: Vec<u8>) {
            let enc = encode(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }

        #[test]
        fn mime_round_trip(data: Vec<u8>) {
            let enc = encode_mime(&data);
            prop_assert_eq!(decode(&enc).unwrap(), data);
        }

        #[test]
        fn encoded_length_formula(data: Vec<u8>) {
            prop_assert_eq!(encode(&data).len(), data.len().div_ceil(3) * 4);
        }
    }
}
