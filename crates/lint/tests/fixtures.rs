//! Fixture tests: each file under `tests/fixtures/` seeds known
//! violations, marked in-line with `//~ <rule>`. The lint must report
//! exactly the marked (rule, line) pairs — nothing more, nothing less —
//! which pins both the detectors and the exemption machinery (sort
//! windows, order-free terminals, pragmas, test code, const items).

use ets_lint::{lint_file, FileMeta, Tier};

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn meta(name: &str, analytical: bool, library: bool, is_crate_root: bool) -> FileMeta {
    FileMeta {
        crate_name: "ets-fixture".to_string(),
        display_path: format!("tests/fixtures/{name}"),
        file_name: name.to_string(),
        is_crate_root,
        analytical,
        library,
        timing_allowed: false,
    }
}

/// `(rule, line)` pairs from `//~ <rule>` markers.
fn expected(src: &str) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = src
        .lines()
        .enumerate()
        .filter_map(|(i, l)| {
            l.split("//~")
                .nth(1)
                .map(str::trim)
                .filter(|r| ets_lint::RULES.contains(r))
                .map(|r| (r.to_string(), i as u32 + 1))
        })
        .collect();
    out.sort();
    out
}

fn check(name: &str, meta: FileMeta, expect_tier: Tier) {
    let src = std::fs::read_to_string(fixture_path(name)).unwrap();
    let diags = lint_file(&meta, &src);
    let mut got: Vec<(String, u32)> = diags.iter().map(|d| (d.rule.to_string(), d.line)).collect();
    got.sort();
    assert_eq!(
        got,
        expected(&src),
        "diagnostics for {name} diverge from //~ markers:\n{}",
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
    for d in &diags {
        assert_eq!(d.tier, expect_tier, "{d}");
    }
}

/// Like [`check`], but compares only diagnostics of one rule — for
/// fixtures whose seeded sites legitimately trip a second rule at a
/// different tier (e.g. `swallowed-error` unwraps also count against
/// `panic-in-library`).
fn check_rule(name: &str, meta: FileMeta, rule: &str, expect_tier: Tier) {
    let src = std::fs::read_to_string(fixture_path(name)).unwrap();
    let diags: Vec<_> = lint_file(&meta, &src)
        .into_iter()
        .filter(|d| d.rule == rule)
        .collect();
    let mut got: Vec<(String, u32)> = diags.iter().map(|d| (d.rule.to_string(), d.line)).collect();
    got.sort();
    assert_eq!(
        got,
        expected(&src),
        "`{rule}` diagnostics for {name} diverge from //~ markers:\n{}",
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
    for d in &diags {
        assert_eq!(d.tier, expect_tier, "{d}");
    }
}

#[test]
fn unordered_iteration_fixture() {
    check(
        "unordered.rs",
        meta("unordered.rs", true, true, false),
        Tier::Deny,
    );
}

#[test]
fn unordered_iteration_ignores_non_analytical_crates() {
    let src = std::fs::read_to_string(fixture_path("unordered.rs")).unwrap();
    let diags = lint_file(&meta("unordered.rs", false, true, false), &src);
    assert!(
        !diags.iter().any(|d| d.rule == "unordered-iteration"),
        "{diags:?}"
    );
}

#[test]
fn nondeterministic_source_fixture() {
    check(
        "nondet.rs",
        meta("nondet.rs", false, true, false),
        Tier::Deny,
    );
}

#[test]
fn nondeterministic_source_respects_timing_allowlist() {
    let src = std::fs::read_to_string(fixture_path("nondet.rs")).unwrap();
    let mut m = meta("nondet.rs", false, true, false);
    m.timing_allowed = true;
    let diags = lint_file(&m, &src);
    assert!(
        !diags.iter().any(|d| d.rule == "nondeterministic-source"),
        "{diags:?}"
    );
}

#[test]
fn float_reduction_order_fixture() {
    check(
        "floatred.rs",
        meta("floatred.rs", false, true, false),
        Tier::Deny,
    );
}

#[test]
fn panic_in_library_fixture() {
    check(
        "panics.rs",
        meta("panics.rs", false, true, false),
        Tier::Warn,
    );
}

#[test]
fn panic_rule_skips_binary_code() {
    let src = std::fs::read_to_string(fixture_path("panics.rs")).unwrap();
    let diags = lint_file(&meta("panics.rs", false, false, false), &src);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn shared_mutation_in_fanout_fixture() {
    check(
        "fanout.rs",
        meta("fanout.rs", false, false, false),
        Tier::Deny,
    );
}

#[test]
fn swallowed_error_fixture() {
    check_rule(
        "swallow.rs",
        meta("swallow.rs", false, true, false),
        "swallowed-error",
        Tier::Deny,
    );
}

#[test]
fn swallowed_error_skips_binary_code() {
    let src = std::fs::read_to_string(fixture_path("swallow.rs")).unwrap();
    let diags = lint_file(&meta("swallow.rs", false, false, false), &src);
    assert!(
        !diags.iter().any(|d| d.rule == "swallowed-error"),
        "{diags:?}"
    );
}

#[test]
fn non_commutative_merge_fixture() {
    check(
        "mergefix.rs",
        meta("mergefix.rs", false, false, false),
        Tier::Deny,
    );
}

#[test]
fn crate_hygiene_fixture() {
    let src = std::fs::read_to_string(fixture_path("root_missing_forbid.rs")).unwrap();
    let diags = lint_file(&meta("root_missing_forbid.rs", false, true, true), &src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "crate-hygiene");
    assert_eq!((diags[0].line, diags[0].col), (1, 1));
    assert_eq!(diags[0].tier, Tier::Deny);

    // Same file linted as a non-root module: no finding.
    let diags = lint_file(&meta("root_missing_forbid.rs", false, true, false), &src);
    assert!(diags.is_empty(), "{diags:?}");

    let src = std::fs::read_to_string(fixture_path("root_with_forbid.rs")).unwrap();
    let diags = lint_file(&meta("root_with_forbid.rs", false, true, true), &src);
    assert!(diags.is_empty(), "{diags:?}");
}

/// Resolves `timing_allowed` exactly as the workspace walker does, for a
/// hypothetical file `rel` inside crate `krate` at `crates/<dir>`.
fn timing_allowed_for(krate: &str, dir: &str, rel: &str) -> bool {
    let root = std::path::Path::new("/ws");
    let c = ets_lint::workspace::Crate {
        name: krate.to_string(),
        dir: root.join("crates").join(dir),
        has_lib: true,
    };
    let path = c.dir.join(rel);
    ets_lint::workspace::file_meta(root, &c, &path).timing_allowed
}

/// The timing allowlist admits exactly `crates/obs/src/clock.rs`: the
/// same `Instant::now` fixture stays denied everywhere else in `ets-obs`
/// and in a `clock.rs` that lives in any other crate.
#[test]
fn timing_allowlist_is_path_exact_for_obs_clock() {
    assert!(timing_allowed_for("ets-obs", "obs", "src/clock.rs"));
    // Elsewhere in ets-obs: denied.
    assert!(!timing_allowed_for("ets-obs", "obs", "src/span.rs"));
    assert!(!timing_allowed_for("ets-obs", "obs", "src/metrics.rs"));
    // A clock.rs in a different crate: denied (file name is not enough).
    assert!(!timing_allowed_for("ets-core", "core", "src/clock.rs"));
    // lab.rs lost its old filename-based exemption when the stage timers
    // moved onto ets-obs.
    assert!(!timing_allowed_for(
        "ets-experiments",
        "experiments",
        "src/lab.rs"
    ));

    // The SMTP serving-telemetry module is the second (and only other)
    // path-exact entry: allowed in ets-smtp, while the same filename in
    // any other crate — and every other ets-smtp file — stays denied.
    assert!(timing_allowed_for("ets-smtp", "smtp", "src/telemetry.rs"));
    assert!(!timing_allowed_for("ets-smtp", "smtp", "src/server.rs"));
    assert!(!timing_allowed_for("ets-smtp", "smtp", "src/net_client.rs"));
    assert!(!timing_allowed_for("ets-dns", "dns", "src/telemetry.rs"));

    // The load-harness runner is the third path-exact entry: open-loop
    // pacing needs the clock, but the rest of ets-loadgen (scenario
    // draws, stats, reports) must stay deterministic.
    assert!(timing_allowed_for(
        "ets-loadgen",
        "loadgen",
        "src/runner.rs"
    ));
    assert!(!timing_allowed_for("ets-loadgen", "loadgen", "src/lib.rs"));
    assert!(!timing_allowed_for(
        "ets-loadgen",
        "loadgen",
        "src/scenario.rs"
    ));
    assert!(!timing_allowed_for("ets-core", "core", "src/runner.rs"));

    // And a denied meta really does fire on wall-clock reads.
    let src = std::fs::read_to_string(fixture_path("nondet.rs")).unwrap();
    let mut m = meta("nondet.rs", false, true, false);
    m.timing_allowed = false;
    let diags = lint_file(&m, &src);
    assert!(
        diags.iter().any(|d| d.rule == "nondeterministic-source"),
        "{diags:?}"
    );
}

#[test]
fn json_output_is_shaped_and_deterministic() {
    let src = std::fs::read_to_string(fixture_path("nondet.rs")).unwrap();
    let m = meta("nondet.rs", false, true, false);
    let a = ets_lint::to_json(&lint_file(&m, &src));
    let b = ets_lint::to_json(&lint_file(&m, &src));
    assert_eq!(a, b);
    assert!(a.contains("\"findings\""));
    assert!(a.contains("\"summary\""));
    assert!(a.contains("\"rule\": \"nondeterministic-source\""));
    assert!(a.contains("\"tier\": \"deny\""));
}
