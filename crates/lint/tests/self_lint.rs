//! Self-lint: the real workspace must be deny-clean, and the panic
//! budget must match the tree exactly (the ratchet moves only together
//! with the code).

use ets_lint::workspace::{find_workspace_root, lint_workspace};
use ets_lint::{budget, Tier};
use std::path::Path;

#[test]
fn workspace_is_deny_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = lint_workspace(&root).expect("lint the workspace");
    let denies: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.tier == Tier::Deny)
        .map(|d| d.to_string())
        .collect();
    assert!(
        denies.is_empty(),
        "deny-tier findings in the workspace:\n{}",
        denies.join("\n")
    );
}

#[test]
fn panic_budget_matches_tree_exactly() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = lint_workspace(&root).expect("lint the workspace");
    let text = std::fs::read_to_string(root.join("crates/lint/panic_budget.json"))
        .expect("panic_budget.json");
    let budget_map = budget::parse(&text).expect("parse budget");
    assert_eq!(
        budget_map, report.warn_counts,
        "panic_budget.json is stale; run `cargo run -p ets-lint -- --workspace --update-budget`"
    );
}

#[test]
fn deny_gate_exits_zero_on_this_tree() {
    // The exact command CI runs.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_ets-lint"))
        .args(["--workspace", "--deny"])
        .current_dir(&root)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("run ets-lint");
    assert!(status.success(), "ets-lint --workspace --deny failed");
}
