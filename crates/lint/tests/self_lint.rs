//! Self-lint: the real workspace must be deny-clean, and the panic
//! budget must match the tree exactly (the ratchet moves only together
//! with the code).

use ets_lint::workspace::{find_workspace_root, lint_workspace};
use ets_lint::{budget, Tier};
use std::path::Path;

#[test]
fn workspace_is_deny_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = lint_workspace(&root).expect("lint the workspace");
    let denies: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.tier == Tier::Deny)
        .map(|d| d.to_string())
        .collect();
    assert!(
        denies.is_empty(),
        "deny-tier findings in the workspace:\n{}",
        denies.join("\n")
    );
}

#[test]
fn panic_budget_matches_tree_exactly() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = lint_workspace(&root).expect("lint the workspace");
    let text = std::fs::read_to_string(root.join("crates/lint/panic_budget.json"))
        .expect("panic_budget.json");
    let budget_map = budget::parse(&text).expect("parse budget");
    assert_eq!(
        budget_map, report.warn_counts,
        "panic_budget.json is stale; run `cargo run -p ets-lint -- --workspace --update-budget`"
    );
}

#[test]
fn pragma_budget_matches_tree_exactly() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let report = lint_workspace(&root).expect("lint the workspace");
    let text = std::fs::read_to_string(root.join("crates/lint/pragma_budget.json"))
        .expect("pragma_budget.json");
    let budget_map = budget::parse(&text).expect("parse budget");
    assert_eq!(
        budget_map, report.pragma_counts,
        "pragma_budget.json is stale; run `cargo run -p ets-lint -- --workspace --update-budget`"
    );
}

/// The structural layer must parse every real workspace file without
/// recording a single delimiter error — the rules silently degrade on a
/// file the parser can't model, so this is the canary.
#[test]
fn workspace_parses_without_errors() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let crates = ets_lint::workspace::discover_crates(&root).expect("discover crates");
    assert!(!crates.is_empty());
    let mut files = 0usize;
    for c in &crates {
        for path in ets_lint::workspace::rust_files(&c.dir).expect("walk crate") {
            let src = std::fs::read_to_string(&path).expect("read source");
            let lexed = ets_lint::lexer::lex(&src);
            let ast = ets_lint::parser::parse(&lexed.tokens);
            assert!(
                ast.errors.is_empty(),
                "{} has parse errors: {:?}",
                path.display(),
                ast.errors
            );
            assert!(
                !ast.fns.is_empty() || src.lines().all(|l| !l.contains("fn ")),
                "{}: no fns recovered",
                path.display()
            );
            files += 1;
        }
    }
    assert!(files > 50, "only {files} files walked");
}

#[test]
fn deny_gate_exits_zero_on_this_tree() {
    // The exact command CI runs.
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let status = std::process::Command::new(env!("CARGO_BIN_EXE_ets-lint"))
        .args(["--workspace", "--deny"])
        .current_dir(&root)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("run ets-lint");
    assert!(status.success(), "ets-lint --workspace --deny failed");
}
