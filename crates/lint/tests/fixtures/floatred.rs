//! Fixture: `float-reduction-order`.
//! (Not compiled — consumed by crates/lint/tests/fixtures.rs.)

use ets_parallel::{par_fold, par_map};

pub fn bad_fold_accumulates_floats(xs: &[f64]) -> f64 {
    par_fold(
        xs,
        || 0.0f64,
        |acc, _i, &x| *acc += x * 1.5, //~ float-reduction-order
        |acc, part| *acc += part, //~ float-reduction-order
    )
}

pub fn bad_sum_inside_fanout(rows: &[Vec<f64>]) -> Vec<f64> {
    par_map(rows, |_i, row| row.iter().sum::<f64>()) //~ float-reduction-order
}

pub fn good_integer_fold(xs: &[u64]) -> u64 {
    par_fold(xs, || 0u64, |acc, _i, &x| *acc += x, |acc, part| *acc += part)
}

pub fn good_sequential_commit(xs: &[f64]) -> f64 {
    // The sanctioned shape: parallel-compute per-item values, then a
    // sequential reduction outside the fan-out.
    let per_item = par_map(xs, |_i, &x| x * 1.5);
    per_item.iter().sum::<f64>()
}

pub fn good_pragma(xs: &[f64]) -> f64 {
    par_fold(
        xs,
        || 0.0f64,
        // ets-lint: allow(float-reduction-order): justified suppression fixture
        |acc, _i, &x| *acc += x,
        // ets-lint: allow(float-reduction-order): justified suppression fixture
        |acc, part| *acc += part,
    )
}
