//! Fixture: a crate root *without* `#![forbid(unsafe_code)]` — must
//! trip `crate-hygiene` (reported at 1:1, so no `//~` marker).
//! (Not compiled — consumed by crates/lint/tests/fixtures.rs.)

pub mod something;

pub fn entry() {}
