//! Fixture: `panic-in-library` (warn tier).
//! (Not compiled — consumed by crates/lint/tests/fixtures.rs.)

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() //~ panic-in-library
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present") //~ panic-in-library
}

pub fn bad_panic(flag: bool) {
    if flag {
        panic!("boom"); //~ panic-in-library
    }
}

pub fn bad_unreachable(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => unreachable!(), //~ panic-in-library
    }
}

pub fn good_unwrap_or(v: Option<u32>) -> u32 {
    // `unwrap_or` and friends don't panic; the rule must not match them.
    v.unwrap_or(0).max(v.unwrap_or_default())
}

// Build-time assertion: a legitimate panic site (fails compilation, not
// a measurement run).
const _: () = assert!(u32::BITS == 32, "const assert may panic");

const TABLE_CHECK: () = {
    let ok = 1 + 1 == 2;
    if !ok {
        panic!("symmetry violated");
    }
};

pub fn good_pragma(v: Option<u32>) -> u32 {
    // ets-lint: allow(panic-in-library): invariant documented at call site
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_unwrap_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
