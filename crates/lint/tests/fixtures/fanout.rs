//! Fixture: `shared-mutation-in-fanout` (deny tier).
//! (Not compiled — consumed by crates/lint/tests/fixtures.rs.)

pub fn bad_captured_accumulate(items: &[u32]) -> u32 {
    let mut total = 0;
    par_map(items, |x| {
        total += x; //~ shared-mutation-in-fanout
        x
    });
    total
}

pub fn bad_captured_push(items: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    par_map(items, |x| {
        out.push(x + 1); //~ shared-mutation-in-fanout
        x
    });
    out
}

pub fn bad_lock_in_worker(items: &[u32], shared: &Mutex<Vec<u32>>) {
    run_parallel(items, |x| {
        shared.lock().unwrap().push(*x); //~ shared-mutation-in-fanout
    });
}

pub fn bad_atomic_rmw(items: &[u32], hits: &AtomicU64) {
    par_flat_map(items, |x| {
        hits.fetch_add(1, Ordering::Relaxed); //~ shared-mutation-in-fanout
        vec![*x]
    });
}

// Commit/merge closures run sequentially on the calling thread; `&mut`
// captures there are the sanctioned pattern, not a race.
pub fn good_commit_phase_mutation(items: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    stream_map(
        items,
        |x| x * 2,
        |v| {
            out.push(v);
        },
    );
    out
}

pub fn good_par_fold_merge(items: &[u32]) -> u32 {
    let mut grand = 0;
    par_fold(
        items,
        || 0u32,
        |acc, x| acc + x,
        |partial| {
            grand += partial;
        },
    );
    grand
}

// State the worker binds itself is private per-item scratch.
pub fn good_worker_local_state(items: &[u32]) -> Vec<u32> {
    par_map(items, |x| {
        let mut local = Vec::new();
        local.push(x);
        local.sort_unstable();
        local.truncate(1);
        local[0]
    })
}

pub fn good_pragma(items: &[u32]) -> u32 {
    let mut seen = 0;
    par_map(items, |x| {
        // ets-lint: allow(shared-mutation-in-fanout): fixture-only justification
        seen += 1;
        x + seen
    });
    seen
}
