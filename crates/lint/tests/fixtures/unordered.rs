//! Fixture: `unordered-iteration`. Lines with a `//~` marker must be
//! flagged; everything else must not.
//! (Not compiled — consumed by crates/lint/tests/fixtures.rs.)
//!
//! Bad cases are spaced more than SORT_WINDOW lines away from any
//! ordering identifier so the good cases can't accidentally exempt them.

use std::collections::{HashMap, HashSet};

pub fn bad_for_loop(map: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for (k, v) in map { //~ unordered-iteration
        out.push(k + v);
    }
    out
}

pub fn bad_keys(set: &HashSet<String>) -> String {
    let mut joined = String::new();
    for s in set.iter() { //~ unordered-iteration
        joined.push_str(s);
    }
    joined
}

pub fn bad_drain() -> Vec<(String, u64)> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    counts.insert("a".to_string(), 1);
    counts.drain().collect() //~ unordered-iteration
}

pub fn bad_float_sum(weights: &HashMap<String, f64>) -> f64 {
    weights.values().sum() //~ unordered-iteration
}

pub fn good_order_free_sum(counts: &HashMap<String, u64>) -> u64 {
    counts.values().copied().sum::<u64>()
}

pub fn good_order_free_terminals(set: &HashSet<u32>) -> (usize, bool, Option<u32>) {
    let n = set.iter().count();
    let any_even = set.iter().any(|v| v % 2 == 0);
    let max = set.iter().copied().max();
    (n, any_even, max)
}

pub fn good_pragma(map: &HashMap<u32, u32>) -> u64 {
    let mut acc = 0u64;
    // ets-lint: allow(unordered-iteration): wrapping-add is commutative
    for (&k, &v) in map.iter() {
        acc = acc.wrapping_add((k ^ v) as u64);
    }
    acc
}

pub fn good_collect_then_sort(counts: &HashMap<String, u64>) -> Vec<(String, u64)> {
    let mut rows: Vec<(String, u64)> = counts.iter().map(|(k, &v)| (k.clone(), v)).collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows
}

pub fn good_btree_recollect(counts: HashMap<String, u64>) -> Vec<(String, u64)> {
    counts
        .into_iter()
        .collect::<std::collections::BTreeMap<_, _>>()
        .into_iter()
        .collect()
}

pub fn bad_qualified_param(m: &std::collections::HashMap<String, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (_, v) in m.iter() { //~ unordered-iteration
        out.push(*v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_is_exempt() {
        let map: HashMap<u32, u32> = HashMap::new();
        for (k, v) in map.iter() {
            let _ = (k, v);
        }
    }
}
