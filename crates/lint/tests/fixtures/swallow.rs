//! Fixture: `swallowed-error` (deny tier, library code only).
//! (Not compiled — consumed by crates/lint/tests/fixtures.rs.)

use std::io::{self, Write};

pub struct StoreError;

fn persist(buf: &[u8]) -> io::Result<usize> {
    Ok(buf.len())
}

fn flush_index() -> Result<(), StoreError> {
    Ok(())
}

pub fn bad_unwrap(buf: &[u8]) -> usize {
    persist(buf).unwrap() //~ swallowed-error
}

pub fn bad_expect() {
    flush_index().expect("index flush"); //~ swallowed-error
}

pub fn bad_dropped_ok(buf: &[u8]) {
    persist(buf).ok(); //~ swallowed-error
}

pub fn bad_let_underscore(buf: &[u8]) {
    let _ = persist(buf); //~ swallowed-error
}

pub fn bad_io_method(mut w: impl Write, buf: &[u8]) {
    let _ = w.write_all(buf); //~ swallowed-error
}

pub fn good_propagated(buf: &[u8]) -> io::Result<usize> {
    persist(buf)
}

pub fn good_question_mark(buf: &[u8]) -> io::Result<usize> {
    let n = persist(buf)?;
    Ok(n + 1)
}

pub fn good_handled(buf: &[u8]) -> usize {
    match persist(buf) {
        Ok(n) => n,
        Err(_e) => 0,
    }
}

// `.ok()` that is consumed is a conversion, not a swallow.
pub fn good_ok_consumed(buf: &[u8]) -> Option<usize> {
    persist(buf).ok()
}

// Unwrap with no guarded producer in the statement is out of scope for
// this rule (panic-in-library owns it).
pub fn good_unrelated_unwrap(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn pragma_suppressed(buf: &[u8]) {
    // ets-lint: allow(swallowed-error): best-effort warm-up, loss is benign
    let _ = persist(buf);
}
