//! Fixture: a crate root that carries the attribute — `crate-hygiene`
//! must stay quiet.
//! (Not compiled — consumed by crates/lint/tests/fixtures.rs.)

#![forbid(unsafe_code)]

pub fn entry() {}
