//! Fixture: `non-commutative-merge` (deny tier).
//! (Not compiled — consumed by crates/lint/tests/fixtures.rs.)

pub struct BadAcc {
    pub total: u64,
    pub sum_ratio: f64,
    pub items: Vec<u32>,
}

impl BadAcc {
    pub fn merge(&mut self, other: BadAcc) {
        self.total += other.total;
        self.total -= 1; //~ non-commutative-merge
        self.sum_ratio += other.sum_ratio * 0.5; //~ non-commutative-merge
        self.items.extend(other.items); //~ non-commutative-merge
    }
}

pub struct GoodAcc {
    pub total: u64,
    pub items: Vec<u32>,
}

impl GoodAcc {
    // Integer addition commutes, and the concatenation is pinned by the
    // deterministic sort before the accumulator leaves the merge.
    pub fn merge(&mut self, other: GoodAcc) {
        self.total += other.total;
        self.items.extend(other.items);
        self.items.sort_unstable();
    }
}

pub struct Hist {
    pub counts: Vec<u64>,
}

impl Hist {
    pub fn absorb(&mut self, other: &Hist) {
        for (i, v) in other.counts.iter().enumerate() {
            self.counts[i] += v;
        }
    }
}

// The contract binds `merge`/`absorb` by name; other fns may rebalance.
pub fn rebalance(acc: &mut BadAcc) {
    acc.total -= 1;
}

pub struct Pinned {
    pub log: Vec<u32>,
}

impl Pinned {
    pub fn absorb(&mut self, epoch: Vec<u32>) {
        // ets-lint: allow(non-commutative-merge): caller drains the reorder buffer in epoch order
        self.log.extend(epoch);
    }
}
