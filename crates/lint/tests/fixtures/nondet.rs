//! Fixture: `nondeterministic-source`.
//! (Not compiled — consumed by crates/lint/tests/fixtures.rs.)

use std::time::{Instant, SystemTime}; //~ nondeterministic-source

pub fn bad_wall_clock() -> u64 {
    let t0 = Instant::now(); //~ nondeterministic-source
    t0.elapsed().as_nanos() as u64
}

pub fn bad_entropy() -> u64 {
    let mut rng = rand::thread_rng(); //~ nondeterministic-source
    rng.gen()
}

pub fn bad_hasher_state() {
    let _state = std::collections::hash_map::RandomState::new(); //~ nondeterministic-source
}

pub fn good_seeded(seed: u64) -> u64 {
    // Deterministic: derived stream, no wall clock, no OS entropy.
    let mut rng = ets_parallel::derive_rng(seed, 0x99, 7);
    rng.gen()
}

pub fn good_instant_type_only(t: Instant) -> Instant {
    // Mentioning the type is fine; only `Instant::now` reads the clock.
    t
}

pub fn good_pragma() -> u64 {
    // ets-lint: allow(nondeterministic-source): logging only, not analytical
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}
