//! SARIF 2.1.0 output: the interchange format GitHub code scanning
//! ingests for inline PR annotations.
//!
//! Hand-rolled like the JSON reporter (the crate is dependency-free)
//! and deterministic: diagnostics arrive pre-sorted from the driver,
//! the rule table follows [`crate::RULES`] order, and no timestamps or
//! absolute paths are embedded — the same tree always produces the same
//! bytes. Deny-tier findings map to SARIF `error`, warn-tier to
//! `warning`.

use crate::{json_str, Diagnostic, Tier, RULES};

/// One-line rule descriptions for the SARIF rule table, keyed by
/// [`RULES`] order.
const RULE_DESCRIPTIONS: &[(&str, &str)] = &[
    (
        "unordered-iteration",
        "Hash collection iterated in hash order in an analytical crate without an adjacent \
         deterministic sort or ordered re-collection.",
    ),
    (
        "nondeterministic-source",
        "Wall-clock or OS-entropy read outside the timing-only allowlist.",
    ),
    (
        "float-reduction-order",
        "Floating-point accumulation inside an ets-parallel fan-out closure; chunk boundaries \
         depend on the worker count.",
    ),
    (
        "panic-in-library",
        "unwrap/expect/panic in library code, counted against panic_budget.json.",
    ),
    (
        "crate-hygiene",
        "Crate root missing #![forbid(unsafe_code)].",
    ),
    (
        "shared-mutation-in-fanout",
        "Write to captured state, lock/atomic mutation, or interior mutability inside a worker \
         closure of an ets-parallel fan-out call.",
    ),
    (
        "swallowed-error",
        "unwrap/expect, `let _ =`, or dropped .ok() on a Result carrying StoreError or io::Error \
         in a library crate.",
    ),
    (
        "non-commutative-merge",
        "Order-dependent operation (subtraction, division, unsorted push/extend, float \
         accumulation) inside a merge/absorb fn.",
    ),
];

/// Serializes diagnostics as a single-run SARIF 2.1.0 log.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut s = String::from(
        "{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n      \"tool\": {\n        \
         \"driver\": {\n          \"name\": \"ets-lint\",\n          \
         \"informationUri\": \"https://github.com/ets/ets#ets-lint\",\n          \"rules\": [\n",
    );
    for (i, rule) in RULES.iter().enumerate() {
        let desc = RULE_DESCRIPTIONS
            .iter()
            .find(|(r, _)| r == rule)
            .map(|(_, d)| *d)
            .unwrap_or("");
        s.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{}\n",
            json_str(rule),
            json_str(desc),
            if i + 1 < RULES.len() { "," } else { "" },
        ));
    }
    s.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (i, d) in diags.iter().enumerate() {
        let level = match d.tier {
            Tier::Deny => "error",
            Tier::Warn => "warning",
        };
        s.push_str(&format!(
            "        {{\"ruleId\": {}, \"level\": {}, \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}{}\n",
            json_str(d.rule),
            json_str(level),
            json_str(&d.message),
            json_str(&d.file),
            d.line,
            d.col,
            if i + 1 < diags.len() { "," } else { "" },
        ));
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}
