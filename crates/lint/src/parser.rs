//! Recursive-descent layer over [`crate::lexer`]: builds the
//! delimiter [`crate::ast::Tree`] and derives the fn / closure /
//! call tables of [`crate::ast::Ast`].
//!
//! This is a *structural* parser, not a grammar: it matches delimiters
//! exactly (mismatches are recorded as [`ParseError`]s — compiling Rust
//! never produces one, which the workspace self-parse test pins) and
//! recognizes the three shapes the syntax-aware rules need — `fn`
//! items, closure literals, call expressions — with tolerant scanning
//! for everything in between. Anything it cannot classify it simply
//! skips; a lint front end must never reject weird-but-compiling input.

use crate::ast::{Ast, CallInfo, ClosureInfo, FnInfo, ParseError, Tree};
use crate::lexer::{Delim, TokKind, Token};

/// Keywords that look like callees when followed by `(` but are not.
const STMT_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "move", "fn", "let", "mut", "ref",
    "impl", "pub", "use", "mod", "as", "else", "break", "continue", "where", "unsafe", "dyn",
];

/// Pattern keywords that are not bound names.
const PATTERN_KEYWORDS: &[&str] = &["mut", "ref", "box", "_"];

/// Parses a token stream into the structural [`Ast`].
pub fn parse(tokens: &[Token]) -> Ast {
    let mut ast = Ast::default();
    let match_of = build_matches(tokens, &mut ast.errors);
    ast.roots = build_tree(tokens, &match_of);
    collect_fns(tokens, &match_of, &mut ast.fns);
    collect_closures(tokens, &match_of, &mut ast.closures);
    collect_calls(tokens, &match_of, &mut ast.calls);
    // A closure's locals include the params of every closure nested in
    // its body (their bodies are subranges, so let/for/mut bindings are
    // already covered by the flat body scan).
    for outer in 0..ast.closures.len() {
        let (s, e) = ast.closures[outer].body;
        let nested: Vec<String> = ast.closures[outer + 1..]
            .iter()
            .filter(|c| c.head >= s && c.head < e)
            .flat_map(|c| c.params.iter().cloned())
            .collect();
        ast.closures[outer].locals.extend(nested);
    }
    ast
}

/// For every delimiter token, the index of its partner. Unmatched
/// delimiters map to `usize::MAX` and record a [`ParseError`].
fn build_matches(tokens: &[Token], errors: &mut Vec<ParseError>) -> Vec<usize> {
    let mut match_of = vec![usize::MAX; tokens.len()];
    let mut stack: Vec<(usize, Delim)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::Open(d) => stack.push((i, d)),
            TokKind::Close(d) => match stack.pop() {
                Some((open, od)) if od == d => {
                    match_of[open] = i;
                    match_of[i] = open;
                }
                Some((open, od)) => {
                    errors.push(ParseError {
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "mismatched delimiter: `{}` closes `{}` opened at line {}",
                            t.text, tokens[open].text, tokens[open].line
                        ),
                    });
                    // Re-pair anyway so downstream scans stay bounded.
                    match_of[open] = i;
                    match_of[i] = open;
                    let _ = od;
                }
                None => errors.push(ParseError {
                    line: t.line,
                    col: t.col,
                    message: format!("unmatched closing `{}`", t.text),
                }),
            },
            _ => {}
        }
    }
    for (open, _) in stack {
        errors.push(ParseError {
            line: tokens[open].line,
            col: tokens[open].col,
            message: format!("unclosed `{}`", tokens[open].text),
        });
    }
    match_of
}

/// Builds the nested tree from the match table.
fn build_tree(tokens: &[Token], match_of: &[usize]) -> Vec<Tree> {
    fn build_range(tokens: &[Token], match_of: &[usize], lo: usize, hi: usize) -> Vec<Tree> {
        let mut out = Vec::new();
        let mut i = lo;
        while i < hi {
            match tokens[i].kind {
                TokKind::Open(d) => {
                    let close = match_of[i];
                    if close != usize::MAX && close < hi {
                        out.push(Tree::Group {
                            delim: d,
                            open: i,
                            close: Some(close),
                            children: build_range(tokens, match_of, i + 1, close),
                        });
                        i = close + 1;
                    } else {
                        out.push(Tree::Group {
                            delim: d,
                            open: i,
                            close: None,
                            children: build_range(tokens, match_of, i + 1, hi),
                        });
                        i = hi;
                    }
                }
                _ => {
                    out.push(Tree::Leaf(i));
                    i += 1;
                }
            }
        }
        out
    }
    build_range(tokens, match_of, 0, tokens.len())
}

/// Index one past a delimiter group opened at `open` (falls back to
/// `open + 1` on an unmatched open so scans always make progress).
fn past_group(match_of: &[usize], open: usize) -> usize {
    let close = match_of[open];
    if close == usize::MAX {
        open + 1
    } else {
        close + 1
    }
}

/// Skips a generic parameter list starting at a `<` token. Counts `<` /
/// `>` with `<<` / `>>` worth two (the lexer max-munches nested
/// closers), ignoring `->`. Returns the index one past the closing `>`.
fn skip_angles(tokens: &[Token], at: usize) -> usize {
    let mut depth = 0i32;
    let mut i = at;
    while let Some(t) = tokens.get(i) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            if depth <= 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Collects the pattern-side identifiers of one comma-separated
/// parameter: everything before the top-level `:` (the whole range when
/// there is no annotation, e.g. `self`).
fn pattern_idents(
    tokens: &[Token],
    match_of: &[usize],
    lo: usize,
    hi: usize,
    out: &mut Vec<String>,
) {
    let mut i = lo;
    while i < hi {
        let t = &tokens[i];
        match t.kind {
            TokKind::Punct if t.text == ":" => return,
            TokKind::Open(_) => {
                // Tuple / struct patterns: recurse into the group.
                let close = match_of[i].min(hi);
                if close != usize::MAX && close > i {
                    pattern_idents(tokens, match_of, i + 1, close.min(hi), out);
                    i = close;
                } // else fall through; unmatched opens end the file
            }
            TokKind::Ident if !PATTERN_KEYWORDS.contains(&t.text.as_str()) => {
                out.push(t.text.clone());
            }
            _ => {}
        }
        i += 1;
    }
}

/// Splits a delimited group's interior `[open+1, close)` at top-level
/// commas, returning non-empty `[start, end)` ranges.
fn split_args(
    tokens: &[Token],
    match_of: &[usize],
    open: usize,
    close: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = open + 1;
    let mut i = open + 1;
    while i < close {
        match tokens[i].kind {
            TokKind::Open(_) => {
                i = past_group(match_of, i);
                continue;
            }
            TokKind::Punct if tokens[i].text == "," => {
                if i > start {
                    out.push((start, i));
                }
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if close > start {
        out.push((start, close));
    }
    out
}

fn collect_fns(tokens: &[Token], match_of: &[usize], out: &mut Vec<FnInfo>) {
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        // `fn(..)` pointer types have no name; skip them.
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name_idx = i + 1;
        let mut j = i + 2;
        if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
            j = skip_angles(tokens, j);
        }
        if !tokens
            .get(j)
            .is_some_and(|t| t.kind == TokKind::Open(Delim::Paren))
        {
            i += 1;
            continue;
        }
        let params_open = j;
        let params_close = match_of[params_open];
        if params_close == usize::MAX {
            break;
        }
        let mut params = Vec::new();
        for (s, e) in split_args(tokens, match_of, params_open, params_close) {
            pattern_idents(tokens, match_of, s, e, &mut params);
        }
        // Return type: `-> tokens...` until `{` / `;` / `where`.
        let mut k = params_close + 1;
        let mut ret = String::new();
        if tokens.get(k).is_some_and(|t| t.is_punct("->")) {
            k += 1;
            let mut parts: Vec<&str> = Vec::new();
            while let Some(t) = tokens.get(k) {
                match t.kind {
                    TokKind::Open(Delim::Brace) => break,
                    TokKind::Punct if t.text == ";" => break,
                    TokKind::Ident if t.text == "where" => break,
                    TokKind::Open(_) => {
                        // Flatten grouped return types (`-> (A, B)`,
                        // `-> impl Fn(X)`) token by token.
                        parts.push(&t.text);
                        k += 1;
                        continue;
                    }
                    _ => parts.push(&t.text),
                }
                k += 1;
            }
            ret = parts.join(" ");
        }
        // Skip a where clause to the body / terminator.
        let mut depth = 0i32;
        let mut body = None;
        while let Some(t) = tokens.get(k) {
            match t.kind {
                TokKind::Open(Delim::Brace) if depth == 0 => {
                    body = Some((k, past_group(match_of, k)));
                    break;
                }
                TokKind::Punct if depth == 0 && t.text == ";" => break,
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => {
                    if depth == 0 {
                        break; // malformed; bail out of this item
                    }
                    depth -= 1;
                }
                _ => {}
            }
            k += 1;
        }
        out.push(FnInfo {
            name: name_tok.text.clone(),
            name_idx,
            params,
            ret,
            body,
        });
        i = name_idx + 1;
    }
}

/// True if a `|` / `||` at `i` sits in expression position (a closure
/// head) rather than being a binary operator or or-pattern separator.
fn is_closure_head(tokens: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).map(|p| &tokens[p]) else {
        return true;
    };
    match prev.kind {
        TokKind::Open(_) => true,
        TokKind::Punct => matches!(prev.text.as_str(), "," | ";" | "=" | "=>" | ":"),
        TokKind::Ident => matches!(
            prev.text.as_str(),
            "move" | "return" | "else" | "in" | "break"
        ),
        _ => false,
    }
}

fn collect_closures(tokens: &[Token], match_of: &[usize], out: &mut Vec<ClosureInfo>) {
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        let is_pipe = t.is_punct("|");
        let is_pipepipe = t.is_punct("||");
        if !(is_pipe || is_pipepipe) || !is_closure_head(tokens, i) {
            i += 1;
            continue;
        }
        let head = i;
        let mut params = Vec::new();
        let mut after_params = i + 1;
        if is_pipe {
            // Find the closing `|` at top level, skipping groups.
            let mut j = i + 1;
            let mut close = None;
            while let Some(t) = tokens.get(j) {
                match t.kind {
                    TokKind::Open(_) => {
                        j = past_group(match_of, j);
                        continue;
                    }
                    TokKind::Close(_) => break, // left the enclosing group: not a closure
                    TokKind::Punct if t.text == "|" => {
                        close = Some(j);
                        break;
                    }
                    TokKind::Punct if t.text == ";" => break,
                    _ => {}
                }
                j += 1;
            }
            let Some(close) = close else {
                i += 1;
                continue;
            };
            for (s, e) in comma_ranges(tokens, match_of, i + 1, close) {
                pattern_idents(tokens, match_of, s, e, &mut params);
            }
            after_params = close + 1;
        }
        // Optional `-> Type` (requires a block body).
        let mut b = after_params;
        if tokens.get(b).is_some_and(|t| t.is_punct("->")) {
            while let Some(t) = tokens.get(b) {
                if t.kind == TokKind::Open(Delim::Brace) {
                    break;
                }
                b += 1;
            }
        }
        let Some(body_start_tok) = tokens.get(b) else {
            break;
        };
        let body = if body_start_tok.kind == TokKind::Open(Delim::Brace) {
            (b, past_group(match_of, b))
        } else {
            // Expression body: runs to the `,` / `;` / enclosing close.
            let mut e = b;
            while let Some(t) = tokens.get(e) {
                match t.kind {
                    TokKind::Open(_) => {
                        e = past_group(match_of, e);
                        continue;
                    }
                    TokKind::Close(_) => break,
                    TokKind::Punct if t.text == "," || t.text == ";" => break,
                    _ => {}
                }
                e += 1;
            }
            (b, e)
        };
        let locals = body_locals(tokens, match_of, body.0, body.1);
        out.push(ClosureInfo {
            head,
            params,
            body,
            locals,
        });
        i = after_params;
    }
}

/// Like [`split_args`] but over an arbitrary `[lo, hi)` range.
fn comma_ranges(tokens: &[Token], match_of: &[usize], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = lo;
    let mut i = lo;
    while i < hi {
        match tokens[i].kind {
            TokKind::Open(_) => {
                i = past_group(match_of, i);
                continue;
            }
            TokKind::Punct if tokens[i].text == "," => {
                if i > start {
                    out.push((start, i));
                }
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if hi > start {
        out.push((start, hi));
    }
    out
}

/// Names bound inside a body range: `let` / `if let` / `while let`
/// patterns, `for` patterns, match-arm patterns (idents left of `=>`),
/// and `mut x` pattern bindings anywhere. Flow-insensitive and
/// deliberately over-approximate — treating a binding as local can only
/// *suppress* a mutation finding, and immutable bindings cannot be
/// assigned in compiling code anyway.
fn body_locals(tokens: &[Token], match_of: &[usize], lo: usize, hi: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = lo;
    while i < hi {
        let t = &tokens[i];
        // Match-arm pattern: collect idents back to the arm start —
        // the `,` after the previous arm, the `}` of its block body, or
        // the opening brace of the match itself. Paren/bracket
        // sub-patterns (`Vacant(e)`, `[a, b]`) are jumped over and then
        // mined with `pattern_idents`; guards (`Some(x) if cond =>`)
        // contribute their idents too — harmless over-approximation.
        if t.is_punct("=>") {
            let mut k = i;
            let mut groups: Vec<usize> = Vec::new();
            while k > lo {
                let p = k - 1;
                match tokens[p].kind {
                    // `}` ends the previous arm's block body (struct
                    // patterns are cut here too — acceptable: missing a
                    // binding can only over-report, never suppress).
                    TokKind::Close(Delim::Brace) => break,
                    TokKind::Close(_) => {
                        let open = match_of[p];
                        if open == usize::MAX || open < lo {
                            break;
                        }
                        groups.push(open);
                        k = open;
                    }
                    TokKind::Open(_) => break,
                    TokKind::Punct if tokens[p].text == "," => break,
                    TokKind::Ident if !PATTERN_KEYWORDS.contains(&tokens[p].text.as_str()) => {
                        out.push(tokens[p].text.clone());
                        k = p;
                    }
                    _ => k = p,
                }
            }
            for open in groups {
                let close = past_group(match_of, open);
                pattern_idents(
                    tokens,
                    match_of,
                    open + 1,
                    close.saturating_sub(1),
                    &mut out,
                );
            }
            i += 1;
            continue;
        }
        if t.is_ident("let") {
            // Pattern runs to the `=` / `:` / `;` at this level.
            let mut j = i + 1;
            while j < hi {
                match tokens[j].kind {
                    TokKind::Open(_) => {
                        // Group in a pattern: collect inside it too.
                        let close = past_group(match_of, j);
                        pattern_idents(tokens, match_of, j + 1, close.saturating_sub(1), &mut out);
                        j = close;
                        continue;
                    }
                    TokKind::Punct if matches!(tokens[j].text.as_str(), "=" | ":" | ";") => break,
                    TokKind::Ident if !PATTERN_KEYWORDS.contains(&tokens[j].text.as_str()) => {
                        out.push(tokens[j].text.clone());
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if t.is_ident("for") {
            let mut j = i + 1;
            while j < hi && !tokens[j].is_ident("in") {
                if tokens[j].kind == TokKind::Ident
                    && !PATTERN_KEYWORDS.contains(&tokens[j].text.as_str())
                {
                    out.push(tokens[j].text.clone());
                }
                j += 1;
            }
            i = j;
            continue;
        }
        // `mut x` pattern binding (match arms, fn-less contexts); `&mut`
        // is a borrow, not a binding.
        if t.is_ident("mut")
            && tokens.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
            && !(i > 0 && tokens[i - 1].is_punct("&"))
        {
            out.push(tokens[i + 1].text.clone());
        }
        i += 1;
    }
    out
}

fn collect_calls(tokens: &[Token], match_of: &[usize], out: &mut Vec<CallInfo>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokKind::Ident || STMT_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        // `fn name(...)` is a definition, not a call.
        if i > 0 && tokens[i - 1].is_ident("fn") {
            continue;
        }
        // Direct `name(` or turbofish `name::<T>(`.
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|n| n.is_punct("::"))
            && tokens.get(j + 1).is_some_and(|n| n.is_punct("<"))
        {
            j = skip_angles(tokens, j + 1);
        }
        if !tokens
            .get(j)
            .is_some_and(|n| n.kind == TokKind::Open(Delim::Paren))
        {
            continue;
        }
        let open = j;
        let close = match_of[open];
        if close == usize::MAX {
            continue;
        }
        out.push(CallInfo {
            callee: t.text.clone(),
            callee_idx: i,
            open,
            end: close + 1,
            args: split_args(tokens, match_of, open, close),
            method: i > 0 && tokens[i - 1].is_punct("."),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{fanout_closures, Phase};
    use crate::lexer::lex;

    fn parsed(src: &str) -> Ast {
        parse(&lex(src).tokens)
    }

    #[test]
    fn balanced_tree_no_errors() {
        let ast = parsed("fn f(x: u32) -> u32 { (x + [1, 2][0]) * 2 }");
        assert!(ast.errors.is_empty(), "{:?}", ast.errors);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "f");
        assert_eq!(ast.fns[0].params, vec!["x"]);
        assert_eq!(ast.fns[0].ret, "u32");
        assert!(ast.fns[0].body.is_some());
    }

    #[test]
    fn mismatched_delimiters_are_errors() {
        assert!(!parsed("fn f() { (]").errors.is_empty());
        assert!(!parsed("fn f() { }}").errors.is_empty());
        assert!(!parsed("fn f() { (").errors.is_empty());
    }

    #[test]
    fn fn_signatures_with_generics_and_where() {
        let ast = parsed(
            "pub fn load<P: AsRef<Path>>(path: P, cfg: &Config) -> Result<World, StoreError> \
             where P: Clone { todo() }",
        );
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].params, vec!["path", "cfg"]);
        assert!(ast.fns[0].ret.contains("Result"));
        assert!(ast.fns[0].ret.contains("StoreError"));
        // Nested-closer generics (`Vec<Vec<u32>>`) must not desync.
        let ast = parsed("fn g<T: Into<Vec<Vec<u32>>>>(v: T) -> bool { true }");
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].ret, "bool");
    }

    #[test]
    fn closures_vs_or_patterns_and_bitor() {
        let ast = parsed(
            "fn f(a: u8, b: u8) { let c = a | b; match c { 1 | 2 => {} _ => {} } \
             let g = |x: u8| x + 1; let h = move || c; }",
        );
        assert_eq!(ast.closures.len(), 2, "{:?}", ast.closures);
        assert_eq!(ast.closures[0].params, vec!["x"]);
        assert!(ast.closures[1].params.is_empty());
    }

    #[test]
    fn closure_bodies_and_locals() {
        let ast = parsed(
            "fn f(items: &[u32]) { items.iter().map(|&(ref a, mut b)| { \
             let (c, d) = (a, b); for e in 0..*a { b += e; } b }); }",
        );
        let c = &ast.closures[0];
        assert!(c.params.contains(&"a".to_string()) && c.params.contains(&"b".to_string()));
        for name in ["c", "d", "e"] {
            assert!(c.binds(name), "missing local {name}: {c:?}");
        }
        assert!(!c.binds("items"));
    }

    #[test]
    fn calls_args_and_methods() {
        let ast = parsed("fn f() { g(1, h(2, 3), 4); v.push(5); s::t::<u8>(6); }");
        let names: Vec<&str> = ast.calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(names.contains(&"g") && names.contains(&"h") && names.contains(&"t"));
        let g = ast.calls.iter().find(|c| c.callee == "g").unwrap();
        assert_eq!(g.args.len(), 3);
        let push = ast.calls.iter().find(|c| c.callee == "push").unwrap();
        assert!(push.method);
    }

    #[test]
    fn fanout_resolution_worker_vs_commit() {
        let ast = parsed(
            "fn f(xs: &[u32]) { \
               let v = par_map(xs, |i, x| x + i); \
               stream_map(xs.iter(), |i, x| x * 2, |seq, r| { total += r; }); \
               let a = par_fold(xs, || 0u64, |acc, i, x| { *acc += x; }, |acc, p| { *acc += p; }); \
             }",
        );
        let fan = fanout_closures(&ast);
        let phases: Vec<(&str, Phase)> = fan.iter().map(|f| (f.call, f.phase)).collect();
        assert_eq!(
            phases,
            vec![
                ("par_map", Phase::Worker),
                ("stream_map", Phase::Worker),
                ("stream_map", Phase::Commit),
                ("par_fold", Phase::Worker),
                ("par_fold", Phase::Worker),
                ("par_fold", Phase::Commit),
            ],
            "{fan:?}"
        );
    }

    #[test]
    fn nested_closure_params_are_outer_locals() {
        let ast = parsed("fn f() { run(|a| inner.iter().map(|b| a + b).sum::<u32>()); }");
        let outer = &ast.closures[0];
        assert!(outer.binds("a") && outer.binds("b"));
    }
}
