//! A hand-written Rust lexer producing a flat token stream with
//! line/column positions.
//!
//! This is not a full-fidelity Rust lexer — it is exactly faithful
//! enough for token-pattern analysis: identifiers, literals (including
//! raw/byte strings and nested block comments), multi-character
//! operators under maximal munch, and delimiters. Comments are not
//! emitted as tokens; line comments are collected separately so the
//! rule engine can read `ets-lint: allow(...)` pragmas.

/// Token kind. Delimiters are distinguished so rules can do cheap
/// depth tracking and brace matching on the flat stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `HashMap`, `r#type`, ...).
    Ident,
    /// Numeric literal; `text` keeps the raw spelling for float sniffing.
    Number,
    /// String literal of any flavour (`".."`, `r#".."#`, `b".."`).
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Operator / punctuation, maximal munch (`::`, `+=`, `..=`, `.`).
    Punct,
    /// `(` `[` `{`
    Open(Delim),
    /// `)` `]` `}`
    Close(Delim),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    Paren,
    Bracket,
    Brace,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in chars).
    pub col: u32,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A line comment captured during lexing (for pragma extraction).
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
}

pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first (maximal munch).
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }
    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            // Multi-byte UTF-8 continuation bytes don't advance the column.
            if b & 0xC0 != 0x80 {
                self.col += 1;
            }
        }
        Some(b)
    }
    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a flat token stream. Unterminated constructs are
/// tolerated (the rest of the file becomes one literal) — a lint pass
/// must never panic on weird-but-compiling input.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        // Whitespace.
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        // Line comment (also `///` and `//!` doc comments).
        if cur.starts_with("//") {
            let start = cur.pos;
            while let Some(c) = cur.peek(0) {
                if c == b'\n' {
                    break;
                }
                cur.bump();
            }
            comments.push(Comment {
                text: src[start..cur.pos].to_string(),
                line,
            });
            continue;
        }
        // Block comment, possibly nested.
        if cur.starts_with("/*") {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                if cur.starts_with("/*") {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                } else if cur.starts_with("*/") {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                } else if cur.bump().is_none() {
                    break;
                }
            }
            continue;
        }
        // Raw / byte string prefixes and raw identifiers.
        if b == b'r' || b == b'b' {
            if let Some(tok) = try_lex_prefixed(&mut cur, src, line, col) {
                tokens.push(tok);
                continue;
            }
        }
        // Identifier / keyword.
        if is_ident_start(b) {
            let start = cur.pos;
            while cur.peek(0).is_some_and(is_ident_cont) {
                cur.bump();
            }
            tokens.push(Token {
                kind: TokKind::Ident,
                text: src[start..cur.pos].to_string(),
                line,
                col,
            });
            continue;
        }
        // Number.
        if b.is_ascii_digit() {
            tokens.push(lex_number(&mut cur, src, line, col));
            continue;
        }
        // Plain string.
        if b == b'"' {
            let start = cur.pos;
            cur.bump();
            lex_string_body(&mut cur);
            tokens.push(Token {
                kind: TokKind::Str,
                text: src[start..cur.pos].to_string(),
                line,
                col,
            });
            continue;
        }
        // Char literal or lifetime.
        if b == b'\'' {
            tokens.push(lex_quote(&mut cur, src, line, col));
            continue;
        }
        // Delimiters.
        let delim = match b {
            b'(' => Some((TokKind::Open(Delim::Paren), "(")),
            b')' => Some((TokKind::Close(Delim::Paren), ")")),
            b'[' => Some((TokKind::Open(Delim::Bracket), "[")),
            b']' => Some((TokKind::Close(Delim::Bracket), "]")),
            b'{' => Some((TokKind::Open(Delim::Brace), "{")),
            b'}' => Some((TokKind::Close(Delim::Brace), "}")),
            _ => None,
        };
        if let Some((kind, text)) = delim {
            cur.bump();
            tokens.push(Token {
                kind,
                text: text.to_string(),
                line,
                col,
            });
            continue;
        }
        // Multi-char operators, longest first.
        if let Some(op) = OPERATORS.iter().find(|op| cur.starts_with(op)) {
            for _ in 0..op.len() {
                cur.bump();
            }
            tokens.push(Token {
                kind: TokKind::Punct,
                text: (*op).to_string(),
                line,
                col,
            });
            continue;
        }
        // Single-char punctuation (fallback; also swallows stray bytes).
        cur.bump();
        tokens.push(Token {
            kind: TokKind::Punct,
            text: src[cur.pos - 1..cur.pos].to_string(),
            line,
            col,
        });
    }

    Lexed { tokens, comments }
}

/// Handles `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`, `b'x'`, and raw
/// identifiers `r#ident`. Returns `None` when the `r`/`b` is an ordinary
/// identifier start (caller falls through to ident lexing).
fn try_lex_prefixed(cur: &mut Cursor, src: &str, line: u32, col: u32) -> Option<Token> {
    let start = cur.pos;
    let b0 = cur.peek(0)?;
    // Determine prefix length: r, b, br, rb.
    let mut p = 1usize;
    if (b0 == b'b' && cur.peek(1) == Some(b'r')) || (b0 == b'r' && cur.peek(1) == Some(b'b')) {
        p = 2;
    }
    let after = cur.peek(p);
    match after {
        // Byte char: b'x'
        Some(b'\'') if b0 == b'b' && p == 1 => {
            cur.bump();
            Some(lex_quote(cur, src, line, col))
        }
        // Plain (byte) string: b"..." — only valid when prefix has no r.
        Some(b'"') if p == 1 && b0 == b'b' => {
            cur.bump();
            cur.bump();
            lex_string_body(cur);
            Some(Token {
                kind: TokKind::Str,
                text: src[start..cur.pos].to_string(),
                line,
                col,
            })
        }
        // Raw string (any number of #s) or raw identifier.
        Some(b'"') | Some(b'#') if b0 == b'r' || p == 2 => {
            // Count hashes after the prefix.
            let mut hashes = 0usize;
            while cur.peek(p + hashes) == Some(b'#') {
                hashes += 1;
            }
            match cur.peek(p + hashes) {
                Some(b'"') => {
                    for _ in 0..p + hashes + 1 {
                        cur.bump();
                    }
                    // Scan to closing quote followed by `hashes` hashes.
                    loop {
                        match cur.bump() {
                            None => break,
                            Some(b'"') => {
                                let mut ok = true;
                                for k in 0..hashes {
                                    if cur.peek(k) != Some(b'#') {
                                        ok = false;
                                        break;
                                    }
                                }
                                if ok {
                                    for _ in 0..hashes {
                                        cur.bump();
                                    }
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    Some(Token {
                        kind: TokKind::Str,
                        text: src[start..cur.pos].to_string(),
                        line,
                        col,
                    })
                }
                // `r#ident` — raw identifier (exactly one hash, ident next).
                Some(c) if b0 == b'r' && p == 1 && hashes == 1 && is_ident_start(c) => {
                    cur.bump();
                    cur.bump();
                    while cur.peek(0).is_some_and(is_ident_cont) {
                        cur.bump();
                    }
                    Some(Token {
                        kind: TokKind::Ident,
                        text: src[start..cur.pos].to_string(),
                        line,
                        col,
                    })
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Consumes a string body after the opening quote, honouring escapes.
fn lex_string_body(cur: &mut Cursor) {
    loop {
        match cur.bump() {
            None | Some(b'"') => break,
            Some(b'\\') => {
                cur.bump();
            }
            _ => {}
        }
    }
}

/// Lexes from a `'`: a lifetime (`'a`) or a char literal (`'a'`, `'\''`).
fn lex_quote(cur: &mut Cursor, src: &str, line: u32, col: u32) -> Token {
    let start = cur.pos;
    cur.bump(); // opening '
    if let Some(c) = cur.peek(0) {
        if c == b'\\' {
            // Escaped char literal.
            cur.bump();
            cur.bump();
            // Unicode escapes: \u{...}
            if cur.peek(0) == Some(b'{') {
                while let Some(d) = cur.bump() {
                    if d == b'}' {
                        break;
                    }
                }
            }
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
            }
            return Token {
                kind: TokKind::Char,
                text: src[start..cur.pos].to_string(),
                line,
                col,
            };
        }
        if is_ident_start(c) {
            // Could be 'a' (char) or 'a / 'static (lifetime): lifetime iff
            // the char after the ident run is not a closing quote. The
            // run length is counted in *characters*, not bytes — `'ï'`
            // is a char literal whose payload is two bytes long.
            let mut k = 0usize;
            let mut chars = 0usize;
            while let Some(b) = cur.peek(k) {
                if !is_ident_cont(b) {
                    break;
                }
                if b & 0xC0 != 0x80 {
                    chars += 1;
                }
                k += 1;
            }
            if cur.peek(k) == Some(b'\'') && chars == 1 {
                for _ in 0..=k {
                    cur.bump();
                }
                return Token {
                    kind: TokKind::Char,
                    text: src[start..cur.pos].to_string(),
                    line,
                    col,
                };
            }
            for _ in 0..k {
                cur.bump();
            }
            return Token {
                kind: TokKind::Lifetime,
                text: src[start..cur.pos].to_string(),
                line,
                col,
            };
        }
        // Something like '.' or '✓' (punct / multi-byte char literal).
        // Consume it only if the closing quote is really there — a
        // stray quote must not swallow the token after it.
        let mut k = 1usize;
        while cur.peek(k).is_some_and(|b| b & 0xC0 == 0x80) {
            k += 1;
        }
        if cur.peek(k) == Some(b'\'') {
            for _ in 0..=k {
                cur.bump();
            }
            return Token {
                kind: TokKind::Char,
                text: src[start..cur.pos].to_string(),
                line,
                col,
            };
        }
    }
    Token {
        kind: TokKind::Punct,
        text: src[start..cur.pos].to_string(),
        line,
        col,
    }
}

/// Lexes a numeric literal. Suffixes (`usize`, `f64`) are part of the
/// token; `1..n` does not swallow the range operator; `1e-3` keeps its
/// exponent.
fn lex_number(cur: &mut Cursor, src: &str, line: u32, col: u32) -> Token {
    let start = cur.pos;
    // Integer / prefix part (also consumes hex digits and suffix chars).
    while let Some(c) = cur.peek(0).filter(|&c| is_ident_cont(c)) {
        cur.bump();
        // `2e+3` / `2E-3`: sign directly after an exponent marker.
        if (c == b'e' || c == b'E')
            && !src[start..cur.pos].starts_with("0x")
            && matches!(cur.peek(0), Some(b'+') | Some(b'-'))
            && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
        {
            cur.bump();
        }
    }
    // Fractional part: a dot followed by a digit (never `..`).
    if cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while let Some(c) = cur.peek(0).filter(|&c| is_ident_cont(c)) {
            cur.bump();
            if (c == b'e' || c == b'E')
                && matches!(cur.peek(0), Some(b'+') | Some(b'-'))
                && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                cur.bump();
            }
        }
    } else if cur.peek(0) == Some(b'.') && cur.peek(1) != Some(b'.') {
        // Trailing-dot float (`1.`) — but not a method call (`1.max(2)`).
        if !cur.peek(1).is_some_and(is_ident_start) {
            cur.bump();
        }
    }
    Token {
        kind: TokKind::Number,
        text: src[start..cur.pos].to_string(),
        line,
        col,
    }
}

/// True if a `Number` token spells a floating-point literal.
pub fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return false;
    }
    if text.contains('.') || text.ends_with("f32") || text.ends_with("f64") {
        return true;
    }
    // Exponent form (`1e5`, `2E-3`) — but not an integer suffix (`2usize`).
    if let Some(pos) = text.find(['e', 'E']) {
        let mantissa = &text[..pos];
        let exp = text[pos + 1..].trim_start_matches(['+', '-']);
        return !mantissa.is_empty()
            && !exp.is_empty()
            && mantissa.bytes().all(|c| c.is_ascii_digit() || c == b'_')
            && exp.bytes().all(|c| c.is_ascii_digit() || c == b'_');
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn basic_stream() {
        let toks = kinds("let mut x: HashMap<u32, f64> = HashMap::new();");
        assert!(toks.contains(&(TokKind::Ident, "HashMap".into())));
        assert!(toks.contains(&(TokKind::Punct, "::".into())));
        assert!(
            toks.iter()
                .filter(|(k, _)| *k == TokKind::Open(Delim::Paren))
                .count()
                == 1
        );
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let lexed = lex("// thread_rng in a comment\nlet s = \"thread_rng\"; /* SystemTime */");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("thread_rng")));
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("SystemTime")));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("thread_rng"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"let x = r#"quote " inside"#; let r#type = 1;"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("inside")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn multibyte_and_punct_char_literals() {
        // `'ï'` is one character, two bytes — a char literal, not the
        // lifetime `'ï` plus a stray quote that would eat the `)`.
        let toks = kinds("f(BadCharacter('ï')); g('_', '.', '✓');");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 4);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            0
        );
        let opens = toks.iter().filter(|(k, _)| matches!(k, TokKind::Open(_)));
        let closes = toks.iter().filter(|(k, _)| matches!(k, TokKind::Close(_)));
        assert_eq!(opens.count(), closes.count());
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("for i in 0..10 { let x = 1.5e-3; let y = 2usize; }");
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        assert!(toks.contains(&(TokKind::Number, "1.5e-3".into())));
        assert!(toks.contains(&(TokKind::Number, "2usize".into())));
        assert!(is_float_literal("1.5e-3"));
        assert!(!is_float_literal("2usize"));
        assert!(!is_float_literal("0x1f"));
    }

    #[test]
    fn compound_ops_munch() {
        let toks = kinds("a += 1; b..=c; x <<= 2;");
        assert!(toks.contains(&(TokKind::Punct, "+=".into())));
        assert!(toks.contains(&(TokKind::Punct, "..=".into())));
        assert!(toks.contains(&(TokKind::Punct, "<<=".into())));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("ab\n  cd");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
