//! `ets-lint` — workspace determinism & hygiene analyzer.
//!
//! PRs 1–2 made *byte-identical, thread-invariant output* this
//! repository's defining invariant. This crate turns that invariant into
//! a machine-checked property of the source tree: a dependency-free
//! static-analysis pass (hand-written lexer + token walker, no `syn`)
//! with file:line:col diagnostics, `// ets-lint: allow(<rule>)`
//! suppression pragmas, and human or JSON output.
//!
//! Rules:
//!
//! | rule | tier | what it catches |
//! |------|------|-----------------|
//! | `unordered-iteration` | deny | `HashMap`/`HashSet` iteration in non-test code of analytical crates without an adjacent sort / ordered re-collection |
//! | `nondeterministic-source` | deny | `Instant::now` / `SystemTime` / `thread_rng` / `RandomState` outside the timing-only allowlist |
//! | `float-reduction-order` | deny | floating-point accumulation inside `ets-parallel` fan-out closures (chunk boundaries depend on the worker count, so FP reduction there is thread-dependent) |
//! | `panic-in-library` | warn | `unwrap()` / `expect()` / `panic!` in library crates, ratcheted down by a per-crate budget file |
//! | `crate-hygiene` | deny | crate roots missing `#![forbid(unsafe_code)]` |
//! | `shared-mutation-in-fanout` | deny | writes to captured state, lock/atomic mutation, or interior mutability inside worker closures of `ets-parallel` fan-out calls (sequential commit closures exempt) |
//! | `swallowed-error` | deny | `.unwrap()` / `.expect()` / `let _ =` / dropped `.ok()` on `Result`s carrying `StoreError` / `io::Error` in library crates |
//! | `non-commutative-merge` | deny | order-dependent operations (subtraction, division, unsorted `push`/`extend`, float accumulation) inside `merge`/`absorb` fns |
//!
//! The last three are syntax-aware: they run on the lightweight AST
//! built by [`parser`] over the token stream ([`ast`] holds the node
//! types and the worker-position resolver).
//!
//! A pragma suppresses a rule on its own line and on the next line of
//! code: `// ets-lint: allow(unordered-iteration): reason`. Pragmas are
//! themselves budgeted per crate (`crates/lint/pragma_budget.json`) so
//! suppression debt ratchets down, never silently up.

#![forbid(unsafe_code)]

pub mod ast;
pub mod budget;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod sarif;
pub mod workspace;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use lexer::{lex, Delim, TokKind, Token};

/// Diagnostic severity tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Fails the build under `--deny`.
    Deny,
    /// Counted against the per-crate budget file; never fails on its own.
    Warn,
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Tier::Deny => "deny",
            Tier::Warn => "warn",
        })
    }
}

/// One finding, addressed by workspace-relative path and 1-based
/// line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub tier: Tier,
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}] {}",
            self.file, self.line, self.col, self.tier, self.rule, self.message
        )
    }
}

/// Static facts about a file that rules condition on. The workspace
/// driver derives these from crate layout; tests construct them by hand.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Package name, e.g. `ets-core`.
    pub crate_name: String,
    /// Workspace-relative path used in diagnostics.
    pub display_path: String,
    /// Bare file name, e.g. `analysis.rs`.
    pub file_name: String,
    /// `src/lib.rs` or `src/main.rs` of a crate.
    pub is_crate_root: bool,
    /// Member of the analytical-crate set (`unordered-iteration` scope).
    pub analytical: bool,
    /// Library code (`panic-in-library` scope).
    pub library: bool,
    /// Timing-only allowlist (`nondeterministic-source` exemption).
    pub timing_allowed: bool,
}

/// Names of every rule, in reporting order.
pub const RULES: &[&str] = &[
    "unordered-iteration",
    "nondeterministic-source",
    "float-reduction-order",
    "panic-in-library",
    "crate-hygiene",
    "shared-mutation-in-fanout",
    "swallowed-error",
    "non-commutative-merge",
];

/// Lexed file plus the derived facts every rule needs: pragma map,
/// `#[cfg(test)]` / `#[test]` token ranges, and a per-line ident index.
pub struct FileCtx<'a> {
    pub meta: &'a FileMeta,
    pub tokens: Vec<Token>,
    /// Structural parse of the token stream (syntax-aware rules).
    pub ast: ast::Ast,
    /// Number of `ets-lint: allow(...)` pragma comments in the file
    /// (counted against `pragma_budget.json`).
    pub pragma_count: usize,
    /// `rule name -> set of suppressed lines`.
    pragma_lines: BTreeMap<String, BTreeSet<u32>>,
    /// Token-index ranges lexically inside test-only code.
    test_ranges: Vec<(usize, usize)>,
    /// Identifier texts per line (sort-window scans).
    line_idents: BTreeMap<u32, Vec<String>>,
}

impl<'a> FileCtx<'a> {
    pub fn new(meta: &'a FileMeta, src: &str) -> Self {
        let lexed = lex(src);

        // Pragmas: `ets-lint: allow(rule-a, rule-b)` in a line comment
        // suppresses those rules on the pragma's line and on the next
        // line that carries code. Doc comments are excluded: prose that
        // *mentions* the pragma syntax (like this crate's own docs) is
        // not a suppression and must not count against the pragma
        // budget.
        let mut code_lines: BTreeSet<u32> = BTreeSet::new();
        let mut line_idents: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for t in &lexed.tokens {
            code_lines.insert(t.line);
            if t.kind == TokKind::Ident {
                line_idents.entry(t.line).or_default().push(t.text.clone());
            }
        }
        let mut pragma_lines: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
        let mut pragma_count = 0usize;
        for c in &lexed.comments {
            if c.text.starts_with("///") || c.text.starts_with("//!") {
                continue;
            }
            // The pragma must lead the comment (`// ets-lint: allow(..)`);
            // prose that merely mentions the syntax mid-sentence is not a
            // suppression.
            let lead = c.text.trim_start_matches('/').trim_start();
            let Some(rest) = lead.strip_prefix("ets-lint:") else {
                continue;
            };
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix("allow") else {
                continue;
            };
            let Some(open) = rest.find('(') else { continue };
            let Some(close) = rest[open..].find(')') else {
                continue;
            };
            pragma_count += 1;
            let next_code = code_lines.range(c.line + 1..).next().copied();
            for rule in rest[open + 1..open + close].split(',') {
                let rule = rule.trim().to_string();
                let entry = pragma_lines.entry(rule).or_default();
                entry.insert(c.line);
                if let Some(n) = next_code {
                    entry.insert(n);
                }
            }
        }

        let test_ranges = find_test_ranges(&lexed.tokens);
        let ast = parser::parse(&lexed.tokens);

        FileCtx {
            meta,
            tokens: lexed.tokens,
            ast,
            pragma_count,
            pragma_lines,
            test_ranges,
            line_idents,
        }
    }

    /// True if `rule` is suppressed on `line` by a pragma.
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.pragma_lines
            .get(rule)
            .is_some_and(|s| s.contains(&line))
    }

    /// True if the token at `idx` sits inside `#[cfg(test)]` / `#[test]`
    /// code.
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// True if any identifier in lines `[lo, hi]` is in `names`.
    pub fn window_has_ident(&self, lo: u32, hi: u32, names: &[&str]) -> bool {
        self.line_idents
            .range(lo..=hi)
            .any(|(_, ids)| ids.iter().any(|id| names.contains(&id.as_str())))
    }

    pub fn diag(&self, rule: &'static str, tier: Tier, tok: &Token, message: String) -> Diagnostic {
        Diagnostic {
            rule,
            tier,
            file: self.meta.display_path.clone(),
            line: tok.line,
            col: tok.col,
            message,
        }
    }
}

/// Finds token ranges covered by `#[cfg(test)]` or `#[test]` attributes:
/// from the attribute through the close of the brace group that follows
/// (a `mod tests { ... }` body or a test fn body). Attribute targets
/// without a brace group (e.g. `#[cfg(test)] use x;`) end at the `;`.
fn find_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    // Index just past the group whose opener is at `open`.
    fn skip_group(tokens: &[Token], open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while let Some(t) = tokens.get(j) {
            match t.kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        tokens.len()
    }

    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokKind::Open(Delim::Bracket)))
        {
            i += 1;
            continue;
        }
        let attr_end = skip_group(tokens, i + 1); // just past `]`
        let body = &tokens[i + 2..attr_end.saturating_sub(1)];
        let is_test_attr = match body.first() {
            Some(t) if t.is_ident("test") && body.len() == 1 => true,
            Some(t) if t.is_ident("cfg") => body.iter().enumerate().any(|(k, t)| {
                // `test` inside the cfg predicate, but not `not(test)`.
                t.is_ident("test") && !(k >= 2 && body[k - 2].is_ident("not"))
            }),
            _ => false,
        };
        if !is_test_attr {
            i = attr_end;
            continue;
        }
        // Skip any further attributes, then walk to the item's `{` (or
        // give up at a `;` — attribute on a brace-less item).
        let mut j = attr_end;
        let mut depth = 0i32;
        let mut start_brace = None;
        while let Some(t) = tokens.get(j) {
            if t.is_punct("#")
                && tokens
                    .get(j + 1)
                    .is_some_and(|t| t.kind == TokKind::Open(Delim::Bracket))
            {
                j = skip_group(tokens, j + 1);
                continue;
            }
            match t.kind {
                TokKind::Open(Delim::Brace) if depth == 0 => {
                    start_brace = Some(j);
                    break;
                }
                TokKind::Punct if t.text == ";" && depth == 0 => break,
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                _ => {}
            }
            j += 1;
        }
        if let Some(sb) = start_brace {
            let end = skip_group(tokens, sb);
            ranges.push((i, end));
            i = end;
        } else {
            i = attr_end;
        }
    }
    ranges
}

/// Runs every rule over an already-built [`FileCtx`].
pub fn lint_ctx(ctx: &FileCtx) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    rules::unordered_iteration(ctx, &mut out);
    rules::nondeterministic_source(ctx, &mut out);
    rules::float_reduction_order(ctx, &mut out);
    rules::panic_in_library(ctx, &mut out);
    rules::crate_hygiene(ctx, &mut out);
    rules::fanout::shared_mutation_in_fanout(ctx, &mut out);
    rules::errors::swallowed_error(ctx, &mut out);
    rules::merge::non_commutative_merge(ctx, &mut out);
    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    out
}

/// Runs every rule over one file.
pub fn lint_file(meta: &FileMeta, src: &str) -> Vec<Diagnostic> {
    lint_ctx(&FileCtx::new(meta, src))
}

/// Serializes diagnostics as deterministic JSON (hand-rolled: the crate
/// is dependency-free).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("{\n  \"findings\": [\n");
    for (i, d) in diags.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"tier\": {}, \"message\": {}}}{}\n",
            json_str(&d.file),
            d.line,
            d.col,
            json_str(d.rule),
            json_str(&d.tier.to_string()),
            json_str(&d.message),
            if i + 1 < diags.len() { "," } else { "" },
        ));
    }
    let deny = diags.iter().filter(|d| d.tier == Tier::Deny).count();
    let warn = diags.len() - deny;
    s.push_str(&format!(
        "  ],\n  \"summary\": {{\"deny\": {deny}, \"warn\": {warn}}}\n}}\n"
    ));
    s
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
