//! The ratchet budgets.
//!
//! `crates/lint/panic_budget.json` records, per crate, how many
//! warn-tier panic sites the tree is *allowed* to contain, and
//! `crates/lint/pragma_budget.json` does the same for `ets-lint:
//! allow(...)` suppression pragmas. A crate over budget is a deny-tier
//! failure; a crate under budget asks for the file to be ratcheted down
//! (`ets-lint --update-budget` rewrites both). The self-lint tests
//! assert each file matches the tree exactly, so a budget can only move
//! together with the code — debt is paid off, never silently
//! re-accrued.

use std::collections::BTreeMap;

/// Parses the budget file: a flat JSON object `{"crate": count, ...}`.
/// Hand-rolled (the crate is dependency-free); tolerates arbitrary
/// whitespace, rejects anything that isn't a flat string→integer map.
pub fn parse(src: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut map = BTreeMap::new();
    let mut chars = src.chars().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    skip_ws(&mut chars);
    if chars.next() != Some('{') {
        return Err("budget file must start with '{'".into());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {
                chars.next();
                let mut key = String::new();
                for c in chars.by_ref() {
                    if c == '"' {
                        break;
                    }
                    key.push(c);
                }
                skip_ws(&mut chars);
                if chars.next() != Some(':') {
                    return Err(format!("expected ':' after key {key:?}"));
                }
                skip_ws(&mut chars);
                let mut num = String::new();
                while let Some(&c) = chars.peek().filter(|c| c.is_ascii_digit()) {
                    num.push(c);
                    chars.next();
                }
                let n: usize = num
                    .parse()
                    .map_err(|_| format!("bad count for {key:?}: {num:?}"))?;
                map.insert(key, n);
                skip_ws(&mut chars);
                if chars.peek() == Some(&',') {
                    chars.next();
                }
            }
            other => return Err(format!("unexpected {other:?} in budget file")),
        }
    }
    Ok(map)
}

/// Renders a budget map back to the canonical file format.
pub fn render(map: &BTreeMap<String, usize>) -> String {
    if map.is_empty() {
        return "{}\n".to_string();
    }
    let mut s = String::from("{\n");
    for (i, (k, v)) in map.iter().enumerate() {
        s.push_str(&format!(
            "  {}: {}{}\n",
            crate::json_str(k),
            v,
            if i + 1 < map.len() { "," } else { "" }
        ));
    }
    s.push_str("}\n");
    s
}

/// Compares actual counts against a budget. `what` names the counted
/// thing and `file` the budget file, for the messages. Returns
/// `(violations, ratchet_hints)`: crates over budget (deny) and crates
/// under budget (the file should be ratcheted down).
pub fn check(
    budget: &BTreeMap<String, usize>,
    actual: &BTreeMap<String, usize>,
    what: &str,
    file: &str,
) -> (Vec<String>, Vec<String>) {
    let mut over = Vec::new();
    let mut under = Vec::new();
    let mut crates: Vec<&String> = budget.keys().chain(actual.keys()).collect();
    crates.sort();
    crates.dedup();
    for name in crates {
        let allowed = budget.get(name).copied().unwrap_or(0);
        let have = actual.get(name).copied().unwrap_or(0);
        if have > allowed {
            over.push(format!(
                "crate `{name}` has {have} {what}, budget allows {allowed}"
            ));
        } else if have < allowed {
            under.push(format!(
                "crate `{name}` is under budget ({have} < {allowed}): ratchet {file} down"
            ));
        }
    }
    (over, under)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_roundtrip() {
        let src = "{\n  \"ets-core\": 12,\n  \"ets-mail\": 3\n}\n";
        let map = parse(src).unwrap();
        assert_eq!(map.get("ets-core"), Some(&12));
        assert_eq!(render(&map), src);
        assert_eq!(parse("{}").unwrap().len(), 0);
        assert!(parse("[1]").is_err());
    }

    #[test]
    fn check_over_and_under() {
        let budget = parse(r#"{"a": 2, "b": 5}"#).unwrap();
        let mut actual = BTreeMap::new();
        actual.insert("a".to_string(), 4);
        actual.insert("b".to_string(), 1);
        actual.insert("c".to_string(), 1);
        let (over, under) = check(
            &budget,
            &actual,
            "panic-in-library sites",
            "panic_budget.json",
        );
        assert_eq!(over.len(), 2); // a over, c unbudgeted
        assert_eq!(under.len(), 1); // b under
    }
}
