//! `ets-lint` CLI.
//!
//! ```text
//! ets-lint [--workspace | FILE...] [--deny] [--format human|json|sarif]
//!          [--budget PATH] [--pragma-budget PATH] [--update-budget]
//!
//!   --workspace          lint every member crate's src/ tree (default)
//!   --deny               exit 1 on deny-tier findings or a busted budget
//!   --format json        machine-readable findings + summary
//!   --format sarif       SARIF 2.1.0 log (GitHub code-scanning upload)
//!   --budget PATH        panic budget file (default crates/lint/panic_budget.json)
//!   --pragma-budget PATH pragma budget file (default crates/lint/pragma_budget.json)
//!   --update-budget      rewrite both budget files to match the tree
//! ```

#![forbid(unsafe_code)]

use ets_lint::workspace::{find_workspace_root, lint_workspace};
use ets_lint::{budget, sarif, to_json};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Human,
    Json,
    Sarif,
}

struct Args {
    deny: bool,
    format: Format,
    budget_path: Option<PathBuf>,
    pragma_budget_path: Option<PathBuf>,
    update_budget: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        format: Format::Human,
        budget_path: None,
        pragma_budget_path: None,
        update_budget: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => {}
            "--deny" => args.deny = true,
            "--format" => match it.next().as_deref() {
                Some("json") => args.format = Format::Json,
                Some("human") => args.format = Format::Human,
                Some("sarif") => args.format = Format::Sarif,
                other => return Err(format!("--format expects human|json|sarif, got {other:?}")),
            },
            "--budget" => {
                args.budget_path = Some(PathBuf::from(it.next().ok_or("--budget expects a path")?));
            }
            "--pragma-budget" => {
                args.pragma_budget_path = Some(PathBuf::from(
                    it.next().ok_or("--pragma-budget expects a path")?,
                ));
            }
            "--update-budget" => args.update_budget = true,
            "--help" | "-h" => {
                return Err(
                    "usage: ets-lint [--workspace] [--deny] [--format human|json|sarif] \
                            [--budget PATH] [--pragma-budget PATH] [--update-budget]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let cwd = std::env::current_dir().expect("cwd");
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!(
            "ets-lint: no [workspace] Cargo.toml above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ets-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // Budget bookkeeping: panic sites and suppression pragmas, both
    // ratcheted per crate.
    let budget_path = args
        .budget_path
        .unwrap_or_else(|| root.join("crates/lint/panic_budget.json"));
    let pragma_budget_path = args
        .pragma_budget_path
        .unwrap_or_else(|| root.join("crates/lint/pragma_budget.json"));
    if args.update_budget {
        for (path, counts) in [
            (&budget_path, &report.warn_counts),
            (&pragma_budget_path, &report.pragma_counts),
        ] {
            if let Err(e) = std::fs::write(path, budget::render(counts)) {
                eprintln!("ets-lint: writing {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("ets-lint: wrote {}", path.display());
        }
    }
    let read_budget = |path: &PathBuf| match std::fs::read_to_string(path) {
        Ok(text) => budget::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
        Err(_) => Ok(Default::default()),
    };
    let (budget_map, pragma_map) =
        match (read_budget(&budget_path), read_budget(&pragma_budget_path)) {
            (Ok(b), Ok(p)) => (b, p),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("ets-lint: {e}");
                return ExitCode::from(2);
            }
        };
    let (mut over, mut under) = budget::check(
        &budget_map,
        &report.warn_counts,
        "panic-in-library sites",
        "panic_budget.json",
    );
    let (p_over, p_under) = budget::check(
        &pragma_map,
        &report.pragma_counts,
        "ets-lint allow pragmas",
        "pragma_budget.json",
    );
    over.extend(p_over);
    under.extend(p_under);

    match args.format {
        Format::Json => print!("{}", to_json(&report.diagnostics)),
        Format::Sarif => print!("{}", sarif::to_sarif(&report.diagnostics)),
        Format::Human => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            let deny = report.deny_count();
            let warn = report.diagnostics.len() - deny;
            println!("ets-lint: {deny} deny, {warn} warn finding(s)");
            for msg in &over {
                println!("ets-lint: BUDGET {msg}");
            }
            for msg in &under {
                println!("ets-lint: note: {msg}");
            }
        }
    }

    if args.deny && (report.deny_count() > 0 || !over.is_empty()) {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
