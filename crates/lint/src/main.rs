//! `ets-lint` CLI.
//!
//! ```text
//! ets-lint [--workspace | FILE...] [--deny] [--format human|json]
//!          [--budget PATH] [--update-budget]
//!
//!   --workspace       lint every member crate's src/ tree (default)
//!   --deny            exit 1 on deny-tier findings or a busted budget
//!   --format json     machine-readable findings + summary
//!   --budget PATH     panic budget file (default crates/lint/panic_budget.json)
//!   --update-budget   rewrite the budget file to match the tree
//! ```

#![forbid(unsafe_code)]

use ets_lint::workspace::{find_workspace_root, lint_workspace};
use ets_lint::{budget, to_json};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    deny: bool,
    json: bool,
    budget_path: Option<PathBuf>,
    update_budget: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        json: false,
        budget_path: None,
        update_budget: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => {}
            "--deny" => args.deny = true,
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("human") => args.json = false,
                other => return Err(format!("--format expects human|json, got {other:?}")),
            },
            "--budget" => {
                args.budget_path = Some(PathBuf::from(it.next().ok_or("--budget expects a path")?));
            }
            "--update-budget" => args.update_budget = true,
            "--help" | "-h" => {
                return Err(
                    "usage: ets-lint [--workspace] [--deny] [--format human|json] \
                            [--budget PATH] [--update-budget]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument {other:?} (see --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let cwd = std::env::current_dir().expect("cwd");
    let Some(root) = find_workspace_root(&cwd) else {
        eprintln!(
            "ets-lint: no [workspace] Cargo.toml above {}",
            cwd.display()
        );
        return ExitCode::from(2);
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ets-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // Budget bookkeeping.
    let budget_path = args
        .budget_path
        .unwrap_or_else(|| root.join("crates/lint/panic_budget.json"));
    if args.update_budget {
        if let Err(e) = std::fs::write(&budget_path, budget::render(&report.warn_counts)) {
            eprintln!("ets-lint: writing {}: {e}", budget_path.display());
            return ExitCode::from(2);
        }
        eprintln!("ets-lint: wrote {}", budget_path.display());
    }
    let budget_map = match std::fs::read_to_string(&budget_path) {
        Ok(text) => match budget::parse(&text) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("ets-lint: {}: {e}", budget_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Default::default(),
    };
    let (over, under) = budget::check(&budget_map, &report.warn_counts);

    if args.json {
        print!("{}", to_json(&report.diagnostics));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        let deny = report.deny_count();
        let warn = report.diagnostics.len() - deny;
        println!("ets-lint: {deny} deny, {warn} warn finding(s)");
        for msg in &over {
            println!("ets-lint: BUDGET {msg}");
        }
        for msg in &under {
            println!("ets-lint: note: {msg}");
        }
    }

    if args.deny && (report.deny_count() > 0 || !over.is_empty()) {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
